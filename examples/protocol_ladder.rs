//! Protocol ladder: walk a benchmark through every protocol configuration of
//! the paper, showing how each added optimization changes traffic, execution
//! time, and residual waste — a miniature version of Figures 5.1a and 5.2.
//!
//! Run with:
//! `cargo run -p denovo-waste --release --example protocol_ladder [benchmark]`
//! where `[benchmark]` is one of fluidanimate, lu, fft, radix, barnes,
//! kdtree (default: kdtree).

use denovo_waste::{SimConfig, Simulator};
use tw_types::ProtocolKind;
use tw_workloads::{build_scaled, BenchmarkKind};

fn parse_benchmark(name: &str) -> Option<BenchmarkKind> {
    match name.to_ascii_lowercase().as_str() {
        "fluidanimate" => Some(BenchmarkKind::Fluidanimate),
        "lu" => Some(BenchmarkKind::Lu),
        "fft" => Some(BenchmarkKind::Fft),
        "radix" => Some(BenchmarkKind::Radix),
        "barnes" => Some(BenchmarkKind::Barnes),
        "kdtree" | "kd-tree" => Some(BenchmarkKind::KdTree),
        _ => None,
    }
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|a| parse_benchmark(&a))
        .unwrap_or(BenchmarkKind::KdTree);
    let workload = build_scaled(bench, 16).unwrap();
    println!(
        "benchmark: {bench} ({}), {} memory references",
        workload.input,
        workload.total_mem_ops()
    );
    println!(
        "\n{:<12} {:>14} {:>10} {:>14} {:>10} {:>8}",
        "protocol", "flit-hops", "vs MESI", "cycles", "vs MESI", "waste%"
    );

    let mut baseline = None;
    for protocol in ProtocolKind::ALL {
        let report = Simulator::new(SimConfig::new(protocol), &workload).run();
        let (t_rel, c_rel) = match &baseline {
            Some(base) => (
                report.traffic_relative_to(base),
                report.time_relative_to(base),
            ),
            None => (1.0, 1.0),
        };
        println!(
            "{:<12} {:>14.0} {:>9.1}% {:>14} {:>9.1}% {:>7.1}%",
            protocol.to_string(),
            report.total_flit_hops(),
            100.0 * t_rel,
            report.total_cycles,
            100.0 * c_rel,
            100.0 * report.waste_traffic_fraction()
        );
        if baseline.is_none() {
            baseline = Some(report);
        }
    }
}
