//! Waste anatomy: reproduce the §4.1 waste characterization for one
//! benchmark, printing the words fetched into the L1s, into the L2, and from
//! memory, broken down by waste category (the data behind Figures 5.3a–5.3c).
//!
//! Run with:
//! `cargo run -p denovo-waste --release --example waste_anatomy [protocol]`
//! where `[protocol]` is one of the nine configurations (default: DBypFull).

use denovo_waste::{protocol_by_name, SimConfig, Simulator};
use tw_profiler::{WasteCategory, WasteReport};
use tw_types::ProtocolKind;
use tw_workloads::{build_scaled, BenchmarkKind};

fn print_report(level: &str, report: &WasteReport) {
    println!("\n-- words fetched into {level} --");
    let total = report.total_words().max(1) as f64;
    for category in WasteCategory::ALL {
        let words = report.words(category);
        if words > 0 {
            println!(
                "  {:<18} {:>12} words  ({:>5.1}%)",
                category.to_string(),
                words,
                100.0 * words as f64 / total
            );
        }
    }
    println!(
        "  {:<18} {:>12} words  (waste fraction {:.1}%)",
        "total",
        report.total_words(),
        100.0 * report.waste_fraction()
    );
}

fn main() {
    let protocol = std::env::args()
        .nth(1)
        .and_then(|a| protocol_by_name(&a))
        .unwrap_or(ProtocolKind::DBypFull);
    let workload = build_scaled(BenchmarkKind::Fluidanimate, 16).unwrap();
    println!(
        "benchmark: {} ({}); protocol: {protocol}",
        workload.kind, workload.input
    );

    let report = Simulator::new(SimConfig::new(protocol), &workload).run();
    print_report("the L1 caches (Figure 5.3a)", &report.l1_waste);
    print_report("the shared L2 (Figure 5.3b)", &report.l2_waste);
    print_report("the chip from memory (Figure 5.3c)", &report.mem_waste);
    println!(
        "\nDRAM: {} accesses, {:.1}% row-buffer hit rate",
        report.dram_accesses,
        100.0 * report.dram_row_hit_rate
    );
}
