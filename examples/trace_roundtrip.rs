//! Record a run's reference stream to a trace file, replay it, and verify
//! the replay is bit-identical — the capture/replay workflow end to end.
//!
//! ```text
//! cargo run --release -p denovo-waste --example trace_roundtrip
//! ```

use denovo_waste::{SimConfig, Simulator};
use tw_trace::TraceDocument;
use tw_types::ProtocolKind;
use tw_workloads::{build_tiny, BenchmarkKind, Workload};

fn main() {
    // 1. Run one (protocol × benchmark) cell with capture armed.
    let workload = build_tiny(BenchmarkKind::Radix, 16).unwrap();
    let cfg = SimConfig::new(ProtocolKind::DBypFull);
    let (recorded, captured) = Simulator::new(cfg.clone(), &workload).run_captured();
    println!(
        "recorded {} / {}: {} cycles, {:.0} flit-hops",
        captured.kind,
        recorded.protocol,
        recorded.total_cycles,
        recorded.total_flit_hops()
    );

    // 2. Persist the capture to a trace file (binary format).
    let path = std::env::temp_dir().join("denovo-waste-roundtrip.trace");
    let doc = captured.to_trace();
    doc.save(&path, false).expect("write trace");
    let bytes = std::fs::metadata(&path).expect("stat trace").len();
    let stats = doc.total_stats();
    println!(
        "wrote {} ({} bytes for {} mem ops, ~{:.2} bytes/op)",
        path.display(),
        bytes,
        stats.mem_ops(),
        bytes as f64 / stats.ops.max(1) as f64
    );

    // 3. Load it back and replay it as a first-class workload.
    let loaded = TraceDocument::load(&path).expect("read trace");
    let replay_wl = Workload::from_trace(loaded).expect("replayable trace");
    let replayed = Simulator::new(cfg, &replay_wl).run();
    println!(
        "replayed {} / {}: {} cycles, {:.0} flit-hops",
        replay_wl.kind,
        replayed.protocol,
        replayed.total_cycles,
        replayed.total_flit_hops()
    );

    // 4. The determinism guarantee: replay is bit-identical.
    assert_eq!(recorded, replayed, "replay must reproduce the run exactly");
    println!("replay is bit-identical to the recorded run");

    // 5. The same trace drives any other protocol configuration.
    let mesi = Simulator::new(SimConfig::new(ProtocolKind::Mesi), &replay_wl).run();
    println!(
        "same trace under MESI: {} cycles, {:.0} flit-hops ({:.3}x the traffic)",
        mesi.total_cycles,
        mesi.total_flit_hops(),
        mesi.total_flit_hops() / replayed.total_flit_hops()
    );

    std::fs::remove_file(&path).ok();
}
