//! Quickstart: simulate one benchmark under MESI and the fully optimized
//! DeNovo protocol and print where the traffic went.
//!
//! Run with: `cargo run -p denovo-waste --release --example quickstart`

use denovo_waste::{SimConfig, Simulator};
use tw_types::{MessageClass, ProtocolKind};
use tw_workloads::{build_scaled, BenchmarkKind};

fn main() {
    let workload = build_scaled(BenchmarkKind::Radix, 16).unwrap();
    println!(
        "workload: {} ({}), {} memory references across {} cores",
        workload.kind,
        workload.input,
        workload.total_mem_ops(),
        workload.cores()
    );

    let mut baseline = None;
    for protocol in [ProtocolKind::Mesi, ProtocolKind::DBypFull] {
        let report = Simulator::new(SimConfig::new(protocol), &workload).run();
        println!("\n== {protocol} ==");
        println!("execution time: {} cycles", report.total_cycles);
        println!("network traffic: {:.0} flit-hops", report.total_flit_hops());
        for class in MessageClass::ALL {
            println!(
                "  {:8} {:>12.0} flit-hops",
                class.to_string(),
                report.traffic.class_total(class)
            );
        }
        println!(
            "wasted data traffic: {:.1}% of all flit-hops",
            100.0 * report.waste_traffic_fraction()
        );
        if let Some(base) = &baseline {
            println!(
                "relative to MESI: {:.1}% of the traffic, {:.1}% of the time",
                100.0 * report.traffic_relative_to(base),
                100.0 * report.time_relative_to(base)
            );
        } else {
            baseline = Some(report);
        }
    }
}
