//! Shared vocabulary for the on-chip traffic-waste study.
//!
//! This crate defines the basic quantities every other crate in the workspace
//! speaks in: word/line addresses, the tiled-mesh geometry, software regions
//! (including Flex communication regions and bypass regions), the protocol
//! configuration space studied by the paper, the message and traffic taxonomy
//! used for flit-hop accounting, memory-reference traces, and the simulated
//! system configuration (Table 4.1 of the paper).
//!
//! # Example
//!
//! ```
//! use tw_types::{Addr, LineAddr, SystemConfig, ProtocolKind};
//!
//! let cfg = SystemConfig::default();
//! assert_eq!(cfg.tiles(), 16);
//! let a = Addr::new(0x1040);
//! assert_eq!(LineAddr::containing(a, cfg.cache.line_bytes).byte(), 0x1040);
//! assert!(ProtocolKind::DBypFull.is_denovo());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod digest;
pub mod error;
pub mod fastmap;
pub mod geometry;
pub mod mask;
pub mod message;
pub mod protocol;
pub mod region;
pub mod stats;
pub mod trace;

pub use addr::{Addr, LineAddr, WordIdx, WORDS_PER_LINE, WORD_BYTES};
pub use config::{
    CacheConfig, DramConfig, NetworkModelKind, NocConfig, SystemConfig, TimingConfig,
};
pub use digest::{Digest, DigestWriter, Digester};
pub use error::ConfigError;
pub use fastmap::FastMap;
pub use geometry::{CoreId, MeshCoord, TileId};
pub use mask::WordMask;
pub use message::{MessageClass, MessageKind, TrafficBucket};
pub use protocol::ProtocolKind;
pub use region::{BypassKind, CommRegion, RegionId, RegionInfo, RegionTable};
pub use stats::{Cycle, Stamp};
pub use trace::{MemKind, TraceOp, TraceStats};
