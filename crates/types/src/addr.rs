//! Byte, word and cache-line addresses.
//!
//! The study measures everything at *word* granularity: a 64-byte cache line
//! holds sixteen 4-byte words, a 16-byte network flit carries four words, and
//! DeNovo maintains coherence per word. The newtypes in this module keep the
//! three granularities from being mixed up.

use std::fmt;

/// Size of a machine word in bytes (the coherence and profiling granularity).
pub const WORD_BYTES: u64 = 4;

/// Number of words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 16;

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    ///
    /// ```
    /// # use tw_types::Addr;
    /// assert_eq!(Addr::new(64).byte(), 64);
    /// ```
    pub const fn new(byte: u64) -> Self {
        Addr(byte)
    }

    /// Raw byte value of the address.
    pub const fn byte(self) -> u64 {
        self.0
    }

    /// Word-aligned address (truncates to the containing word).
    pub const fn word_aligned(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES - 1))
    }

    /// Index of this address's word within a line of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_bytes` is not a multiple of the word size.
    #[inline]
    pub fn word_in_line(self, line_bytes: u64) -> WordIdx {
        debug_assert!(line_bytes.is_multiple_of(WORD_BYTES));
        if line_bytes.is_power_of_two() {
            // Strength-reduced path for the (universal in practice) pow2 line
            // size: identical result, no runtime division.
            return WordIdx(((self.0 & (line_bytes - 1)) / WORD_BYTES) as u8);
        }
        WordIdx(((self.0 % line_bytes) / WORD_BYTES) as u8)
    }

    /// Returns the address offset by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Index of a word within its cache line (`0..WORDS_PER_LINE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIdx(pub u8);

impl WordIdx {
    /// Word index as a `usize` suitable for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A cache-line-aligned address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// The line containing byte address `addr` for lines of `line_bytes` bytes.
    ///
    /// ```
    /// # use tw_types::{Addr, LineAddr};
    /// let l = LineAddr::containing(Addr::new(0x1078), 64);
    /// assert_eq!(l.byte(), 0x1040);
    /// ```
    pub fn containing(addr: Addr, line_bytes: u64) -> Self {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(addr.byte() & !(line_bytes - 1))
    }

    /// Creates a line address from an already-aligned byte value.
    pub const fn from_aligned(byte: u64) -> Self {
        LineAddr(byte)
    }

    /// Byte address of the first word of the line.
    pub const fn byte(self) -> u64 {
        self.0
    }

    /// Byte address of word `w` within this line.
    pub fn word_addr(self, w: WordIdx) -> Addr {
        Addr(self.0 + w.0 as u64 * WORD_BYTES)
    }

    /// Iterator over the byte addresses of all words in this line.
    pub fn words(self, line_bytes: u64) -> impl Iterator<Item = Addr> {
        let base = self.0;
        (0..line_bytes / WORD_BYTES).map(move |i| Addr(base + i * WORD_BYTES))
    }

    /// The line `n` lines after this one.
    pub const fn next(self, line_bytes: u64, n: u64) -> LineAddr {
        LineAddr(self.0 + n * line_bytes)
    }

    /// DRAM row identifier of the line for rows of `row_bytes` bytes.
    pub fn dram_row(self, row_bytes: u64) -> u64 {
        self.0 / row_bytes
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_alignment() {
        assert_eq!(Addr::new(0x103).word_aligned(), Addr::new(0x100));
        assert_eq!(Addr::new(0x100).word_aligned(), Addr::new(0x100));
    }

    #[test]
    fn word_in_line_spans_all_sixteen_words() {
        for i in 0..WORDS_PER_LINE as u64 {
            let a = Addr::new(0x4000 + i * WORD_BYTES);
            assert_eq!(a.word_in_line(64).index(), i as usize);
        }
    }

    #[test]
    fn line_containing_masks_low_bits() {
        let l = LineAddr::containing(Addr::new(0x7fff), 64);
        assert_eq!(l.byte(), 0x7fc0);
        assert_eq!(l.word_addr(WordIdx(0)).byte(), 0x7fc0);
        assert_eq!(l.word_addr(WordIdx(15)).byte(), 0x7ffc);
    }

    #[test]
    fn line_word_iteration_counts_sixteen() {
        let l = LineAddr::from_aligned(0x80);
        let words: Vec<_> = l.words(64).collect();
        assert_eq!(words.len(), 16);
        assert_eq!(words[0], Addr::new(0x80));
        assert_eq!(words[15], Addr::new(0x80 + 60));
    }

    #[test]
    fn dram_row_mapping() {
        let l = LineAddr::from_aligned(8192 + 64);
        assert_eq!(l.dram_row(8192), 1);
    }

    #[test]
    fn next_line_steps_by_line_size() {
        let l = LineAddr::from_aligned(0);
        assert_eq!(l.next(64, 3).byte(), 192);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::from_aligned(0x40)), "L0x40");
        assert_eq!(format!("{}", WordIdx(3)), "w3");
    }
}
