//! Simulated system configuration (paper Table 4.1) and validation.

use crate::addr::{WORDS_PER_LINE, WORD_BYTES};
use crate::error::ConfigError;
use crate::geometry::TileId;

/// Cache geometry parameters for the private L1s and the shared L2 slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache line size in bytes (64 in the paper).
    pub line_bytes: u64,
    /// Private L1 data cache size in bytes (32 KB).
    pub l1_bytes: u64,
    /// L1 associativity (8-way).
    pub l1_ways: usize,
    /// Per-tile shared L2 slice size in bytes (256 KB; 4 MB total).
    pub l2_slice_bytes: u64,
    /// L2 associativity (16-way).
    pub l2_ways: usize,
    /// Number of entries in the non-blocking write / write-combining table
    /// (32 pending writes per core).
    pub write_table_entries: usize,
    /// Write-combining timeout in cycles (10 000 in the paper).
    pub write_combine_timeout: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l2_slice_bytes: 256 * 1024,
            l2_ways: 16,
            write_table_entries: 32,
            write_combine_timeout: 10_000,
        }
    }
}

impl CacheConfig {
    /// Number of words per cache line.
    pub fn words_per_line(&self) -> usize {
        (self.line_bytes / WORD_BYTES) as usize
    }

    /// Number of sets in an L1.
    pub fn l1_sets(&self) -> usize {
        (self.l1_bytes / self.line_bytes) as usize / self.l1_ways
    }

    /// Number of sets in one L2 slice.
    pub fn l2_sets(&self) -> usize {
        (self.l2_slice_bytes / self.line_bytes) as usize / self.l2_ways
    }
}

/// How the on-chip network's timing is modeled (see `DESIGN.md` §11).
///
/// Flit-hop *traffic* is identical under every model — routes are XY
/// dimension-order either way and the canonical mesh ledger is always
/// maintained — so the choice only moves latency and execution time.
/// `Analytic` is the fast default; `FlitLevel` simulates every flit through
/// wormhole routers with per-port virtual channels and deterministic
/// round-robin arbitration (`tw-noc`); `SnoopBus` serializes every message
/// through one shared broadcast medium with FCFS arbitration (the substrate
/// snooping update protocols were designed for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum NetworkModelKind {
    /// Per-link analytic reservation: hop pipeline + serialization + a
    /// per-link queueing estimate (the original mesh model).
    #[default]
    Analytic,
    /// Event-driven flit-level wormhole simulation with virtual channels
    /// and credit backpressure.
    FlitLevel,
    /// Shared snooping bus: one transaction occupies the whole medium at a
    /// time, arbitrated deterministically in request order.
    SnoopBus,
}

impl NetworkModelKind {
    /// Every model, in sweep order.
    pub const ALL: [NetworkModelKind; 3] = [
        NetworkModelKind::Analytic,
        NetworkModelKind::FlitLevel,
        NetworkModelKind::SnoopBus,
    ];

    /// The spec-grammar / CLI name of this model (lowercase).
    pub const fn name(self) -> &'static str {
        match self {
            NetworkModelKind::Analytic => "analytic",
            NetworkModelKind::FlitLevel => "flit",
            NetworkModelKind::SnoopBus => "bus",
        }
    }

    /// Resolves a model from its name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Names the rejected name and lists the accepted ones.
    pub fn by_name(name: &str) -> Result<NetworkModelKind, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                format!("unknown network model `{name}`; expected analytic | flit | bus")
            })
    }
}

impl std::fmt::Display for NetworkModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// On-chip network parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh columns (4).
    pub cols: usize,
    /// Mesh rows (4).
    pub rows: usize,
    /// Link width in bytes (16) — one flit per link per cycle.
    pub link_bytes: u64,
    /// Per-link latency in cycles (3).
    pub link_latency: u64,
    /// Per-router pipeline latency in cycles.
    pub router_latency: u64,
    /// Maximum number of data flits per packet (4 ⇒ at most 64 B of data).
    pub max_data_flits: usize,
    /// Virtual channels per router output port (flit-level model only).
    pub vcs_per_port: usize,
    /// Per-VC downstream buffer depth in flits (flit-level model only;
    /// bounds how far a packet can run ahead before credit backpressure).
    pub vc_buffer_flits: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            cols: 4,
            rows: 4,
            link_bytes: 16,
            link_latency: 3,
            router_latency: 1,
            max_data_flits: 4,
            vcs_per_port: 4,
            vc_buffer_flits: 4,
        }
    }
}

impl NocConfig {
    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Words carried per data flit.
    pub fn words_per_flit(&self) -> usize {
        (self.link_bytes / WORD_BYTES) as usize
    }

    /// Maximum data words per packet.
    pub fn max_data_words(&self) -> usize {
        self.max_data_flits * self.words_per_flit()
    }
}

/// DRAM and memory-controller parameters (DDR3-1066-like).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory controllers (one per corner tile).
    pub controllers: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Row-buffer size in bytes (open-page policy granularity).
    pub row_bytes: u64,
    /// Row-buffer hit latency in core cycles.
    pub row_hit_cycles: u64,
    /// Row-buffer miss (activate + CAS) latency in core cycles.
    pub row_miss_cycles: u64,
    /// Cycles per data burst transferring one cache line on the channel.
    pub burst_cycles: u64,
    /// Maximum outstanding requests queued per controller before requests
    /// back-pressure.
    pub queue_depth: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR3-1066 at a 2 GHz core clock: tCAS ~ 13 ns ≈ 26 cycles,
        // activate+CAS ~ 26 ns ≈ 52 cycles, 64-byte burst ≈ 15 ns ≈ 30 cycles
        // of channel occupancy at 8.5 GB/s.
        DramConfig {
            controllers: 4,
            banks: 8,
            ranks: 2,
            row_bytes: 8 * 1024,
            row_hit_cycles: 26,
            row_miss_cycles: 78,
            burst_cycles: 15,
            queue_depth: 64,
        }
    }
}

/// Core and miscellaneous timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingConfig {
    /// Core clock in MHz (2000 — used only for reporting).
    pub core_mhz: u64,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// L2 slice access latency in cycles (tag + data).
    pub l2_hit_cycles: u64,
    /// Directory/L2 controller occupancy per request in cycles.
    pub l2_occupancy_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            core_mhz: 2000,
            l1_hit_cycles: 1,
            l2_hit_cycles: 10,
            l2_occupancy_cycles: 2,
        }
    }
}

/// Complete simulated-system configuration (paper Table 4.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub cache: CacheConfig,
    /// Mesh network parameters.
    pub noc: NocConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Core/cache timing parameters.
    pub timing: TimingConfig,
    /// How network timing is modeled (analytic by default; traffic is
    /// identical under every model).
    pub network: NetworkModelKind,
}

impl SystemConfig {
    /// Number of tiles (= cores = L1s = L2 slices).
    pub fn tiles(&self) -> usize {
        self.noc.tiles()
    }

    /// Tiles that host a memory controller: the four mesh corners.
    pub fn memory_controller_tiles(&self) -> Vec<TileId> {
        let (c, r) = (self.noc.cols, self.noc.rows);
        vec![
            TileId(0),
            TileId(c - 1),
            TileId((r - 1) * c),
            TileId(r * c - 1),
        ]
    }

    /// Home L2 slice for a cache line (static line interleaving).
    pub fn home_tile(&self, line_byte_addr: u64) -> TileId {
        TileId(((line_byte_addr / self.cache.line_bytes) as usize) % self.tiles())
    }

    /// Memory controller responsible for a cache line (row-interleaved across
    /// the corner controllers).
    pub fn mc_tile(&self, line_byte_addr: u64) -> TileId {
        let mcs = self.memory_controller_tiles();
        let idx = ((line_byte_addr / self.dram.row_bytes) as usize) % mcs.len();
        mcs[idx]
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a parameter is zero, not a power of two
    /// where required, or inconsistent with another parameter (for example a
    /// line size that is not a whole number of flits).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = &self.cache;
        if !c.line_bytes.is_power_of_two() || c.line_bytes < WORD_BYTES {
            return Err(ConfigError::new(
                "line_bytes must be a power of two ≥ word size",
            ));
        }
        if c.line_bytes / WORD_BYTES > WORDS_PER_LINE as u64 {
            return Err(ConfigError::new(
                "line_bytes larger than the supported 16-word line",
            ));
        }
        if c.l1_ways == 0 || c.l2_ways == 0 {
            return Err(ConfigError::new("associativity must be non-zero"));
        }
        if !c.l1_bytes.is_multiple_of(c.line_bytes * c.l1_ways as u64) {
            return Err(ConfigError::new("L1 size must be a multiple of way size"));
        }
        if !c
            .l2_slice_bytes
            .is_multiple_of(c.line_bytes * c.l2_ways as u64)
        {
            return Err(ConfigError::new(
                "L2 slice size must be a multiple of way size",
            ));
        }
        if self.noc.cols < 2 || self.noc.rows < 2 {
            return Err(ConfigError::new("mesh must be at least 2x2"));
        }
        if self.noc.link_bytes == 0 || !self.noc.link_bytes.is_multiple_of(WORD_BYTES) {
            return Err(ConfigError::new(
                "link width must be a multiple of the word size",
            ));
        }
        if self.noc.max_data_flits == 0 {
            return Err(ConfigError::new(
                "packets must allow at least one data flit",
            ));
        }
        if self.noc.vcs_per_port == 0 || self.noc.vc_buffer_flits == 0 {
            return Err(ConfigError::new(
                "routers need at least one virtual channel and one buffer flit",
            ));
        }
        if self.dram.controllers == 0 || self.dram.banks == 0 {
            return Err(ConfigError::new("DRAM must have controllers and banks"));
        }
        if self.dram.row_bytes < self.cache.line_bytes {
            return Err(ConfigError::new("DRAM row must be at least one cache line"));
        }
        Ok(())
    }

    /// Folds every parameter that influences simulation results into a
    /// [`Digester`], in a fixed field order — the canonical encoding the
    /// experiment layer's result-cache key is built from. Any new
    /// result-affecting field MUST be added here, or stale cache entries
    /// will be served for configurations that differ in it.
    pub fn digest_fields(&self, d: &mut crate::digest::Digester) {
        let c = &self.cache;
        for v in [
            c.line_bytes,
            c.l1_bytes,
            c.l1_ways as u64,
            c.l2_slice_bytes,
            c.l2_ways as u64,
            c.write_table_entries as u64,
            c.write_combine_timeout,
        ] {
            d.write_u64(v);
        }
        let n = &self.noc;
        for v in [
            n.cols as u64,
            n.rows as u64,
            n.link_bytes,
            n.link_latency,
            n.router_latency,
            n.max_data_flits as u64,
            n.vcs_per_port as u64,
            n.vc_buffer_flits as u64,
        ] {
            d.write_u64(v);
        }
        let m = &self.dram;
        for v in [
            m.controllers as u64,
            m.banks as u64,
            m.ranks as u64,
            m.row_bytes,
            m.row_hit_cycles,
            m.row_miss_cycles,
            m.burst_cycles,
            m.queue_depth as u64,
        ] {
            d.write_u64(v);
        }
        let t = &self.timing;
        for v in [
            t.core_mhz,
            t.l1_hit_cycles,
            t.l2_hit_cycles,
            t.l2_occupancy_cycles,
        ] {
            d.write_u64(v);
        }
        // The network model is a result-affecting axis (it moves execution
        // time), so a cached analytic cell can never be served for a
        // flit-level run or vice versa.
        d.write_str(self.network.name());
    }

    /// Renders the configuration as the rows of paper Table 4.1.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Core".into(),
                format!("{} MHz, in-order", self.timing.core_mhz),
            ),
            (
                "L1D Cache (private)".into(),
                format!(
                    "{} KB, {}-way set associative, {} byte cache lines",
                    self.cache.l1_bytes / 1024,
                    self.cache.l1_ways,
                    self.cache.line_bytes
                ),
            ),
            (
                "L2 Cache (shared)".into(),
                format!(
                    "{} KB slices ({} MB total), {}-way set associative, {} byte cache lines",
                    self.cache.l2_slice_bytes / 1024,
                    self.cache.l2_slice_bytes * self.tiles() as u64 / (1024 * 1024),
                    self.cache.l2_ways,
                    self.cache.line_bytes
                ),
            ),
            (
                "Network".into(),
                format!(
                    "{}x{} mesh, {} byte links, {} cycle link latency{}",
                    self.noc.cols,
                    self.noc.rows,
                    self.noc.link_bytes,
                    self.noc.link_latency,
                    // The analytic spelling is unchanged so default-model
                    // artifacts stay byte-identical across this axis' intro.
                    match self.network {
                        NetworkModelKind::Analytic => "",
                        NetworkModelKind::FlitLevel => ", flit-level wormhole model",
                        NetworkModelKind::SnoopBus => ", snooping-bus model",
                    }
                ),
            ),
            (
                "Memory Controller".into(),
                "FR-FCFS scheduling, open page policy".into(),
            ),
            (
                "DRAM".into(),
                format!(
                    "DDR3-1066, {} banks, {} ranks",
                    self.dram.banks, self.dram.ranks
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_4_1() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.tiles(), 16);
        assert_eq!(cfg.cache.l1_bytes, 32 * 1024);
        assert_eq!(cfg.cache.l1_ways, 8);
        assert_eq!(cfg.cache.l2_slice_bytes, 256 * 1024);
        assert_eq!(cfg.cache.l2_ways, 16);
        assert_eq!(cfg.cache.line_bytes, 64);
        assert_eq!(cfg.noc.link_bytes, 16);
        assert_eq!(cfg.noc.link_latency, 3);
        assert_eq!(cfg.noc.max_data_flits, 4);
        assert_eq!(cfg.dram.banks, 8);
        assert_eq!(cfg.dram.ranks, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn derived_geometry() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.cache.words_per_line(), 16);
        assert_eq!(cfg.cache.l1_sets(), 64);
        assert_eq!(cfg.cache.l2_sets(), 256);
        assert_eq!(cfg.noc.words_per_flit(), 4);
        assert_eq!(cfg.noc.max_data_words(), 16);
    }

    #[test]
    fn memory_controllers_sit_on_corners() {
        let cfg = SystemConfig::default();
        assert_eq!(
            cfg.memory_controller_tiles(),
            vec![TileId(0), TileId(3), TileId(12), TileId(15)]
        );
    }

    #[test]
    fn home_tile_interleaves_by_line() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.home_tile(0), TileId(0));
        assert_eq!(cfg.home_tile(64), TileId(1));
        assert_eq!(cfg.home_tile(64 * 16), TileId(0));
    }

    #[test]
    fn mc_tile_is_always_a_corner() {
        let cfg = SystemConfig::default();
        let corners = cfg.memory_controller_tiles();
        for addr in (0..1 << 20).step_by(4096) {
            assert!(corners.contains(&cfg.mc_tile(addr)));
        }
    }

    #[test]
    fn network_model_names_round_trip() {
        for kind in NetworkModelKind::ALL {
            assert_eq!(NetworkModelKind::by_name(kind.name()), Ok(kind));
            assert_eq!(
                NetworkModelKind::by_name(&kind.name().to_uppercase()),
                Ok(kind)
            );
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = NetworkModelKind::by_name("garnet").unwrap_err();
        assert!(err.contains("`garnet`"), "{err}");
        assert!(err.contains("analytic"), "{err}");
        assert_eq!(NetworkModelKind::default(), NetworkModelKind::Analytic);
    }

    #[test]
    fn flit_level_model_is_named_in_table_4_1() {
        let mut cfg = SystemConfig::default();
        let analytic_row = cfg.table_rows()[3].1.clone();
        assert!(!analytic_row.contains("wormhole"));
        assert!(!analytic_row.contains("bus"));
        cfg.network = NetworkModelKind::FlitLevel;
        assert!(cfg.table_rows()[3].1.contains("flit-level wormhole"));
        cfg.network = NetworkModelKind::SnoopBus;
        assert!(cfg.table_rows()[3].1.contains("snooping-bus"));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SystemConfig::default();
        cfg.cache.line_bytes = 48;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.cache.l1_ways = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.noc.cols = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.dram.row_bytes = 32;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.noc.vcs_per_port = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.noc.vc_buffer_flits = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn digest_fields_is_sensitive_to_every_subsystem() {
        let base = {
            let mut d = crate::digest::Digester::new();
            SystemConfig::default().digest_fields(&mut d);
            d.finish()
        };
        let digest_of = |f: &dyn Fn(&mut SystemConfig)| {
            let mut cfg = SystemConfig::default();
            f(&mut cfg);
            let mut d = crate::digest::Digester::new();
            cfg.digest_fields(&mut d);
            d.finish()
        };
        assert_eq!(base, digest_of(&|_| {}), "digest must be deterministic");
        let mutations: [&dyn Fn(&mut SystemConfig); 8] = [
            &|c| c.cache.l2_slice_bytes = 128 * 1024,
            &|c| c.noc.cols = 2,
            &|c| c.noc.vcs_per_port = 2,
            &|c| c.noc.vc_buffer_flits = 8,
            &|c| c.dram.banks = 4,
            &|c| c.timing.l2_hit_cycles = 11,
            &|c| c.network = NetworkModelKind::FlitLevel,
            &|c| c.network = NetworkModelKind::SnoopBus,
        ];
        for (i, m) in mutations.iter().enumerate() {
            assert_ne!(base, digest_of(m), "mutation {i} did not change the digest");
        }
    }

    #[test]
    fn table_rows_cover_all_components() {
        let rows = SystemConfig::default().table_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows[1].1.contains("32 KB"));
        assert!(rows[2].1.contains("4 MB total"));
        assert!(rows[5].1.contains("DDR3-1066"));
    }
}
