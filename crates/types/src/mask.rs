//! Per-word bit masks over a cache line.
//!
//! Several mechanisms in the study are expressed as sets of words within a
//! 16-word cache line: DeNovo's per-word valid/dirty/registered state, the
//! dirty-word bit-vector attached to requests under the "Memory Controller to
//! L1 Transfer" optimization, Flex communication-region selections, and the
//! write-combining table's pending-registration vector. [`WordMask`] is that
//! set, stored as a `u16`.

use crate::addr::{WordIdx, WORDS_PER_LINE};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not, Sub};

/// A set of word positions within a single cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WordMask(u16);

impl WordMask {
    /// The empty set.
    pub const EMPTY: WordMask = WordMask(0);

    /// The full line (all sixteen words).
    pub const FULL: WordMask = WordMask(u16::MAX);

    /// Creates a mask from raw bits (bit *i* set ⇔ word *i* in the set).
    pub const fn from_bits(bits: u16) -> Self {
        WordMask(bits)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// A mask containing exactly one word.
    pub const fn single(w: WordIdx) -> Self {
        WordMask(1 << w.0)
    }

    /// Whether word `w` is in the set.
    pub const fn contains(self, w: WordIdx) -> bool {
        self.0 & (1 << w.0) != 0
    }

    /// Inserts word `w`.
    pub fn insert(&mut self, w: WordIdx) {
        self.0 |= 1 << w.0;
    }

    /// Removes word `w`.
    pub fn remove(&mut self, w: WordIdx) {
        self.0 &= !(1 << w.0);
    }

    /// Number of words in the set.
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the set covers the entire line.
    pub const fn is_full(self) -> bool {
        self.0 == u16::MAX
    }

    /// Iterator over the word indices in the set, in ascending order.
    pub fn iter(self) -> impl Iterator<Item = WordIdx> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(WordIdx(i))
        })
    }

    /// Set union.
    pub const fn union(self, other: WordMask) -> WordMask {
        WordMask(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersect(self, other: WordMask) -> WordMask {
        WordMask(self.0 & other.0)
    }

    /// Words in `self` but not in `other`.
    pub const fn difference(self, other: WordMask) -> WordMask {
        WordMask(self.0 & !other.0)
    }

    /// Mask of the first `n` words of the line (`n` clamped to 16).
    pub fn first_n(n: usize) -> WordMask {
        if n >= WORDS_PER_LINE {
            WordMask::FULL
        } else {
            WordMask(((1u32 << n) - 1) as u16)
        }
    }
}

impl BitOr for WordMask {
    type Output = WordMask;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitAnd for WordMask {
    type Output = WordMask;
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

impl BitXor for WordMask {
    type Output = WordMask;
    fn bitxor(self, rhs: Self) -> Self {
        WordMask(self.0 ^ rhs.0)
    }
}

impl Sub for WordMask {
    type Output = WordMask;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl Not for WordMask {
    type Output = WordMask;
    fn not(self) -> Self {
        WordMask(!self.0)
    }
}

impl FromIterator<WordIdx> for WordMask {
    fn from_iter<T: IntoIterator<Item = WordIdx>>(iter: T) -> Self {
        let mut m = WordMask::EMPTY;
        for w in iter {
            m.insert(w);
        }
        m
    }
}

impl fmt::Display for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut m = WordMask::EMPTY;
        assert!(m.is_empty());
        m.insert(WordIdx(3));
        m.insert(WordIdx(15));
        assert!(m.contains(WordIdx(3)));
        assert!(m.contains(WordIdx(15)));
        assert!(!m.contains(WordIdx(0)));
        assert_eq!(m.count(), 2);
        m.remove(WordIdx(3));
        assert!(!m.contains(WordIdx(3)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = WordMask::from_bits(0b0000_1111);
        let b = WordMask::from_bits(0b0011_1100);
        assert_eq!((a | b).bits(), 0b0011_1111);
        assert_eq!((a & b).bits(), 0b0000_1100);
        assert_eq!((a - b).bits(), 0b0000_0011);
        assert_eq!((a ^ b).bits(), 0b0011_0011);
        assert_eq!((!a).bits(), 0b1111_1111_1111_0000);
    }

    #[test]
    fn first_n_and_full() {
        assert_eq!(WordMask::first_n(0), WordMask::EMPTY);
        assert_eq!(WordMask::first_n(4).count(), 4);
        assert_eq!(WordMask::first_n(16), WordMask::FULL);
        assert_eq!(WordMask::first_n(100), WordMask::FULL);
        assert!(WordMask::FULL.is_full());
    }

    #[test]
    fn iteration_order_ascending() {
        let m: WordMask = [WordIdx(9), WordIdx(1), WordIdx(4)].into_iter().collect();
        let idx: Vec<_> = m.iter().map(|w| w.index()).collect();
        assert_eq!(idx, vec![1, 4, 9]);
    }

    #[test]
    fn single_word_mask() {
        let m = WordMask::single(WordIdx(7));
        assert_eq!(m.count(), 1);
        assert!(m.contains(WordIdx(7)));
    }

    #[test]
    fn display_is_binary() {
        assert_eq!(WordMask::from_bits(0b101).to_string(), "0000000000000101");
    }
}
