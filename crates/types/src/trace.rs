//! Per-core memory-reference traces.
//!
//! The study drives the memory system with the reference stream of each core.
//! A workload is a set of per-core [`TraceOp`] sequences separated into
//! barrier-synchronized phases; non-memory work appears as `Compute` records
//! (the in-order core model of the paper completes all non-memory
//! instructions in one cycle, so a `Compute(n)` record stands for `n` such
//! instructions).

use crate::addr::Addr;
use crate::region::RegionId;
use std::fmt;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A load (read) of one word.
    Load,
    /// A store (write) of one word.
    Store,
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Load => f.write_str("LD"),
            MemKind::Store => f.write_str("ST"),
        }
    }
}

/// One record of a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A word-sized memory access tagged with its software region.
    Mem {
        /// Load or store.
        kind: MemKind,
        /// Word-aligned byte address.
        addr: Addr,
        /// Software region of the accessed data.
        region: RegionId,
    },
    /// `cycles` of non-memory work on the issuing core.
    Compute {
        /// Number of busy cycles.
        cycles: u32,
    },
    /// A global barrier; all cores must reach barrier `id` before any
    /// proceeds. DeNovo self-invalidates at barriers.
    Barrier {
        /// Barrier sequence number (must be identical across cores).
        id: u32,
    },
}

impl TraceOp {
    /// Convenience constructor for a load.
    pub fn load(addr: Addr, region: RegionId) -> Self {
        TraceOp::Mem {
            kind: MemKind::Load,
            addr: addr.word_aligned(),
            region,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr, region: RegionId) -> Self {
        TraceOp::Mem {
            kind: MemKind::Store,
            addr: addr.word_aligned(),
            region,
        }
    }

    /// Convenience constructor for compute work.
    pub fn compute(cycles: u32) -> Self {
        TraceOp::Compute { cycles }
    }

    /// Convenience constructor for a barrier.
    pub fn barrier(id: u32) -> Self {
        TraceOp::Barrier { id }
    }

    /// Whether this record is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self, TraceOp::Mem { .. })
    }

    /// The accessed address, for memory records.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            TraceOp::Mem { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// The accessed region, for memory records.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            TraceOp::Mem { region, .. } => Some(*region),
            _ => None,
        }
    }
}

/// Summary counters of one trace stream, used by trace tooling (`trace
/// info`, `trace diff`) and workload validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records.
    pub ops: u64,
    /// Load records.
    pub loads: u64,
    /// Store records.
    pub stores: u64,
    /// Total busy cycles across compute records.
    pub compute_cycles: u64,
    /// Barrier records.
    pub barriers: u64,
}

impl TraceStats {
    /// Counts one record.
    pub fn record(&mut self, op: &TraceOp) {
        self.ops += 1;
        match op {
            TraceOp::Mem {
                kind: MemKind::Load,
                ..
            } => self.loads += 1,
            TraceOp::Mem {
                kind: MemKind::Store,
                ..
            } => self.stores += 1,
            TraceOp::Compute { cycles } => self.compute_cycles += *cycles as u64,
            TraceOp::Barrier { .. } => self.barriers += 1,
        }
    }

    /// Summarizes a whole stream.
    pub fn from_stream(ops: &[TraceOp]) -> Self {
        let mut stats = TraceStats::default();
        for op in ops {
            stats.record(op);
        }
        stats
    }

    /// Accumulates another stream's counters (e.g. across cores).
    pub fn merge(&mut self, other: &TraceStats) {
        self.ops += other.ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.compute_cycles += other.compute_cycles;
        self.barriers += other.barriers;
    }

    /// Memory records (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_word_align_addresses() {
        let op = TraceOp::load(Addr::new(0x1003), RegionId(1));
        match op {
            TraceOp::Mem { addr, kind, region } => {
                assert_eq!(addr, Addr::new(0x1000));
                assert_eq!(kind, MemKind::Load);
                assert_eq!(region, RegionId(1));
            }
            _ => panic!("expected Mem"),
        }
        assert!(op.is_mem());
        assert!(!TraceOp::compute(5).is_mem());
        assert!(!TraceOp::barrier(0).is_mem());
    }

    #[test]
    fn memkind_display() {
        assert_eq!(MemKind::Load.to_string(), "LD");
        assert_eq!(MemKind::Store.to_string(), "ST");
    }

    #[test]
    fn accessors_expose_mem_fields() {
        let op = TraceOp::store(Addr::new(0x40), RegionId(7));
        assert_eq!(op.addr(), Some(Addr::new(0x40)));
        assert_eq!(op.region(), Some(RegionId(7)));
        assert_eq!(TraceOp::barrier(0).addr(), None);
        assert_eq!(TraceOp::compute(1).region(), None);
    }

    #[test]
    fn stats_count_every_record_kind() {
        let stream = [
            TraceOp::load(Addr::new(0), RegionId(1)),
            TraceOp::store(Addr::new(4), RegionId(1)),
            TraceOp::store(Addr::new(8), RegionId(1)),
            TraceOp::compute(10),
            TraceOp::compute(5),
            TraceOp::barrier(0),
        ];
        let s = TraceStats::from_stream(&stream);
        assert_eq!(s.ops, 6);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.mem_ops(), 3);
        assert_eq!(s.compute_cycles, 15);
        assert_eq!(s.barriers, 1);

        let mut total = TraceStats::default();
        total.merge(&s);
        total.merge(&s);
        assert_eq!(total.ops, 12);
        assert_eq!(total.compute_cycles, 30);
    }
}
