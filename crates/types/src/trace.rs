//! Per-core memory-reference traces.
//!
//! The study drives the memory system with the reference stream of each core.
//! A workload is a set of per-core [`TraceOp`] sequences separated into
//! barrier-synchronized phases; non-memory work appears as `Compute` records
//! (the in-order core model of the paper completes all non-memory
//! instructions in one cycle, so a `Compute(n)` record stands for `n` such
//! instructions).

use crate::addr::Addr;
use crate::region::RegionId;
use std::fmt;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A load (read) of one word.
    Load,
    /// A store (write) of one word.
    Store,
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Load => f.write_str("LD"),
            MemKind::Store => f.write_str("ST"),
        }
    }
}

/// One record of a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A word-sized memory access tagged with its software region.
    Mem {
        /// Load or store.
        kind: MemKind,
        /// Word-aligned byte address.
        addr: Addr,
        /// Software region of the accessed data.
        region: RegionId,
    },
    /// `cycles` of non-memory work on the issuing core.
    Compute {
        /// Number of busy cycles.
        cycles: u32,
    },
    /// A global barrier; all cores must reach barrier `id` before any
    /// proceeds. DeNovo self-invalidates at barriers.
    Barrier {
        /// Barrier sequence number (must be identical across cores).
        id: u32,
    },
}

impl TraceOp {
    /// Convenience constructor for a load.
    pub fn load(addr: Addr, region: RegionId) -> Self {
        TraceOp::Mem {
            kind: MemKind::Load,
            addr: addr.word_aligned(),
            region,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr, region: RegionId) -> Self {
        TraceOp::Mem {
            kind: MemKind::Store,
            addr: addr.word_aligned(),
            region,
        }
    }

    /// Convenience constructor for compute work.
    pub fn compute(cycles: u32) -> Self {
        TraceOp::Compute { cycles }
    }

    /// Convenience constructor for a barrier.
    pub fn barrier(id: u32) -> Self {
        TraceOp::Barrier { id }
    }

    /// Whether this record is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self, TraceOp::Mem { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_word_align_addresses() {
        let op = TraceOp::load(Addr::new(0x1003), RegionId(1));
        match op {
            TraceOp::Mem { addr, kind, region } => {
                assert_eq!(addr, Addr::new(0x1000));
                assert_eq!(kind, MemKind::Load);
                assert_eq!(region, RegionId(1));
            }
            _ => panic!("expected Mem"),
        }
        assert!(op.is_mem());
        assert!(!TraceOp::compute(5).is_mem());
        assert!(!TraceOp::barrier(0).is_mem());
    }

    #[test]
    fn memkind_display() {
        assert_eq!(MemKind::Load.to_string(), "LD");
        assert_eq!(MemKind::Store.to_string(), "ST");
    }
}
