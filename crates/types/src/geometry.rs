//! Tiled-mesh geometry: tiles, cores, and mesh coordinates.
//!
//! The simulated processor (paper §4.2) is a 4×4 tiled design. Each tile has
//! one core, one private L1, and one slice of the shared L2; the four corner
//! tiles additionally host a memory controller.

use std::fmt;

/// Identifier of a tile in the mesh (`0..tiles`), row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileId(pub usize);

/// Identifier of a core. Tiles and cores are in one-to-one correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The tile hosting this core.
    pub const fn tile(self) -> TileId {
        TileId(self.0)
    }
}

impl TileId {
    /// The core hosted on this tile.
    pub const fn core(self) -> CoreId {
        CoreId(self.0)
    }

    /// Mesh coordinate of this tile for a mesh of `cols` columns.
    pub const fn coord(self, cols: usize) -> MeshCoord {
        MeshCoord {
            x: self.0 % cols,
            y: self.0 / cols,
        }
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// (x, y) position of a tile in the mesh; x grows east, y grows south.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeshCoord {
    /// Column (0-based, west to east).
    pub x: usize,
    /// Row (0-based, north to south).
    pub y: usize,
}

impl MeshCoord {
    /// Manhattan distance (number of links traversed under XY routing).
    pub fn hops_to(self, other: MeshCoord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Tile id of this coordinate for a mesh of `cols` columns.
    pub const fn tile(self, cols: usize) -> TileId {
        TileId(self.y * cols + self.x)
    }
}

impl fmt::Display for MeshCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_coord_round_trip() {
        for t in 0..16 {
            let tile = TileId(t);
            assert_eq!(tile.coord(4).tile(4), tile);
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = TileId(0).coord(4); // (0,0)
        let b = TileId(15).coord(4); // (3,3)
        assert_eq!(a.hops_to(b), 6);
        assert_eq!(b.hops_to(a), 6);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn core_tile_correspondence() {
        assert_eq!(CoreId(5).tile(), TileId(5));
        assert_eq!(TileId(7).core(), CoreId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TileId(3).to_string(), "T3");
        assert_eq!(CoreId(3).to_string(), "C3");
        assert_eq!(TileId(6).coord(4).to_string(), "(2,1)");
    }
}
