//! Stable content digests for cell identity and the result cache.
//!
//! The experiment layer names things by *content*: a workload is identified
//! by the digest of its canonical trace encoding, and a result-cache entry by
//! the digest of everything that determines a `SimReport` (trace bytes,
//! system configuration, protocol, engine version). The digest therefore has
//! to be **stable across runs, platforms and process layouts** — which rules
//! out `std::hash` (`RandomState` is seeded per process, and `Hasher`
//! implementations are explicitly not portable). [`Digester`] is a fixed,
//! self-contained 128-bit streaming hash: two independent FNV-1a lanes over
//! the same byte stream, cross-mixed on finalization. It is not
//! cryptographic; it only has to make accidental collisions between a few
//! thousand cache entries vanishingly unlikely.
//!
//! All multi-byte values are folded in little-endian order, and variable-
//! length fields are length-prefixed, so `("ab", "c")` and `("a", "bc")`
//! digest differently.

use std::fmt;
use std::str::FromStr;

/// A 128-bit content digest, displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Digest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("digest must be 32 hex digits, got {}", s.len()));
        }
        u128::from_str_radix(s, 16)
            .map(Digest)
            .map_err(|e| format!("invalid digest `{s}`: {e}"))
    }
}

impl Digest {
    /// The first eight hex digits — a short human-readable handle used in
    /// labels and log lines (full digests remain the identity).
    pub fn short(&self) -> String {
        format!("{:08x}", (self.0 >> 96) as u32)
    }

    /// Digests one byte slice in a single call.
    pub fn of_bytes(bytes: &[u8]) -> Digest {
        let mut d = Digester::new();
        d.write_bytes(bytes);
        d.finish()
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const LANE_A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
// A distinct, odd offset so the two lanes decorrelate immediately.
const LANE_B_OFFSET: u64 = 0x6c62_272e_07bb_0142;

/// Streaming hasher producing a [`Digest`].
#[derive(Debug, Clone)]
pub struct Digester {
    a: u64,
    b: u64,
    len: u64,
}

impl Default for Digester {
    fn default() -> Self {
        Digester::new()
    }
}

impl Digester {
    /// A fresh digester.
    pub fn new() -> Self {
        Digester {
            a: LANE_A_OFFSET,
            b: LANE_B_OFFSET,
            len: 0,
        }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            // Lane B sees each byte offset by its running position, so
            // transposed bytes change it even where lane A would collide.
            self.b = (self.b ^ (byte as u64).wrapping_add(self.len)).wrapping_mul(FNV_PRIME);
            self.len = self.len.wrapping_add(1);
        }
    }

    /// Folds one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds one `usize` (as `u64`, so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Finalizes the digest. The digester can keep accumulating afterwards;
    /// `finish` is a pure read.
    pub fn finish(&self) -> Digest {
        // Cross-mix the lanes with the total length so prefixes of a stream
        // never share a digest with the stream itself.
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let hi = mix(self.a ^ self.len.rotate_left(32));
        let lo = mix(self.b.wrapping_add(self.a.rotate_left(17)));
        Digest(((hi as u128) << 64) | lo as u128)
    }
}

/// An [`std::io::Write`] adapter folding everything written into a
/// [`Digester`] — lets serializers digest their output without materializing
/// it.
#[derive(Debug, Default)]
pub struct DigestWriter {
    digester: Digester,
}

impl DigestWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        DigestWriter::default()
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> Digest {
        self.digester.finish()
    }
}

impl std::io::Write for DigestWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.digester.write_bytes(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        // Pinned value: if this changes, every content-addressed cache entry
        // silently invalidates — bump the engine version instead of editing
        // the expectation.
        let d = Digest::of_bytes(b"denovo-waste");
        assert_eq!(d, Digest::of_bytes(b"denovo-waste"));
        assert_ne!(d, Digest::of_bytes(b"denovo-wastf"));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let d = Digest::of_bytes(b"roundtrip");
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s.parse::<Digest>(), Ok(d));
        assert_eq!(d.short().len(), 8);
        assert!(s.starts_with(&d.short()));
        assert!("xyz".parse::<Digest>().is_err());
        assert!("g".repeat(32).parse::<Digest>().is_err());
    }

    #[test]
    fn length_prefixing_separates_field_boundaries() {
        let mut x = Digester::new();
        x.write_str("ab");
        x.write_str("c");
        let mut y = Digester::new();
        y.write_str("a");
        y.write_str("bc");
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn prefix_never_collides_with_extension() {
        let mut d = Digester::new();
        d.write_bytes(b"abc");
        let short = d.finish();
        d.write_bytes(b"");
        assert_eq!(d.finish(), short, "empty write must not change the state");
        d.write_bytes(b"d");
        assert_ne!(d.finish(), short);
    }

    #[test]
    fn transpositions_change_the_digest() {
        assert_ne!(Digest::of_bytes(b"ab"), Digest::of_bytes(b"ba"));
        assert_ne!(Digest::of_bytes(&[0, 1]), Digest::of_bytes(&[1, 0]));
    }

    #[test]
    fn digest_writer_matches_direct_digesting() {
        use std::io::Write as _;
        let mut w = DigestWriter::new();
        w.write_all(b"chunk one").unwrap();
        w.write_all(b" chunk two").unwrap();
        assert_eq!(w.finish(), Digest::of_bytes(b"chunk one chunk two"));
    }
}
