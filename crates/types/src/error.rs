//! Error types.

use std::error::Error;
use std::fmt;

/// An invalid or inconsistent system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The explanation of what is wrong with the configuration.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("line size");
        assert!(e.to_string().contains("line size"));
        assert_eq!(e.message(), "line size");
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ConfigError::new("x"));
    }
}
