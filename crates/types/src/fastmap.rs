//! A fast open-addressing hash map for `u64` keys.
//!
//! The simulation hot path looks words up by address on every memory
//! reference (waste-profiler pending tables, write-combine state). The std
//! `HashMap` pays SipHash on every probe — robust against adversarial keys,
//! but simulated physical addresses are not adversarial. [`FastMap`] is a
//! linear-probing table with Fibonacci multiplicative hashing and
//! backward-shift deletion: no tombstones, no per-probe branches beyond the
//! key compare, ~5x faster than SipHash for this access pattern.
//!
//! Iteration order over a `FastMap` depends on the hash layout and MUST NOT
//! feed anything order-sensitive (f64 accumulation, message emission);
//! callers that need a stable order collect the keys and sort, exactly as
//! they did with the std `HashMap` (see `CacheWasteProfiler::finish`).

/// Multiplier for Fibonacci hashing: `floor(2^64 / phi)`, odd.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// One slot: an occupied key/value pair, or empty.
type Slot<V> = Option<(u64, V)>;

/// A linear-probing hash map from `u64` keys to `V`.
///
/// Semantically a subset of `std::collections::HashMap<u64, V>`: `get`,
/// `get_mut`, `insert`, `remove`, `contains_key`, `len` and key iteration,
/// with identical observable behavior for any call sequence (iteration
/// *order* excepted, as with any hash map).
#[derive(Debug, Clone)]
pub struct FastMap<V> {
    slots: Vec<Slot<V>>,
    mask: usize,
    shift: u32,
    len: usize,
    // Observability counters, maintained only on `&mut self` paths (the
    // collision branch and `grow_to`) so the shared-read `find` stays
    // untouched. Observer lane: nothing reads these back into simulation.
    probes: u64,
    resizes: u64,
}

impl<V> Default for FastMap<V> {
    fn default() -> Self {
        FastMap::new()
    }
}

impl<V> FastMap<V> {
    /// Creates an empty map (allocates on first insert).
    pub fn new() -> Self {
        FastMap {
            slots: Vec::new(),
            mask: 0,
            shift: 64,
            len: 0,
            probes: 0,
            resizes: 0,
        }
    }

    /// Creates an empty map pre-sized for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = FastMap::new();
        if cap > 0 {
            m.grow_to((cap * 2 + 1).next_power_of_two().max(8));
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn home(&self, key: u64) -> usize {
        // High bits of the Fibonacci product, folded to the table size; the
        // high bits mix far better than the low ones for sequential keys.
        (key.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// Index of `key`'s slot, if present.
    #[inline(always)]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|i| &self.slots[i].as_ref().expect("occupied").1)
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        Some(&mut self.slots[i].as_mut().expect("occupied").1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if the key is absent.
    ///
    /// A single probe replaces the `contains_key` + `insert` pair the
    /// profilers' hot paths would otherwise pay twice per word.
    #[inline]
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: u64, default: F) -> &mut V {
        if self.len * 2 >= self.slots.len() {
            self.grow_to((self.slots.len() * 2).max(8));
        }
        let mut i = self.home(key);
        let idx = loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break i,
                Some(_) => {
                    self.probes += 1;
                    i = (i + 1) & self.mask;
                }
                None => {
                    self.slots[i] = Some((key, default()));
                    self.len += 1;
                    break i;
                }
            }
        };
        &mut self.slots[idx].as_mut().expect("occupied").1
    }

    /// Inserts `key -> value` only if `key` is absent; returns whether the
    /// insert happened.
    ///
    /// A single probe replaces the `contains_key` + `insert` pair that
    /// "record new, never clobber old" callers would otherwise pay.
    #[inline]
    pub fn insert_if_absent(&mut self, key: u64, value: V) -> bool {
        if self.len * 2 >= self.slots.len() {
            self.grow_to((self.slots.len() * 2).max(8));
        }
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return false,
                Some(_) => {
                    self.probes += 1;
                    i = (i + 1) & self.mask;
                }
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return true;
                }
            }
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Grow at 50% occupancy: scalar linear probing degrades sharply past
        // that (absent-key probes scan to the next empty slot, and the
        // profilers' hot calls are mostly absent-key lookups), so trade
        // memory for short chains rather than running dense like a SIMD
        // swiss table would.
        if self.len * 2 >= self.slots.len() {
            self.grow_to((self.slots.len() * 2).max(8));
        }
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => {
                    self.probes += 1;
                    i = (i + 1) & self.mask;
                }
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Uses backward-shift deletion, so probe chains stay tombstone-free and
    /// lookup cost never degrades with churn.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let (_, value) = self.slots[i].take().expect("occupied");
        self.len -= 1;
        // Shift back any entry whose probe chain ran through the hole.
        let mut j = (i + 1) & self.mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.home(*k);
            // Cyclic probe distance from home to the current slot; if the
            // hole lies within it, the entry can (and must) move back.
            let dist_j = j.wrapping_sub(home) & self.mask;
            let dist_i = j.wrapping_sub(i) & self.mask;
            if dist_j >= dist_i {
                self.slots[i] = self.slots[j].take();
                i = j;
            }
            j = (j + 1) & self.mask;
        }
        Some(value)
    }

    /// Iterates over all keys (hash order — not stable across histories;
    /// sort before doing anything order-sensitive).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, _)| *k))
    }

    /// Iterates over `(key, &value)` pairs (hash order — see [`FastMap::keys`]).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Observability counters: cumulative collision probes on mutating
    /// lookups, and table rehashes. Write-side only — the shared-read
    /// `find` path is deliberately uninstrumented.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.probes, self.resizes)
    }

    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        self.resizes += 1;
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| None).collect::<Vec<Slot<V>>>(),
        );
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        for slot in old.into_iter().flatten() {
            let (key, value) = slot;
            let mut i = self.home(key);
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn basic_insert_get_remove() {
        let mut m = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        assert_eq!(m.get(7), Some(&"b"));
        assert!(m.contains_key(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(7), Some("b"));
        assert_eq!(m.remove(7), None);
        assert!(m.get(0).is_none());
    }

    #[test]
    fn zero_key_is_an_ordinary_key() {
        let mut m = FastMap::new();
        m.insert(0, 42u32);
        assert_eq!(m.get(0), Some(&42));
        *m.get_mut(0).unwrap() += 1;
        assert_eq!(m.remove(0), Some(43));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FastMap::with_capacity(4);
        for k in 0..10_000u64 {
            m.insert(k * 64, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 64), Some(&k), "key {k}");
        }
    }

    #[test]
    fn keys_cover_all_entries() {
        let mut m = FastMap::new();
        for k in [3u64, 99, 12_000, 0] {
            m.insert(k, ());
        }
        let mut keys: Vec<u64> = m.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 3, 99, 12_000]);
        assert_eq!(m.iter().count(), 4);
    }

    /// Differential check against `std::collections::HashMap` under a
    /// deterministic churn of inserts/removes/lookups, including the
    /// clustered sequential addresses the simulator actually produces.
    #[test]
    fn matches_std_hashmap_under_churn() {
        let mut fast: FastMap<u64> = FastMap::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..50_000u64 {
            let r = rng();
            // Mix word-aligned clustered keys with sparse ones.
            let key = if r % 3 == 0 {
                (r % 512) * 4
            } else {
                (r >> 16) & 0xFFFF_FFF0
            };
            match r % 5 {
                0..=2 => {
                    assert_eq!(fast.insert(key, step), std_map.insert(key, step));
                }
                3 => {
                    assert_eq!(fast.remove(key), std_map.remove(&key));
                }
                _ => {
                    assert_eq!(fast.get(key), std_map.get(&key));
                }
            }
            assert_eq!(fast.len(), std_map.len());
        }
        let mut a: Vec<u64> = fast.keys().collect();
        let mut b: Vec<u64> = std_map.keys().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut m: FastMap<Vec<u64>> = FastMap::new();
        m.get_or_insert_with(8, Vec::new).push(1);
        m.get_or_insert_with(8, Vec::new).push(2);
        m.get_or_insert_with(16, || vec![9]).push(10);
        assert_eq!(m.get(8), Some(&vec![1, 2]));
        assert_eq!(m.get(16), Some(&vec![9, 10]));
        assert_eq!(m.len(), 2);
        // Must also grow correctly when called on a full table.
        let mut g: FastMap<u64> = FastMap::new();
        for k in 0..1000 {
            *g.get_or_insert_with(k * 4, || k) += 1;
        }
        for k in 0..1000 {
            assert_eq!(g.get(k * 4), Some(&(k + 1)));
        }
    }

    #[test]
    fn probe_stats_count_collisions_and_resizes() {
        let mut m = FastMap::new();
        assert_eq!(m.probe_stats(), (0, 0));
        for k in 0..1000u64 {
            m.insert(k * 64, k);
        }
        let (_, resizes) = m.probe_stats();
        // 1000 entries at 50% occupancy needs a 2048-slot table: 8 -> 2048
        // is 9 doublings (grow_to is also the initial allocation).
        assert!(resizes >= 9, "resizes = {resizes}");
        // Force a guaranteed collision chain: with_capacity avoids growth
        // noise, and two keys sharing a home probe past each other.
        let mut c: FastMap<u64> = FastMap::with_capacity(512);
        let (probes0, _) = c.probe_stats();
        for k in 0..256u64 {
            c.insert(k, k);
        }
        let (probes, _) = c.probe_stats();
        assert!(probes >= probes0, "probe counter must be monotone");
    }

    #[test]
    fn insert_if_absent_never_clobbers() {
        let mut m = FastMap::new();
        assert!(m.insert_if_absent(5, "first"));
        assert!(!m.insert_if_absent(5, "second"));
        assert_eq!(m.get(5), Some(&"first"));
        assert_eq!(m.len(), 1);
        for k in 0..1000u64 {
            m.insert_if_absent(k * 8, "bulk");
        }
        assert_eq!(m.len(), 1001);
    }

    #[test]
    fn backward_shift_keeps_chains_reachable() {
        // Force heavy clustering: many keys landing in adjacent homes, then
        // remove from the middle of chains and verify everything else is
        // still reachable.
        let mut m = FastMap::with_capacity(16);
        let keys: Vec<u64> = (0..64).map(|k| k * 8).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&k), "key {k} lost after deletions");
            }
        }
    }
}
