//! Message and traffic taxonomy for flit-hop accounting.
//!
//! The paper reports all network traffic in *flit-hops*, split by the purpose
//! of the message (load / store / writeback / protocol overhead) and, within
//! the load/store/writeback categories, by control vs. data and by whether the
//! carried words were eventually useful. [`MessageKind`] enumerates the
//! concrete protocol messages exchanged by both protocol families and maps
//! each to its [`MessageClass`]; [`TrafficBucket`] enumerates the stacked-bar
//! buckets used in Figures 5.1a–5.1d.

use std::fmt;

/// The four top-level traffic categories of Figure 5.1a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// Load requests and their responses.
    Load,
    /// Store/ownership requests and their responses.
    Store,
    /// Writebacks from L1 to L2 and from L2 to memory.
    Writeback,
    /// Protocol overhead: invalidations, acks, directory unblocks, NACKs,
    /// Bloom-filter copies.
    Overhead,
}

impl MessageClass {
    /// All classes, in figure order.
    pub const ALL: [MessageClass; 4] = [
        MessageClass::Load,
        MessageClass::Store,
        MessageClass::Writeback,
        MessageClass::Overhead,
    ];

    /// Label used in figure output.
    pub const fn label(self) -> &'static str {
        match self {
            MessageClass::Load => "LD",
            MessageClass::Store => "ST",
            MessageClass::Writeback => "WB",
            MessageClass::Overhead => "Overhead",
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Concrete protocol message types exchanged on the mesh.
///
/// The set is the union of what the MESI directory protocol and the DeNovo
/// protocol families need; each message kind knows which [`MessageClass`] it
/// is accounted under and whether it is a pure control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    // ---- requests -----------------------------------------------------
    /// Read (GetS / DeNovo load) request from an L1 to the home L2 slice.
    LoadReq,
    /// Read request sent directly to a memory controller (L2 request bypass).
    LoadReqToMc,
    /// Write-ownership request: MESI GetM, or a DeNovo registration request.
    StoreReq,
    /// MESI upgrade request (S→M without data).
    UpgradeReq,
    /// Dragon update request: a write to a shared line announces itself to
    /// the home directory so the written words can be pushed to sharers.
    UpdateReq,
    /// L2 miss forwarded to the memory controller.
    MemReadReq,
    /// L2 writeback to memory (request + data).
    MemWriteback,
    // ---- responses ----------------------------------------------------
    /// Data response destined for an L1 cache.
    DataToL1,
    /// Data response destined for an L2 slice (fill or forwarded copy).
    DataToL2,
    /// Data response sent from a memory controller directly to an L1
    /// (MemL1 / MMemL1 optimizations).
    MemDataToL1,
    /// Acknowledgement of a store/registration without data.
    StoreAck,
    /// Dragon update broadcast: the written words pushed to a sharer's L1 so
    /// it never re-fetches the line.
    UpdateData,
    // ---- writebacks ---------------------------------------------------
    /// L1→L2 writeback carrying dirty data.
    L1Writeback,
    /// L1→L2 clean-eviction notification (MESI PutS / clean PutE), control only.
    CleanWritebackCtl,
    /// Combined DeNovo writeback + registration for pending words.
    WritebackAndRegister,
    // ---- protocol overhead ---------------------------------------------
    /// MESI invalidation sent to a sharer, or DeNovo invalidation of a prior
    /// registrant.
    Invalidation,
    /// Invalidation acknowledgement.
    InvAck,
    /// MESI directory-unblock message.
    DirUnblock,
    /// MESI directory-unblock carrying data (MMemL1 "unblock+data").
    DirUnblockWithData,
    /// Negative acknowledgement from a blocking directory.
    Nack,
    /// Request for a copy of an L2 Bloom filter (L2 request bypass).
    BloomCopyReq,
    /// Response carrying an L2 Bloom filter image.
    BloomCopyResp,
}

impl MessageKind {
    /// Which top-level traffic category the message is accounted under.
    ///
    /// Following the paper: the MMemL1 "unblock+data" message is profiled as
    /// *load* traffic, combined writeback+register messages as *writeback*
    /// traffic, and Bloom-filter copies as *overhead*.
    pub const fn class(self) -> MessageClass {
        match self {
            MessageKind::LoadReq
            | MessageKind::LoadReqToMc
            | MessageKind::DataToL1
            | MessageKind::DataToL2
            | MessageKind::MemDataToL1
            | MessageKind::MemReadReq
            | MessageKind::DirUnblockWithData => MessageClass::Load,
            MessageKind::StoreReq
            | MessageKind::UpgradeReq
            | MessageKind::UpdateReq
            | MessageKind::UpdateData
            | MessageKind::StoreAck => MessageClass::Store,
            MessageKind::L1Writeback
            | MessageKind::MemWriteback
            | MessageKind::WritebackAndRegister => MessageClass::Writeback,
            MessageKind::Invalidation
            | MessageKind::InvAck
            | MessageKind::DirUnblock
            | MessageKind::Nack
            | MessageKind::CleanWritebackCtl
            | MessageKind::BloomCopyReq
            | MessageKind::BloomCopyResp => MessageClass::Overhead,
        }
    }

    /// Whether this message never carries data words.
    pub const fn is_control_only(self) -> bool {
        matches!(
            self,
            MessageKind::LoadReq
                | MessageKind::LoadReqToMc
                | MessageKind::StoreReq
                | MessageKind::UpgradeReq
                | MessageKind::UpdateReq
                | MessageKind::MemReadReq
                | MessageKind::StoreAck
                | MessageKind::CleanWritebackCtl
                | MessageKind::Invalidation
                | MessageKind::InvAck
                | MessageKind::DirUnblock
                | MessageKind::Nack
                | MessageKind::BloomCopyReq
        )
    }

    /// Whether this is a request (as opposed to a response or writeback).
    pub const fn is_request(self) -> bool {
        matches!(
            self,
            MessageKind::LoadReq
                | MessageKind::LoadReqToMc
                | MessageKind::StoreReq
                | MessageKind::UpgradeReq
                | MessageKind::UpdateReq
                | MessageKind::MemReadReq
                | MessageKind::BloomCopyReq
        )
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// The stacked-bar buckets of Figures 5.1b–5.1d, plus the overall overhead
/// bucket of Figure 5.1a.
///
/// Load and store traffic is broken into request control, response control,
/// and response data by destination (L1 / L2) and usefulness; writeback
/// traffic into control and data by destination (L2 / memory) and usefulness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficBucket {
    /// Request control flits (`Req Ctl`).
    ReqCtl,
    /// Response header/control flits, including unfilled data-flit fractions
    /// (`Resp Ctl`).
    RespCtl,
    /// Response data destined for an L1 that was eventually used.
    RespL1Used,
    /// Response data destined for an L1 that was wasted.
    RespL1Waste,
    /// Response data destined for an L2 that was eventually used.
    RespL2Used,
    /// Response data destined for an L2 that was wasted.
    RespL2Waste,
    /// Writeback control flits.
    WbControl,
    /// Writeback data into the L2 that was dirty/useful.
    WbL2Used,
    /// Writeback data into the L2 that was unmodified (waste).
    WbL2Waste,
    /// Writeback data to memory that was dirty/useful.
    WbMemUsed,
    /// Writeback data to memory that was unmodified (waste).
    WbMemWaste,
    /// Protocol overhead flits (invalidations, acks, unblocks, NACKs, Bloom
    /// copies).
    Overhead,
}

impl TrafficBucket {
    /// Every bucket, in a stable serialization order (request/response
    /// buckets, writeback buckets, then overhead).
    pub const ALL: [TrafficBucket; 12] = [
        TrafficBucket::ReqCtl,
        TrafficBucket::RespCtl,
        TrafficBucket::RespL1Used,
        TrafficBucket::RespL1Waste,
        TrafficBucket::RespL2Used,
        TrafficBucket::RespL2Waste,
        TrafficBucket::WbControl,
        TrafficBucket::WbL2Used,
        TrafficBucket::WbL2Waste,
        TrafficBucket::WbMemUsed,
        TrafficBucket::WbMemWaste,
        TrafficBucket::Overhead,
    ];

    /// Buckets used for load/store breakdowns (Figures 5.1b/5.1c), in
    /// stacking order.
    pub const REQUEST_RESPONSE: [TrafficBucket; 6] = [
        TrafficBucket::ReqCtl,
        TrafficBucket::RespCtl,
        TrafficBucket::RespL1Used,
        TrafficBucket::RespL1Waste,
        TrafficBucket::RespL2Used,
        TrafficBucket::RespL2Waste,
    ];

    /// Buckets used for the writeback breakdown (Figure 5.1d), in stacking
    /// order.
    pub const WRITEBACK: [TrafficBucket; 5] = [
        TrafficBucket::WbControl,
        TrafficBucket::WbL2Used,
        TrafficBucket::WbL2Waste,
        TrafficBucket::WbMemUsed,
        TrafficBucket::WbMemWaste,
    ];

    /// Whether the bucket counts wasted data flit-hops.
    pub const fn is_waste(self) -> bool {
        matches!(
            self,
            TrafficBucket::RespL1Waste
                | TrafficBucket::RespL2Waste
                | TrafficBucket::WbL2Waste
                | TrafficBucket::WbMemWaste
        )
    }

    /// Figure label for the bucket.
    pub const fn label(self) -> &'static str {
        match self {
            TrafficBucket::ReqCtl => "Req Ctl",
            TrafficBucket::RespCtl => "Resp Ctl",
            TrafficBucket::RespL1Used => "Resp L1 Used",
            TrafficBucket::RespL1Waste => "Resp L1 Waste",
            TrafficBucket::RespL2Used => "Resp L2 Used",
            TrafficBucket::RespL2Waste => "Resp L2 Waste",
            TrafficBucket::WbControl => "Control",
            TrafficBucket::WbL2Used => "L2 Used",
            TrafficBucket::WbL2Waste => "L2 Waste",
            TrafficBucket::WbMemUsed => "Mem Used",
            TrafficBucket::WbMemWaste => "Mem Waste",
            TrafficBucket::Overhead => "Overhead",
        }
    }
}

impl fmt::Display for TrafficBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_match_figure_legend() {
        assert_eq!(MessageClass::Load.to_string(), "LD");
        assert_eq!(MessageClass::Writeback.to_string(), "WB");
        assert_eq!(MessageClass::ALL.len(), 4);
    }

    #[test]
    fn bucket_all_is_complete_and_duplicate_free() {
        for w in TrafficBucket::ALL.windows(2) {
            assert!(
                TrafficBucket::ALL.iter().filter(|b| **b == w[0]).count() == 1,
                "{:?} listed twice",
                w[0]
            );
        }
        for b in TrafficBucket::REQUEST_RESPONSE
            .iter()
            .chain(TrafficBucket::WRITEBACK.iter())
            .chain(std::iter::once(&TrafficBucket::Overhead))
        {
            assert!(TrafficBucket::ALL.contains(b), "{b:?} missing from ALL");
        }
    }

    #[test]
    fn unblock_with_data_is_profiled_as_load_traffic() {
        // Paper §5.2.4: MMemL1 turns directory unblocks into unblock+data
        // messages "that are profiled as load traffic".
        assert_eq!(MessageKind::DirUnblockWithData.class(), MessageClass::Load);
        assert_eq!(MessageKind::DirUnblock.class(), MessageClass::Overhead);
    }

    #[test]
    fn combined_writeback_register_is_writeback_traffic() {
        // Paper §5.2.2 (LU discussion): combined messages are profiled as
        // writeback traffic.
        assert_eq!(
            MessageKind::WritebackAndRegister.class(),
            MessageClass::Writeback
        );
    }

    #[test]
    fn bloom_copies_are_overhead() {
        assert_eq!(MessageKind::BloomCopyReq.class(), MessageClass::Overhead);
        assert_eq!(MessageKind::BloomCopyResp.class(), MessageClass::Overhead);
        assert!(MessageKind::BloomCopyReq.is_control_only());
        assert!(!MessageKind::BloomCopyResp.is_control_only());
    }

    #[test]
    fn requests_are_control_only() {
        for k in [
            MessageKind::LoadReq,
            MessageKind::LoadReqToMc,
            MessageKind::StoreReq,
            MessageKind::UpgradeReq,
            MessageKind::MemReadReq,
        ] {
            assert!(k.is_request(), "{k} should be a request");
            assert!(k.is_control_only(), "{k} should be control-only");
        }
        assert!(!MessageKind::DataToL1.is_request());
        assert!(!MessageKind::DataToL1.is_control_only());
    }

    #[test]
    fn update_messages_are_store_traffic() {
        // Dragon's update broadcast replaces store invalidations: the
        // request announces the write, the data message carries the written
        // words. Both are accounted as store traffic (the class whose
        // RespL1Used/Waste buckets the update-word classification lands in).
        assert_eq!(MessageKind::UpdateReq.class(), MessageClass::Store);
        assert_eq!(MessageKind::UpdateData.class(), MessageClass::Store);
        assert!(MessageKind::UpdateReq.is_control_only());
        assert!(MessageKind::UpdateReq.is_request());
        assert!(!MessageKind::UpdateData.is_control_only());
        assert!(!MessageKind::UpdateData.is_request());
    }

    #[test]
    fn waste_buckets_are_marked() {
        assert!(TrafficBucket::RespL1Waste.is_waste());
        assert!(TrafficBucket::WbMemWaste.is_waste());
        assert!(!TrafficBucket::RespL1Used.is_waste());
        assert!(!TrafficBucket::ReqCtl.is_waste());
    }

    #[test]
    fn bucket_groups_have_expected_sizes() {
        assert_eq!(TrafficBucket::REQUEST_RESPONSE.len(), 6);
        assert_eq!(TrafficBucket::WRITEBACK.len(), 5);
        assert_eq!(TrafficBucket::ReqCtl.label(), "Req Ctl");
    }
}
