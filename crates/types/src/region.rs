//! Software regions, Flex communication regions, and bypass annotations.
//!
//! DeNovo relies on the software (language/compiler, DPJ-style) to partition
//! program data into *regions*. Regions serve three purposes in the study:
//!
//! 1. Self-invalidation at barriers invalidates only data in regions that may
//!    have been written in the previous phase (paper §2).
//! 2. The *Flex* optimization attaches a *communication region* to a region —
//!    the set of struct fields actually communicated — so a responder sends
//!    only those words, potentially gathered across several cache lines
//!    (paper §2, §3.1 "L2 Flex").
//! 3. The *L2 Response Bypass* optimization lets the programmer mark regions
//!    whose data should not be installed in the L2 (paper §3.1).

use crate::addr::{Addr, LineAddr, WORD_BYTES};
use crate::mask::WordMask;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a software data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(pub u16);

impl RegionId {
    /// The catch-all region used for data with no specific annotation
    /// (stack, scalars, untracked heap).
    pub const DEFAULT: RegionId = RegionId(0);
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// How a region interacts with the L2 bypass optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BypassKind {
    /// Normal region: responses are installed in the L2 as usual.
    #[default]
    None,
    /// Read-then-overwritten by the same core within a phase
    /// (paper §3.1, access pattern 1).
    ReadThenOverwritten,
    /// Streaming data whose footprint exceeds the L2 and is read once per
    /// phase (paper §3.1, access pattern 2).
    StreamingOncePerPhase,
}

impl BypassKind {
    /// Whether responses for this region should bypass the L2.
    pub const fn bypasses_l2(self) -> bool {
        !matches!(self, BypassKind::None)
    }
}

/// Flex communication region: which words of an object are actually
/// communicated, expressed relative to the object base.
///
/// A communication region describes the layout of one *object* of a region:
/// the object size (in bytes, possibly spanning several cache lines) and the
/// byte offsets of the fields that are useful to the consuming phase. The
/// hardware tables at each cache controller (paper §2) are modelled by
/// storing one `CommRegion` per region in the [`RegionTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommRegion {
    /// Size of one object of the region, in bytes.
    pub object_bytes: u64,
    /// Byte offsets (relative to the object base) of the communicated fields.
    pub useful_offsets: Vec<u64>,
}

impl CommRegion {
    /// A communication region covering the entire object (Flex degenerates to
    /// whole-object transfer).
    pub fn whole_object(object_bytes: u64) -> Self {
        let useful_offsets = (0..object_bytes / WORD_BYTES)
            .map(|i| i * WORD_BYTES)
            .collect();
        CommRegion {
            object_bytes,
            useful_offsets,
        }
    }

    /// Number of useful words per object.
    pub fn useful_words(&self) -> usize {
        self.useful_offsets.len()
    }

    /// Byte address of the base of the object containing `addr`, given the
    /// base address of the region's backing array.
    pub fn object_base(&self, region_base: Addr, addr: Addr) -> Addr {
        let rel = addr.byte() - region_base.byte();
        let obj = rel / self.object_bytes;
        Addr::new(region_base.byte() + obj * self.object_bytes)
    }

    /// All useful word addresses of the object containing `addr`.
    pub fn useful_addrs(&self, region_base: Addr, addr: Addr) -> Vec<Addr> {
        let base = self.object_base(region_base, addr);
        self.useful_offsets
            .iter()
            .map(|off| Addr::new(base.byte() + off).word_aligned())
            .collect()
    }

    /// Groups the useful words of the object containing `addr` by cache line,
    /// returning `(line, mask-of-useful-words)` pairs sorted by line address.
    pub fn useful_words_by_line(
        &self,
        region_base: Addr,
        addr: Addr,
        line_bytes: u64,
    ) -> Vec<(LineAddr, WordMask)> {
        let mut by_line: BTreeMap<LineAddr, WordMask> = BTreeMap::new();
        for a in self.useful_addrs(region_base, addr) {
            let line = LineAddr::containing(a, line_bytes);
            by_line
                .entry(line)
                .or_insert(WordMask::EMPTY)
                .insert(a.word_in_line(line_bytes));
        }
        by_line.into_iter().collect()
    }
}

/// Static description of one region of program data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Region identifier.
    pub id: RegionId,
    /// Human-readable name ("bodies", "edges", "dest array", ...).
    pub name: String,
    /// Base byte address of the region's backing storage.
    pub base: Addr,
    /// Total size of the region in bytes.
    pub bytes: u64,
    /// Flex communication region, if the software supplies one.
    pub comm: Option<CommRegion>,
    /// L2 bypass annotation.
    pub bypass: BypassKind,
    /// Whether data in this region may be written during parallel phases
    /// (drives self-invalidation precision).
    pub written_in_parallel_phases: bool,
}

impl RegionInfo {
    /// Creates a plain region with no Flex or bypass annotations.
    pub fn plain(id: RegionId, name: impl Into<String>, base: Addr, bytes: u64) -> Self {
        RegionInfo {
            id,
            name: name.into(),
            base,
            bytes,
            comm: None,
            bypass: BypassKind::None,
            written_in_parallel_phases: true,
        }
    }

    /// Whether `addr` falls within this region.
    ///
    /// Written as a subtraction so a region whose `base + bytes` would
    /// overflow `u64` (possible for tables parsed from external trace
    /// files) is still answered correctly rather than panicking or
    /// wrapping.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.byte() >= self.base.byte() && addr.byte() - self.base.byte() < self.bytes
    }
}

/// The per-application table of regions: the information the software hands
/// to the hardware (region sizes, communication regions, bypass marks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionTable {
    regions: Vec<RegionInfo>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RegionTable::default()
    }

    /// Adds a region and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a region with the same id is already present.
    pub fn insert(&mut self, info: RegionInfo) -> RegionId {
        assert!(
            self.get(info.id).is_none(),
            "duplicate region id {:?}",
            info.id
        );
        let id = info.id;
        self.regions.push(info);
        id
    }

    /// Looks a region up by id.
    pub fn get(&self, id: RegionId) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Finds the region containing a byte address, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Iterator over all regions.
    pub fn iter(&self) -> impl Iterator<Item = &RegionInfo> {
        self.regions.iter()
    }

    /// Number of regions in the table.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the table contains no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Whether the region should bypass the L2 (false for unknown regions).
    pub fn bypasses_l2(&self, id: RegionId) -> bool {
        self.get(id)
            .map(|r| r.bypass.bypasses_l2())
            .unwrap_or(false)
    }

    /// The Flex communication region for `id`, if one was supplied.
    pub fn comm_region(&self, id: RegionId) -> Option<(&RegionInfo, &CommRegion)> {
        self.get(id).and_then(|r| r.comm.as_ref().map(|c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn struct_region() -> RegionInfo {
        // 96-byte objects (1.5 cache lines), of which only 4 words are useful.
        RegionInfo {
            id: RegionId(3),
            name: "bodies".into(),
            base: Addr::new(0x1_0000),
            bytes: 96 * 100,
            comm: Some(CommRegion {
                object_bytes: 96,
                useful_offsets: vec![0, 8, 16, 80],
            }),
            bypass: BypassKind::None,
            written_in_parallel_phases: true,
        }
    }

    #[test]
    fn region_lookup_by_address() {
        let mut t = RegionTable::new();
        t.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        t.insert(RegionInfo::plain(RegionId(2), "b", Addr::new(4096), 4096));
        assert_eq!(t.region_of(Addr::new(10)).unwrap().id, RegionId(1));
        assert_eq!(t.region_of(Addr::new(5000)).unwrap().id, RegionId(2));
        assert!(t.region_of(Addr::new(100_000)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn contains_survives_base_plus_bytes_overflow() {
        // Region tables parsed from external trace files can carry
        // extreme values; membership must not panic or wrap.
        let r = RegionInfo::plain(RegionId(1), "edge", Addr::new(u64::MAX - 8), 64);
        assert!(r.contains(Addr::new(u64::MAX - 4)));
        assert!(!r.contains(Addr::new(0)));
        assert!(!r.contains(Addr::new(u64::MAX - 16)));
    }

    #[test]
    #[should_panic(expected = "duplicate region id")]
    fn duplicate_region_panics() {
        let mut t = RegionTable::new();
        t.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 64));
        t.insert(RegionInfo::plain(RegionId(1), "b", Addr::new(64), 64));
    }

    #[test]
    fn comm_region_object_base_and_words() {
        let r = struct_region();
        let comm = r.comm.as_ref().unwrap();
        // Address inside the second object (object 1 spans bytes 96..192).
        let addr = Addr::new(0x1_0000 + 96 + 20);
        let base = comm.object_base(r.base, addr);
        assert_eq!(base.byte(), 0x1_0000 + 96);
        let addrs = comm.useful_addrs(r.base, addr);
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0].byte(), 0x1_0000 + 96);
        assert_eq!(addrs[3].byte(), 0x1_0000 + 96 + 80);
    }

    #[test]
    fn comm_region_grouping_spans_lines() {
        let r = struct_region();
        let comm = r.comm.as_ref().unwrap();
        // Object 1 occupies bytes 96..192 which spans lines at 64 and 128.
        let addr = Addr::new(0x1_0000 + 100);
        let by_line = comm.useful_words_by_line(r.base, addr, 64);
        assert_eq!(by_line.len(), 2);
        let total: usize = by_line.iter().map(|(_, m)| m.count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn whole_object_comm_region_covers_every_word() {
        let c = CommRegion::whole_object(64);
        assert_eq!(c.useful_words(), 16);
    }

    #[test]
    fn bypass_annotations() {
        let mut t = RegionTable::new();
        let mut r = RegionInfo::plain(RegionId(9), "edges", Addr::new(0), 1 << 20);
        r.bypass = BypassKind::StreamingOncePerPhase;
        t.insert(r);
        assert!(t.bypasses_l2(RegionId(9)));
        assert!(!t.bypasses_l2(RegionId(42)));
        assert!(BypassKind::ReadThenOverwritten.bypasses_l2());
        assert!(!BypassKind::None.bypasses_l2());
    }
}
