//! The protocol configuration space studied by the paper (§3.2–§3.3), plus
//! the update-based extension point.
//!
//! Two MESI variants and seven DeNovo variants are evaluated by the paper.
//! Each variant is a point in a feature lattice; [`ProtocolKind`] enumerates
//! the points and exposes the feature predicates the simulator queries. The
//! tenth entry, [`ProtocolKind::Dragon`], is a classic write-update design
//! (outside the paper's figure set, hence [`ProtocolKind::PAPER`]) that puts
//! the invalidate-vs-update axis of the coherence design space under the
//! same waste taxonomy.

use std::fmt;

/// One of the protocol configurations in the registry: the nine the paper
/// evaluates plus the Dragon write-update extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Baseline directory-based MESI (GEMS-style, blocking directory,
    /// inclusive L2, fetch-on-write).
    Mesi,
    /// MESI + "Memory Controller to L1 Transfer" (unblock+data messages;
    /// write-miss fills are not forwarded to the L2).
    MMemL1,
    /// Baseline DeNovo line protocol with write-combining registration.
    DeNovo,
    /// DeNovo + Flex for responses served by on-chip caches (L1/L2).
    DFlexL1,
    /// DeNovo + L2 write-validate + dirty-words-only L2→memory writebacks.
    DValidateL2,
    /// `DValidateL2` + memory-controller-to-L1 parallel transfer.
    DMemL1,
    /// `DMemL1` + Flex on-chip and at the memory controller.
    DFlexL2,
    /// `DFlexL2` + L2 response bypass for annotated regions.
    DBypL2,
    /// `DBypL2` + L2 request bypass using Bloom filters.
    DBypFull,
    /// Dragon write-update protocol (Exclusive / Shared-Clean /
    /// Shared-Modified / Modified): a write to a shared line broadcasts the
    /// written words to the sharers as an *update* instead of invalidating
    /// them, so sharers never re-fetch. Not part of the paper's figure set.
    Dragon,
}

impl ProtocolKind {
    /// Every registered configuration, in figure order: the paper's nine
    /// followed by the update-based extension.
    pub const ALL: [ProtocolKind; 10] = [
        ProtocolKind::Mesi,
        ProtocolKind::MMemL1,
        ProtocolKind::DeNovo,
        ProtocolKind::DFlexL1,
        ProtocolKind::DValidateL2,
        ProtocolKind::DMemL1,
        ProtocolKind::DFlexL2,
        ProtocolKind::DBypL2,
        ProtocolKind::DBypFull,
        ProtocolKind::Dragon,
    ];

    /// The nine configurations the paper's figures present, in their order —
    /// the protocol axis of the reproduced evaluation matrix. [`Self::ALL`]
    /// additionally carries the update-based extension.
    pub const PAPER: [ProtocolKind; 9] = [
        ProtocolKind::Mesi,
        ProtocolKind::MMemL1,
        ProtocolKind::DeNovo,
        ProtocolKind::DFlexL1,
        ProtocolKind::DValidateL2,
        ProtocolKind::DMemL1,
        ProtocolKind::DFlexL2,
        ProtocolKind::DBypL2,
        ProtocolKind::DBypFull,
    ];

    /// Whether this is a DeNovo-family configuration.
    pub const fn is_denovo(self) -> bool {
        matches!(
            self,
            ProtocolKind::DeNovo
                | ProtocolKind::DFlexL1
                | ProtocolKind::DValidateL2
                | ProtocolKind::DMemL1
                | ProtocolKind::DFlexL2
                | ProtocolKind::DBypL2
                | ProtocolKind::DBypFull
        )
    }

    /// Whether this is a MESI-family configuration.
    pub const fn is_mesi(self) -> bool {
        matches!(self, ProtocolKind::Mesi | ProtocolKind::MMemL1)
    }

    /// Whether this is a write-update (rather than write-invalidate)
    /// configuration.
    pub const fn is_update_based(self) -> bool {
        matches!(self, ProtocolKind::Dragon)
    }

    /// L1 write policy is write-validate (no fetch on L1 write miss).
    /// True for every DeNovo variant; MESI is fetch-on-write throughout.
    pub const fn l1_write_validate(self) -> bool {
        self.is_denovo()
    }

    /// L2 write policy is write-validate (no memory fetch on L2 write miss).
    pub const fn l2_write_validate(self) -> bool {
        matches!(
            self,
            ProtocolKind::DValidateL2
                | ProtocolKind::DMemL1
                | ProtocolKind::DFlexL2
                | ProtocolKind::DBypL2
                | ProtocolKind::DBypFull
        )
    }

    /// L2→memory writebacks carry only dirty words.
    pub const fn dirty_words_only_writeback(self) -> bool {
        self.l2_write_validate()
    }

    /// L1→L2 writebacks carry only dirty words (all DeNovo variants).
    pub const fn l1_dirty_words_only_writeback(self) -> bool {
        self.is_denovo()
    }

    /// Memory-controller-to-L1 transfer (data sent to L1 and L2 in parallel;
    /// for MESI, the unblock+data variant).
    pub const fn mem_to_l1(self) -> bool {
        matches!(
            self,
            ProtocolKind::MMemL1
                | ProtocolKind::DMemL1
                | ProtocolKind::DFlexL2
                | ProtocolKind::DBypL2
                | ProtocolKind::DBypFull
        )
    }

    /// Flex applied to responses served by on-chip caches.
    pub const fn flex_on_chip(self) -> bool {
        matches!(
            self,
            ProtocolKind::DFlexL1
                | ProtocolKind::DFlexL2
                | ProtocolKind::DBypL2
                | ProtocolKind::DBypFull
        )
    }

    /// Flex applied at the memory controller ("L2 Flex").
    pub const fn flex_at_memory(self) -> bool {
        matches!(
            self,
            ProtocolKind::DFlexL2 | ProtocolKind::DBypL2 | ProtocolKind::DBypFull
        )
    }

    /// L2 response bypass for annotated regions.
    pub const fn l2_response_bypass(self) -> bool {
        matches!(self, ProtocolKind::DBypL2 | ProtocolKind::DBypFull)
    }

    /// L2 request bypass (Bloom-filter-guarded direct-to-MC requests).
    pub const fn l2_request_bypass(self) -> bool {
        matches!(self, ProtocolKind::DBypFull)
    }

    /// Whether the shared L2 is inclusive of the L1s (MESI and Dragon, whose
    /// directories live at the home slice) or non-inclusive (DeNovo).
    pub const fn inclusive_l2(self) -> bool {
        self.is_mesi() || self.is_update_based()
    }

    /// Short name used in figures and reports.
    pub const fn name(self) -> &'static str {
        match self {
            ProtocolKind::Mesi => "MESI",
            ProtocolKind::MMemL1 => "MMemL1",
            ProtocolKind::DeNovo => "DeNovo",
            ProtocolKind::DFlexL1 => "DFlexL1",
            ProtocolKind::DValidateL2 => "DValidateL2",
            ProtocolKind::DMemL1 => "DMemL1",
            ProtocolKind::DFlexL2 => "DFlexL2",
            ProtocolKind::DBypL2 => "DBypL2",
            ProtocolKind::DBypFull => "DBypFull",
            ProtocolKind::Dragon => "Dragon",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_ten_in_figure_order() {
        assert_eq!(ProtocolKind::ALL.len(), 10);
        assert_eq!(ProtocolKind::ALL[0], ProtocolKind::Mesi);
        assert_eq!(ProtocolKind::ALL[8], ProtocolKind::DBypFull);
        assert_eq!(ProtocolKind::ALL[9], ProtocolKind::Dragon);
        // The paper set is exactly ALL minus the update-based extension, in
        // the same order — the figure matrix depends on that prefix property.
        assert_eq!(ProtocolKind::PAPER.len(), 9);
        assert_eq!(&ProtocolKind::ALL[..9], &ProtocolKind::PAPER[..]);
        assert!(ProtocolKind::PAPER.iter().all(|p| !p.is_update_based()));
    }

    #[test]
    fn family_predicates_partition_the_registry() {
        for p in ProtocolKind::ALL {
            let families = [p.is_mesi(), p.is_denovo(), p.is_update_based()];
            assert_eq!(
                families.iter().filter(|f| **f).count(),
                1,
                "{p} must belong to exactly one family"
            );
        }
    }

    #[test]
    fn dragon_is_update_based_and_inclusive() {
        let p = ProtocolKind::Dragon;
        assert!(p.is_update_based());
        assert!(!p.is_mesi());
        assert!(!p.is_denovo());
        assert!(p.inclusive_l2());
        // Dragon is fetch-on-write with whole-line writebacks, like MESI.
        assert!(!p.l1_write_validate());
        assert!(!p.l2_write_validate());
        assert!(!p.l1_dirty_words_only_writeback());
        assert!(!p.mem_to_l1());
        assert!(!p.flex_on_chip());
        assert!(!p.l2_response_bypass());
        assert!(!p.l2_request_bypass());
    }

    #[test]
    fn feature_lattice_is_monotone_in_denovo_chain() {
        // Each successive DeNovo variant only adds features.
        let chain = [
            ProtocolKind::DValidateL2,
            ProtocolKind::DMemL1,
            ProtocolKind::DFlexL2,
            ProtocolKind::DBypL2,
            ProtocolKind::DBypFull,
        ];
        let features = |p: ProtocolKind| {
            [
                p.l2_write_validate(),
                p.mem_to_l1(),
                p.flex_at_memory(),
                p.l2_response_bypass(),
                p.l2_request_bypass(),
            ]
        };
        for w in chain.windows(2) {
            let (a, b) = (features(w[0]), features(w[1]));
            for i in 0..a.len() {
                assert!(
                    !a[i] || b[i],
                    "{:?} lost a feature moving to {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn mesi_variants() {
        assert!(ProtocolKind::Mesi.is_mesi());
        assert!(!ProtocolKind::Mesi.mem_to_l1());
        assert!(ProtocolKind::MMemL1.mem_to_l1());
        assert!(ProtocolKind::Mesi.inclusive_l2());
        assert!(!ProtocolKind::Mesi.l1_write_validate());
        assert!(!ProtocolKind::MMemL1.flex_on_chip());
    }

    #[test]
    fn denovo_baselines() {
        assert!(ProtocolKind::DeNovo.is_denovo());
        assert!(ProtocolKind::DeNovo.l1_write_validate());
        assert!(!ProtocolKind::DeNovo.l2_write_validate());
        assert!(!ProtocolKind::DeNovo.inclusive_l2());
        assert!(ProtocolKind::DFlexL1.flex_on_chip());
        assert!(!ProtocolKind::DFlexL1.flex_at_memory());
    }

    #[test]
    fn fully_optimized_protocol_has_every_feature() {
        let p = ProtocolKind::DBypFull;
        assert!(p.l1_write_validate());
        assert!(p.l2_write_validate());
        assert!(p.dirty_words_only_writeback());
        assert!(p.mem_to_l1());
        assert!(p.flex_on_chip());
        assert!(p.flex_at_memory());
        assert!(p.l2_response_bypass());
        assert!(p.l2_request_bypass());
    }

    #[test]
    fn names_are_the_figure_labels() {
        let names: Vec<_> = ProtocolKind::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "MESI",
                "MMemL1",
                "DeNovo",
                "DFlexL1",
                "DValidateL2",
                "DMemL1",
                "DFlexL2",
                "DBypL2",
                "DBypFull",
                "Dragon"
            ]
        );
    }
}
