//! Time base shared by all components.

/// A simulation cycle count (core clock domain).
pub type Cycle = u64;
