//! Time base shared by all components.

use std::ops::{Add, AddAssign};

/// A simulation cycle count (core clock domain).
pub type Cycle = u64;

/// A simulation timestamp carried on two lanes.
///
/// The **canonical** lane is always advanced by the analytic network model
/// and is the only lane the engine consults for anything that influences
/// *what happens*: core scheduling order, cache and directory state, the
/// write-combining timeout, DRAM row-buffer evolution — and therefore every
/// flit-hop and every waste classification. The **timed** lane is advanced
/// by whichever network model the run configured and is what the reported
/// execution time is built from.
///
/// Under the analytic model the two lanes are identical at every point, so
/// the default configuration reproduces the single-clock engine bit for
/// bit. Under the flit-level model the timed lane runs at or behind the
/// canonical lane (per-send latencies are clamped to the analytic lower
/// bound, see `DESIGN.md` §11), which is exactly what makes traffic
/// bit-identical across network models while latency is free to grow under
/// congestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Canonical-lane cycle (analytic network timing; orders all state
    /// mutation).
    pub canon: Cycle,
    /// Timed-lane cycle (configured network-model timing; reported time).
    pub timed: Cycle,
}

impl Stamp {
    /// A timestamp with both lanes at `cycle` (the lanes only diverge
    /// through network sends, never at creation).
    pub const fn at(cycle: Cycle) -> Self {
        Stamp {
            canon: cycle,
            timed: cycle,
        }
    }

    /// Lane-wise maximum — the join of two arrival times.
    #[inline(always)]
    pub fn max(self, other: Stamp) -> Stamp {
        Stamp {
            canon: self.canon.max(other.canon),
            timed: self.timed.max(other.timed),
        }
    }

    /// Timed-lane duration since `earlier` (saturating) — what execution
    /// time breakdowns are charged with.
    #[inline(always)]
    pub fn since(self, earlier: Stamp) -> Cycle {
        self.timed.saturating_sub(earlier.timed)
    }

    /// Whether both lanes are at or past `other` (time never runs
    /// backwards on either lane).
    #[inline(always)]
    pub fn not_before(self, other: Stamp) -> bool {
        self.canon >= other.canon && self.timed >= other.timed
    }
}

impl Add<Cycle> for Stamp {
    type Output = Stamp;

    #[inline(always)]
    fn add(self, rhs: Cycle) -> Stamp {
        Stamp {
            canon: self.canon + rhs,
            timed: self.timed + rhs,
        }
    }
}

impl AddAssign<Cycle> for Stamp {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Cycle) {
        self.canon += rhs;
        self.timed += rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_start_together_and_join_lane_wise() {
        let s = Stamp::at(10);
        assert_eq!(s.canon, s.timed);
        let a = Stamp { canon: 5, timed: 9 };
        let b = Stamp { canon: 7, timed: 8 };
        assert_eq!(a.max(b), Stamp { canon: 7, timed: 9 });
        assert_eq!((a + 3).timed, 12);
        assert_eq!(b.since(a), 0, "since saturates instead of underflowing");
        assert_eq!(a.since(b), 1);
        assert!(!a.not_before(b));
        assert!(a.max(b).not_before(a));
    }
}
