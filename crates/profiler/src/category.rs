//! Waste categories and aggregated reports.

use std::fmt;
use tw_types::MessageClass;

/// Classification of one word moved through the memory hierarchy (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WasteCategory {
    /// The word's value was read by the program (or returned by the L2 in a
    /// response): useful data movement.
    Used,
    /// The word was overwritten before being used.
    Write,
    /// The word was brought into a cache that already held it.
    Fetch,
    /// The word was invalidated by the coherence protocol before being used.
    Invalidate,
    /// The word was evicted before being used or overwritten.
    Evict,
    /// The word was still unclassified when the simulation ended.
    Unevicted,
    /// The word was fetched from DRAM but dropped at the memory controller
    /// (L2-Flex without sub-line DRAM support); memory-level only.
    Excess,
    /// The word was pushed into the cache by a write-update broadcast
    /// (Dragon) and the receiving core never read it — the waste class
    /// update protocols trade invalidation re-fetches for. Appended after
    /// the paper's categories so their discriminants (and every serialized
    /// invalidation-protocol report) are unchanged.
    Update,
}

impl WasteCategory {
    /// All categories, in the stacking order of Figure 5.3 (the update-waste
    /// extension stacks last).
    pub const ALL: [WasteCategory; 8] = [
        WasteCategory::Used,
        WasteCategory::Fetch,
        WasteCategory::Write,
        WasteCategory::Invalidate,
        WasteCategory::Evict,
        WasteCategory::Unevicted,
        WasteCategory::Excess,
        WasteCategory::Update,
    ];

    /// Whether the category represents wasted movement.
    pub const fn is_waste(self) -> bool {
        !matches!(self, WasteCategory::Used)
    }

    /// Figure label.
    pub const fn label(self) -> &'static str {
        match self {
            WasteCategory::Used => "Used Words",
            WasteCategory::Fetch => "Fetch Waste",
            WasteCategory::Write => "Write Waste",
            WasteCategory::Invalidate => "Invalidate Waste",
            WasteCategory::Evict => "Evict Waste",
            WasteCategory::Unevicted => "Unevicted Waste",
            WasteCategory::Excess => "Excess Waste",
            WasteCategory::Update => "Update Waste",
        }
    }
}

impl fmt::Display for WasteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Categories in discriminant (`Ord`) order — the iteration order the old
/// `BTreeMap` storage exposed through `words_iter`/`flit_hops_iter`. Note
/// this differs from [`WasteCategory::ALL`], which is figure stacking order
/// (`Fetch` and `Write` are swapped there).
const CAT_ORD: [WasteCategory; CATS] = [
    WasteCategory::Used,
    WasteCategory::Write,
    WasteCategory::Fetch,
    WasteCategory::Invalidate,
    WasteCategory::Evict,
    WasteCategory::Unevicted,
    WasteCategory::Excess,
    WasteCategory::Update,
];

const CATS: usize = 8;
const CLASSES: usize = 4;

#[inline(always)]
fn hop_idx(class: MessageClass, category: WasteCategory) -> usize {
    // Class-major, category-minor — ascending flat index reproduces the
    // `(MessageClass, WasteCategory)` tuple-Ord iteration order.
    class as usize * CATS + category as usize
}

/// Aggregated outcome of one profiler: word counts and the flit-hops the
/// classified words were responsible for, split by category and, for
/// flit-hops, by the message class (load vs. store response) that moved them.
///
/// Stored as dense arrays indexed by discriminant (this is the single
/// hottest accumulator in the simulator — every profiled word lands here);
/// the presence masks distinguish "never recorded" from "recorded as zero"
/// so the raw-entry round trip through the result cache stays exact.
/// Invariant: a slot whose presence bit is clear always holds `0`/`0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct WasteReport {
    words: [u64; CATS],
    words_present: [bool; CATS],
    flit_hops: [f64; CLASSES * CATS],
    hops_present: [bool; CLASSES * CATS],
}

impl Default for WasteReport {
    fn default() -> Self {
        WasteReport {
            words: [0; CATS],
            words_present: [false; CATS],
            flit_hops: [0.0; CLASSES * CATS],
            hops_present: [false; CLASSES * CATS],
        }
    }
}

impl WasteReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        WasteReport::default()
    }

    /// Records one classified word that cost `flit_hops` to move as part of a
    /// `class` response.
    #[inline]
    pub fn record(&mut self, category: WasteCategory, class: MessageClass, flit_hops: f64) {
        self.words_present[category as usize] = true;
        self.words[category as usize] += 1;
        let i = hop_idx(class, category);
        self.hops_present[i] = true;
        self.flit_hops[i] += flit_hops;
    }

    /// Number of words classified into `category`.
    pub fn words(&self, category: WasteCategory) -> u64 {
        self.words[category as usize]
    }

    /// Total words profiled.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Total words classified as waste.
    pub fn wasted_words(&self) -> u64 {
        WasteCategory::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|c| self.words(*c))
            .sum()
    }

    /// Fraction of profiled words that were waste (0 when nothing profiled).
    pub fn waste_fraction(&self) -> f64 {
        let total = self.total_words();
        if total == 0 {
            0.0
        } else {
            self.wasted_words() as f64 / total as f64
        }
    }

    /// Flit-hops spent moving words of `category` in responses of `class`.
    pub fn flit_hops(&self, class: MessageClass, category: WasteCategory) -> f64 {
        self.flit_hops[hop_idx(class, category)]
    }

    /// Flit-hops spent on *used* words in responses of `class`.
    pub fn used_flit_hops(&self, class: MessageClass) -> f64 {
        self.flit_hops(class, WasteCategory::Used)
    }

    /// Flit-hops spent on *wasted* words in responses of `class`.
    pub fn wasted_flit_hops(&self, class: MessageClass) -> f64 {
        WasteCategory::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|c| self.flit_hops(class, *c))
            .sum()
    }

    /// Iterates over the raw per-category word counts in a stable order.
    pub fn words_iter(&self) -> impl Iterator<Item = (WasteCategory, u64)> + '_ {
        CAT_ORD
            .iter()
            .filter(|c| self.words_present[**c as usize])
            .map(|c| (*c, self.words[*c as usize]))
    }

    /// Iterates over the raw per-(class, category) flit-hop entries in a
    /// stable order.
    pub fn flit_hops_iter(&self) -> impl Iterator<Item = (MessageClass, WasteCategory, f64)> + '_ {
        MessageClass::ALL.iter().flat_map(move |cl| {
            CAT_ORD.iter().filter_map(move |ca| {
                let i = hop_idx(*cl, *ca);
                self.hops_present[i].then(|| (*cl, *ca, self.flit_hops[i]))
            })
        })
    }

    /// Rebuilds a report from raw entries, inserted verbatim — the inverse
    /// of [`WasteReport::words_iter`] / [`WasteReport::flit_hops_iter`].
    /// `from_parts(x.words_iter(), x.flit_hops_iter())` is bit-identical to
    /// `x` (the experiment result cache's round-trip guarantee).
    pub fn from_parts(
        words: impl IntoIterator<Item = (WasteCategory, u64)>,
        flit_hops: impl IntoIterator<Item = (MessageClass, WasteCategory, f64)>,
    ) -> Self {
        let mut r = WasteReport::new();
        for (cat, n) in words {
            r.words_present[cat as usize] = true;
            r.words[cat as usize] = n;
        }
        for (cl, ca, h) in flit_hops {
            let i = hop_idx(cl, ca);
            r.hops_present[i] = true;
            r.flit_hops[i] = h;
        }
        r
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &WasteReport) {
        for i in 0..CATS {
            if other.words_present[i] {
                self.words_present[i] = true;
                self.words[i] += other.words[i];
            }
        }
        for i in 0..CLASSES * CATS {
            if other.hops_present[i] {
                self.hops_present[i] = true;
                self.flit_hops[i] += other.flit_hops[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_waste_predicate() {
        assert!(!WasteCategory::Used.is_waste());
        for c in [
            WasteCategory::Write,
            WasteCategory::Fetch,
            WasteCategory::Invalidate,
            WasteCategory::Evict,
            WasteCategory::Unevicted,
            WasteCategory::Excess,
            WasteCategory::Update,
        ] {
            assert!(c.is_waste(), "{c} should be waste");
        }
    }

    #[test]
    fn update_is_appended_after_the_paper_categories() {
        // Serialized invalidation-protocol reports index categories by
        // label, but the dense in-memory layout indexes by discriminant:
        // Update must not displace any existing category.
        assert_eq!(WasteCategory::ALL[CATS - 1], WasteCategory::Update);
        assert_eq!(CAT_ORD[CATS - 1], WasteCategory::Update);
        assert_eq!(
            WasteCategory::Excess as usize + 1,
            WasteCategory::Update as usize
        );
    }

    #[test]
    fn report_accumulates_words_and_hops() {
        let mut r = WasteReport::new();
        r.record(WasteCategory::Used, MessageClass::Load, 2.0);
        r.record(WasteCategory::Used, MessageClass::Load, 1.0);
        r.record(WasteCategory::Evict, MessageClass::Store, 4.0);
        assert_eq!(r.words(WasteCategory::Used), 2);
        assert_eq!(r.words(WasteCategory::Evict), 1);
        assert_eq!(r.total_words(), 3);
        assert_eq!(r.wasted_words(), 1);
        assert!((r.waste_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 3.0);
        assert_eq!(r.wasted_flit_hops(MessageClass::Store), 4.0);
        assert_eq!(r.wasted_flit_hops(MessageClass::Load), 0.0);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = WasteReport::new();
        a.record(WasteCategory::Used, MessageClass::Load, 1.0);
        let mut b = WasteReport::new();
        b.record(WasteCategory::Used, MessageClass::Load, 2.0);
        b.record(WasteCategory::Write, MessageClass::Store, 0.5);
        a.merge(&b);
        assert_eq!(a.words(WasteCategory::Used), 2);
        assert_eq!(a.flit_hops(MessageClass::Load, WasteCategory::Used), 3.0);
        assert_eq!(a.words(WasteCategory::Write), 1);
    }

    #[test]
    fn empty_report_has_zero_waste_fraction() {
        assert_eq!(WasteReport::new().waste_fraction(), 0.0);
    }

    #[test]
    fn raw_entries_round_trip_bit_exactly() {
        let mut r = WasteReport::new();
        r.record(WasteCategory::Used, MessageClass::Load, 0.1 + 0.2);
        r.record(WasteCategory::Evict, MessageClass::Store, 0.0);
        let back = WasteReport::from_parts(r.words_iter(), r.flit_hops_iter());
        assert_eq!(back, r);
        assert_eq!(back.words(WasteCategory::Evict), 1);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(WasteCategory::Used.label(), "Used Words");
        assert_eq!(WasteCategory::Excess.to_string(), "Excess Waste");
        assert_eq!(WasteCategory::Update.to_string(), "Update Waste");
        assert_eq!(WasteCategory::ALL.len(), 8);
    }
}
