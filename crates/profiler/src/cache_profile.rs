//! The L1 and L2 waste-profiling state machines (Figures 4.1 and 4.2).

use crate::category::{WasteCategory, WasteReport};
use tw_types::{Addr, FastMap, MessageClass, WordMask, WORD_BYTES};

/// Pending state is grouped by 64-byte chunk — the maximum line size a
/// [`WordMask`] can describe — so one hash probe covers up to sixteen words.
const CHUNK_SHIFT: u32 = 6;
const CHUNK_WORDS: usize = 16;

/// Chunk key and word-within-chunk index of a word-aligned byte address.
#[inline(always)]
fn chunk_of(byte: u64) -> (u64, usize) {
    (
        byte >> CHUNK_SHIFT,
        (byte / WORD_BYTES) as usize & (CHUNK_WORDS - 1),
    )
}

/// Which cache level a [`CacheWasteProfiler`] instruments.
///
/// The two levels share the arrival/evict/fetch/unevicted behaviour; they
/// differ in what counts as *use* (a program load at the L1, serving an L1
/// request at the L2) and in whether protocol invalidations occur (L1 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// A private L1 data cache.
    L1,
    /// The shared L2 (any slice).
    L2,
}

/// One arrival group: a set of words of the chunk that arrived in the same
/// response and therefore share one `(flit_hops, class, update)` record.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Group {
    words: u16,
    flit_hops: f64,
    class: MessageClass,
    /// The words were pushed by a write-update broadcast (Dragon) rather
    /// than fetched: if they die unread (evicted, invalidated or unevicted
    /// at the end), they classify as `Update` waste instead.
    update: bool,
}

/// The category an unread word finalizes into, given how it arrived: words
/// a write-update broadcast pushed become `Update` waste wherever a fetched
/// word would have been Evict/Invalidate/Unevicted waste. `Used` (the
/// update paid off) and `Write` (overwritten either way) pass through.
#[inline(always)]
fn classify(category: WasteCategory, update: bool) -> WasteCategory {
    if update
        && matches!(
            category,
            WasteCategory::Evict | WasteCategory::Invalidate | WasteCategory::Unevicted
        )
    {
        WasteCategory::Update
    } else {
        category
    }
}

/// How many groups a chunk holds inline before spilling to the heap. Full
/// line fills produce exactly one group; partial DeNovo word fetches rarely
/// leave more than two unclassified groups per line.
const INLINE_GROUPS: usize = 2;

/// Pending words of one 64-byte chunk, as a union mask plus arrival groups.
///
/// Invariant: every set bit of `mask` belongs to exactly one group, and
/// every group's `words` is non-empty and a subset of `mask`. Sharing the
/// per-response record across words keeps the chunk ~4x smaller than
/// per-word slots would — small enough that probe misses stay cheap.
#[derive(Debug, Clone)]
struct Chunk {
    mask: u16,
    inline: [Group; INLINE_GROUPS],
    n_inline: u8,
    spill: Vec<Group>,
}

impl Chunk {
    fn empty() -> Self {
        const NO_GROUP: Group = Group {
            words: 0,
            flit_hops: 0.0,
            class: MessageClass::Load,
            update: false,
        };
        Chunk {
            mask: 0,
            inline: [NO_GROUP; INLINE_GROUPS],
            n_inline: 0,
            spill: Vec::new(),
        }
    }

    /// Adds `words` with the shared record, merging into an existing group
    /// when the record is identical (merging cannot change any word's
    /// record, so classification output is unaffected).
    fn add(&mut self, words: u16, flit_hops: f64, class: MessageClass, update: bool) {
        debug_assert!(words != 0 && self.mask & words == 0);
        self.mask |= words;
        for g in self.groups_mut() {
            if g.flit_hops.to_bits() == flit_hops.to_bits()
                && g.class == class
                && g.update == update
            {
                g.words |= words;
                return;
            }
        }
        let group = Group {
            words,
            flit_hops,
            class,
            update,
        };
        if (self.n_inline as usize) < INLINE_GROUPS {
            self.inline[self.n_inline as usize] = group;
            self.n_inline += 1;
        } else {
            self.spill.push(group);
        }
    }

    /// Removes word `w` (which must be pending) and returns its record.
    fn take(&mut self, w: usize) -> (f64, MessageClass, bool) {
        let bit = 1u16 << w;
        debug_assert!(self.mask & bit != 0);
        self.mask &= !bit;
        for g in self.groups_mut() {
            if g.words & bit != 0 {
                g.words &= !bit;
                return (g.flit_hops, g.class, g.update);
            }
        }
        unreachable!("pending word belongs to a group");
    }

    fn groups_mut(&mut self) -> impl Iterator<Item = &mut Group> {
        self.inline[..self.n_inline as usize]
            .iter_mut()
            .chain(self.spill.iter_mut())
    }

    /// Drops emptied groups so the scan in [`Chunk::take`] stays short.
    fn compact(&mut self) {
        self.spill.retain(|g| g.words != 0);
        let mut i = 0;
        let mut n = self.n_inline as usize;
        while i < n {
            if self.inline[i].words == 0 {
                if let Some(g) = self.spill.pop() {
                    self.inline[i] = g;
                    i += 1;
                } else {
                    // Backfill from the end and re-examine the moved group.
                    n -= 1;
                    self.inline[i] = self.inline[n];
                }
            } else {
                i += 1;
            }
        }
        self.n_inline = n as u8;
    }
}

/// Per-cache waste profiler implementing the decision diagrams of §4.1.
///
/// The caller (the simulator's cache controllers) reports word-granularity
/// events; the profiler defers classification until a word's fate is known.
/// Words that arrive while the same address is still pending are classified
/// as `Fetch` waste immediately (the cache already had the word).
#[derive(Debug, Clone)]
pub struct CacheWasteProfiler {
    level: CacheLevel,
    // Keyed by 64-byte chunk; FastMap because this table is hit several
    // times per simulated memory operation, and chunk keying lets the
    // `*_words` batch entry points resolve a whole line fill or eviction
    // with one probe. Drained chunks are removed eagerly: the table then
    // stays sized to the words actually in flight (cache-resident,
    // unclassified), which keeps it hot in the host cache.
    pending: FastMap<Chunk>,
    report: WasteReport,
}

impl CacheWasteProfiler {
    /// Creates a profiler for one cache of the given level.
    pub fn new(level: CacheLevel) -> Self {
        CacheWasteProfiler {
            level,
            pending: FastMap::new(),
            report: WasteReport::new(),
        }
    }

    /// The level this profiler instruments.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// Number of words whose classification is still pending.
    pub fn pending_words(&self) -> usize {
        self.pending
            .iter()
            .map(|(_, c)| c.mask.count_ones() as usize)
            .sum()
    }

    /// Pending-table probe statistics `(chunks, collision_probes, resizes)`
    /// for flight-recorder spans. Observer lane only.
    pub fn pending_table_stats(&self) -> (usize, u64, u64) {
        let (probes, resizes) = self.pending.probe_stats();
        (self.pending.len(), probes, resizes)
    }

    /// A word arrived at the cache in a response of class `class`, having
    /// spent `flit_hops` flit-hops on its final network leg.
    ///
    /// `already_present` must be true when the cache already held valid or
    /// dirty data for the word; the arrival is then immediately classified as
    /// `Fetch` waste (paper §4.1) and the older instance keeps its pending
    /// state.
    pub fn arrive(
        &mut self,
        addr: Addr,
        already_present: bool,
        flit_hops: f64,
        class: MessageClass,
    ) {
        if already_present {
            self.report.record(WasteCategory::Fetch, class, flit_hops);
            return;
        }
        let (key, w) = chunk_of(addr.word_aligned().byte());
        let chunk = self.pending.get_or_insert_with(key, Chunk::empty);
        let bit = 1u16 << w;
        if chunk.mask & bit != 0 {
            self.report.record(WasteCategory::Fetch, class, flit_hops);
        } else {
            chunk.add(bit, flit_hops, class, false);
        }
    }

    /// A write-update broadcast (Dragon `UpdateData`) delivered the word into
    /// the cache. Any still-pending instance was overwritten before use and
    /// finalizes as `Write` waste; the pushed word then becomes pending as
    /// *update-born*, so if the receiving core never reads it, it finalizes
    /// as `Update` waste instead of Evict/Invalidate/Unevicted.
    pub fn updated(&mut self, addr: Addr, flit_hops: f64) {
        self.finalize(addr, WasteCategory::Write);
        let (key, w) = chunk_of(addr.word_aligned().byte());
        let chunk = self.pending.get_or_insert_with(key, Chunk::empty);
        // Updates ride store-class responses (the write that triggered them).
        chunk.add(1u16 << w, flit_hops, MessageClass::Store, true);
    }

    /// Batched [`CacheWasteProfiler::arrive`]: words `words` of the line whose
    /// first word is at `line0` arrive together (one response), with `already`
    /// naming the words the cache held beforehand. Equivalent to calling
    /// `arrive` per word in ascending word order, but with one table probe.
    pub fn arrive_words(
        &mut self,
        line0: Addr,
        words: WordMask,
        already: WordMask,
        flit_hops: f64,
        class: MessageClass,
    ) {
        if words.is_empty() {
            return;
        }
        let (key, w0) = chunk_of(line0.word_aligned().byte());
        debug_assert!(
            (words.bits() as u32) << w0 <= u16::MAX as u32,
            "line spans a 64-byte chunk"
        );
        let chunk = self.pending.get_or_insert_with(key, Chunk::empty);
        let requested = (words.bits() as u32) << w0;
        let already_bits = ((already.bits() & words.bits()) as u32) << w0;
        let fetch_bits = already_bits | (chunk.mask as u32 & requested);
        let fresh = (requested & !fetch_bits) as u16;
        if fresh != 0 {
            chunk.add(fresh, flit_hops, class, false);
        }
        // All Fetch records of this call share (class, flit_hops) and land in
        // one report bucket, so recording them after the pending update sums
        // the same addends the interleaved per-word loop would.
        for _ in 0..fetch_bits.count_ones() {
            self.report.record(WasteCategory::Fetch, class, flit_hops);
        }
    }

    fn finalize(&mut self, addr: Addr, category: WasteCategory) -> bool {
        let (key, w) = chunk_of(addr.word_aligned().byte());
        let Some(chunk) = self.pending.get_mut(key) else {
            return false;
        };
        if chunk.mask & (1u16 << w) == 0 {
            return false;
        }
        let (flit_hops, class, update) = chunk.take(w);
        if chunk.mask == 0 {
            self.pending.remove(key);
        } else {
            chunk.compact();
        }
        self.report
            .record(classify(category, update), class, flit_hops);
        true
    }

    /// Batched `finalize`: classifies whichever of `words` are pending, in
    /// ascending word order, with one table probe. Words with no pending
    /// record are skipped, exactly as their per-word calls would be.
    fn finalize_words(&mut self, line0: Addr, words: WordMask, category: WasteCategory) {
        if words.is_empty() {
            return;
        }
        let (key, w0) = chunk_of(line0.word_aligned().byte());
        let Some(chunk) = self.pending.get_mut(key) else {
            return;
        };
        let line_bits = (words.bits() as u32) << w0;
        debug_assert!(line_bits <= u16::MAX as u32, "line spans a 64-byte chunk");
        let mut hit = chunk.mask as u32 & line_bits;
        if hit == 0 {
            return;
        }
        // Ascending word order, as the per-word loop recorded: a chunk can
        // hold groups of differing flit-hops in the same report bucket, and
        // the f64 sums must accumulate in the identical order.
        while hit != 0 {
            let w = hit.trailing_zeros() as usize;
            hit &= hit - 1;
            let (flit_hops, class, update) = chunk.take(w);
            self.report
                .record(classify(category, update), class, flit_hops);
        }
        if chunk.mask == 0 {
            self.pending.remove(key);
        } else {
            chunk.compact();
        }
    }

    /// The program loaded the word (L1), or the cache returned it in a
    /// response to an L1 (L2): the pending instance becomes `Used`.
    pub fn loaded(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Used);
    }

    /// Batched [`CacheWasteProfiler::loaded`] over `words` of the line whose
    /// first word is at `line0`.
    pub fn loaded_words(&mut self, line0: Addr, words: WordMask) {
        self.finalize_words(line0, words, WasteCategory::Used);
    }

    /// Batched [`CacheWasteProfiler::evicted`] over `words` of the line whose
    /// first word is at `line0`.
    pub fn evicted_words(&mut self, line0: Addr, words: WordMask) {
        self.finalize_words(line0, words, WasteCategory::Evict);
    }

    /// Batched [`CacheWasteProfiler::invalidated`] over `words` of the line
    /// whose first word is at `line0`.
    pub fn invalidated_words(&mut self, line0: Addr, words: WordMask) {
        debug_assert_eq!(
            self.level,
            CacheLevel::L1,
            "L2 words are not invalidated in this study"
        );
        self.finalize_words(line0, words, WasteCategory::Invalidate);
    }

    /// The word was overwritten before use: a program store at the L1, or an
    /// L1 writeback overwriting it at the L2.
    pub fn stored(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Write);
    }

    /// The coherence protocol invalidated the word before use (L1 only:
    /// MESI invalidation messages or DeNovo self-invalidation).
    pub fn invalidated(&mut self, addr: Addr) {
        debug_assert_eq!(
            self.level,
            CacheLevel::L1,
            "L2 words are not invalidated in this study"
        );
        self.finalize(addr, WasteCategory::Invalidate);
    }

    /// The word was evicted before use.
    pub fn evicted(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Evict);
    }

    /// Ends the simulation: all still-pending words become `Unevicted` and the
    /// final report is returned.
    pub fn finish(mut self) -> WasteReport {
        let mut leftovers: Vec<u64> = self.pending.keys().collect();
        // Finalize in address order (chunk-ascending, then word-ascending
        // within the chunk): the per-bucket flit-hop totals are f64 sums, and
        // accumulating them in hash-iteration order would leak run-to-run
        // jitter into otherwise bit-identical reports.
        leftovers.sort_unstable();
        for key in leftovers {
            let chunk = self.pending.get_mut(key).expect("key just listed");
            let mut rem = chunk.mask;
            while rem != 0 {
                let w = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                let (flit_hops, class, update) = chunk.take(w);
                self.report
                    .record(classify(WasteCategory::Unevicted, update), class, flit_hops);
            }
        }
        self.report
    }

    /// Snapshot of the report accumulated so far (pending words excluded).
    pub fn report_so_far(&self) -> &WasteReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Addr {
        Addr::new(n * 4)
    }

    fn l1() -> CacheWasteProfiler {
        CacheWasteProfiler::new(CacheLevel::L1)
    }

    #[test]
    fn load_after_arrival_is_used() {
        let mut p = l1();
        p.arrive(addr(1), false, 2.0, MessageClass::Load);
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 2.0);
    }

    #[test]
    fn store_before_load_is_write_waste() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Store);
        p.stored(addr(1));
        // A later load must not resurrect the record.
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Write), 1);
        assert_eq!(r.words(WasteCategory::Used), 0);
    }

    #[test]
    fn arrival_on_top_of_pending_word_is_fetch_waste() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(1), false, 3.0, MessageClass::Load);
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.flit_hops(MessageClass::Load, WasteCategory::Fetch), 3.0);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 1.0);
    }

    #[test]
    fn arrival_when_cache_reports_present_is_fetch_waste() {
        let mut p = l1();
        p.arrive(addr(2), true, 2.5, MessageClass::Load);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
    }

    #[test]
    fn invalidate_and_evict_before_use() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(2), false, 1.0, MessageClass::Load);
        p.invalidated(addr(1));
        p.evicted(addr(2));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Invalidate), 1);
        assert_eq!(r.words(WasteCategory::Evict), 1);
    }

    #[test]
    fn use_then_evict_stays_used() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.loaded(addr(1));
        p.evicted(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.words(WasteCategory::Evict), 0);
    }

    #[test]
    fn unclassified_words_become_unevicted_at_finish() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(2), false, 1.0, MessageClass::Store);
        assert_eq!(p.pending_words(), 2);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Unevicted), 2);
    }

    #[test]
    fn events_without_arrival_are_ignored() {
        let mut p = l1();
        p.loaded(addr(5));
        p.evicted(addr(5));
        p.stored(addr(5));
        let r = p.finish();
        assert_eq!(r.total_words(), 0);
    }

    #[test]
    fn l2_level_uses_same_fsm_without_invalidation() {
        let mut p = CacheWasteProfiler::new(CacheLevel::L2);
        assert_eq!(p.level(), CacheLevel::L2);
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.loaded(addr(1)); // served to an L1
        p.arrive(addr(2), false, 1.0, MessageClass::Load);
        p.stored(addr(2)); // overwritten by an L1 writeback
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.words(WasteCategory::Write), 1);
    }

    #[test]
    fn batched_words_match_per_word_calls() {
        use tw_types::{LineAddr, WordIdx};
        // Drive the same deterministic event stream through the per-word and
        // batched entry points; the resulting reports must be identical.
        let mut a = l1();
        let mut b = l1();
        let line = LineAddr::from_aligned(0x2440);
        let words = WordMask::from_bits(0b1010_1101_0011_0110);
        let already = WordMask::from_bits(0b0000_1000_0000_0100);
        for w in words.iter() {
            a.arrive(
                line.word_addr(w),
                already.contains(w),
                1.5,
                MessageClass::Load,
            );
        }
        b.arrive_words(
            line.word_addr(WordIdx(0)),
            words,
            already,
            1.5,
            MessageClass::Load,
        );
        // Double arrival of a subset: Fetch waste either way.
        let again = WordMask::from_bits(0b0000_0001_0011_0000);
        for w in again.iter() {
            a.arrive(line.word_addr(w), false, 0.5, MessageClass::Store);
        }
        b.arrive_words(
            line.word_addr(WordIdx(0)),
            again,
            WordMask::EMPTY,
            0.5,
            MessageClass::Store,
        );
        // Mixed finalization, including words never pending.
        let used = WordMask::from_bits(0b0000_0000_0000_0111);
        let evicted = WordMask::from_bits(0b1111_0000_0000_0000);
        let invalidated = WordMask::from_bits(0b0000_1111_0000_0000);
        for w in used.iter() {
            a.loaded(line.word_addr(w));
        }
        for w in evicted.iter() {
            a.evicted(line.word_addr(w));
        }
        for w in invalidated.iter() {
            a.invalidated(line.word_addr(w));
        }
        b.loaded_words(line.word_addr(WordIdx(0)), used);
        b.evicted_words(line.word_addr(WordIdx(0)), evicted);
        b.invalidated_words(line.word_addr(WordIdx(0)), invalidated);
        assert_eq!(a.pending_words(), b.pending_words());
        let (ra, rb) = (a.finish(), b.finish());
        for cat in WasteCategory::ALL {
            assert_eq!(ra.words(cat), rb.words(cat), "{cat}");
        }
        for class in [MessageClass::Load, MessageClass::Store] {
            for cat in WasteCategory::ALL {
                assert_eq!(ra.flit_hops(class, cat), rb.flit_hops(class, cat));
            }
        }
    }

    #[test]
    fn read_update_is_used_unread_update_is_update_waste() {
        let mut p = l1();
        p.updated(addr(1), 2.0);
        p.updated(addr(2), 2.0);
        p.loaded(addr(1));
        p.evicted(addr(2));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.words(WasteCategory::Update), 1);
        assert_eq!(r.words(WasteCategory::Evict), 0);
        // Both legs were store-class responses.
        assert_eq!(r.used_flit_hops(MessageClass::Store), 2.0);
        assert_eq!(r.flit_hops(MessageClass::Store, WasteCategory::Update), 2.0);
    }

    #[test]
    fn update_over_pending_fetch_is_write_waste_then_update_born() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.updated(addr(1), 3.0);
        let r = p.finish();
        // The fetched instance was overwritten before use; the pushed word
        // was never read before the end of simulation.
        assert_eq!(r.words(WasteCategory::Write), 1);
        assert_eq!(r.words(WasteCategory::Update), 1);
        assert_eq!(r.words(WasteCategory::Unevicted), 0);
    }

    #[test]
    fn update_born_words_invalidated_or_unevicted_are_update_waste() {
        let mut p = l1();
        p.updated(addr(1), 1.0);
        p.updated(addr(2), 1.0);
        p.updated(addr(3), 1.0);
        p.invalidated(addr(1));
        // addr(2) stays pending to the end; addr(3) is overwritten locally.
        p.stored(addr(3));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Update), 2);
        assert_eq!(r.words(WasteCategory::Write), 1);
        assert_eq!(r.words(WasteCategory::Invalidate), 0);
        assert_eq!(r.words(WasteCategory::Unevicted), 0);
    }

    #[test]
    fn update_and_fetch_groups_do_not_merge() {
        // Same (flit_hops, class) but different provenance: the update-born
        // flag must keep the groups distinct so their fates stay separable.
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Store);
        p.updated(addr(2), 1.0);
        p.evicted(addr(1));
        p.evicted(addr(2));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Evict), 1);
        assert_eq!(r.words(WasteCategory::Update), 1);
    }

    #[test]
    fn addresses_are_word_aligned_internally() {
        let mut p = l1();
        p.arrive(Addr::new(0x101), false, 1.0, MessageClass::Load);
        p.loaded(Addr::new(0x103));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
    }
}
