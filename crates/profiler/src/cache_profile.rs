//! The L1 and L2 waste-profiling state machines (Figures 4.1 and 4.2).

use crate::category::{WasteCategory, WasteReport};
use std::collections::HashMap;
use tw_types::{Addr, MessageClass};

/// Which cache level a [`CacheWasteProfiler`] instruments.
///
/// The two levels share the arrival/evict/fetch/unevicted behaviour; they
/// differ in what counts as *use* (a program load at the L1, serving an L1
/// request at the L2) and in whether protocol invalidations occur (L1 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// A private L1 data cache.
    L1,
    /// The shared L2 (any slice).
    L2,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    flit_hops: f64,
    class: MessageClass,
}

/// Per-cache waste profiler implementing the decision diagrams of §4.1.
///
/// The caller (the simulator's cache controllers) reports word-granularity
/// events; the profiler defers classification until a word's fate is known.
/// Words that arrive while the same address is still pending are classified
/// as `Fetch` waste immediately (the cache already had the word).
#[derive(Debug, Clone)]
pub struct CacheWasteProfiler {
    level: CacheLevel,
    pending: HashMap<Addr, Pending>,
    report: WasteReport,
}

impl CacheWasteProfiler {
    /// Creates a profiler for one cache of the given level.
    pub fn new(level: CacheLevel) -> Self {
        CacheWasteProfiler {
            level,
            pending: HashMap::new(),
            report: WasteReport::new(),
        }
    }

    /// The level this profiler instruments.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// Number of words whose classification is still pending.
    pub fn pending_words(&self) -> usize {
        self.pending.len()
    }

    /// A word arrived at the cache in a response of class `class`, having
    /// spent `flit_hops` flit-hops on its final network leg.
    ///
    /// `already_present` must be true when the cache already held valid or
    /// dirty data for the word; the arrival is then immediately classified as
    /// `Fetch` waste (paper §4.1) and the older instance keeps its pending
    /// state.
    pub fn arrive(
        &mut self,
        addr: Addr,
        already_present: bool,
        flit_hops: f64,
        class: MessageClass,
    ) {
        let addr = addr.word_aligned();
        if already_present || self.pending.contains_key(&addr) {
            self.report.record(WasteCategory::Fetch, class, flit_hops);
            return;
        }
        self.pending.insert(addr, Pending { flit_hops, class });
    }

    fn finalize(&mut self, addr: Addr, category: WasteCategory) -> bool {
        let addr = addr.word_aligned();
        if let Some(p) = self.pending.remove(&addr) {
            self.report.record(category, p.class, p.flit_hops);
            true
        } else {
            false
        }
    }

    /// The program loaded the word (L1), or the cache returned it in a
    /// response to an L1 (L2): the pending instance becomes `Used`.
    pub fn loaded(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Used);
    }

    /// The word was overwritten before use: a program store at the L1, or an
    /// L1 writeback overwriting it at the L2.
    pub fn stored(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Write);
    }

    /// The coherence protocol invalidated the word before use (L1 only:
    /// MESI invalidation messages or DeNovo self-invalidation).
    pub fn invalidated(&mut self, addr: Addr) {
        debug_assert_eq!(
            self.level,
            CacheLevel::L1,
            "L2 words are not invalidated in this study"
        );
        self.finalize(addr, WasteCategory::Invalidate);
    }

    /// The word was evicted before use.
    pub fn evicted(&mut self, addr: Addr) {
        self.finalize(addr, WasteCategory::Evict);
    }

    /// Ends the simulation: all still-pending words become `Unevicted` and the
    /// final report is returned.
    pub fn finish(mut self) -> WasteReport {
        let mut leftovers: Vec<Addr> = self.pending.keys().copied().collect();
        // Finalize in address order: the per-bucket flit-hop totals are f64
        // sums, and accumulating them in hash-iteration order would leak
        // run-to-run jitter into otherwise bit-identical reports.
        leftovers.sort_unstable();
        for addr in leftovers {
            self.finalize(addr, WasteCategory::Unevicted);
        }
        self.report
    }

    /// Snapshot of the report accumulated so far (pending words excluded).
    pub fn report_so_far(&self) -> &WasteReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Addr {
        Addr::new(n * 4)
    }

    fn l1() -> CacheWasteProfiler {
        CacheWasteProfiler::new(CacheLevel::L1)
    }

    #[test]
    fn load_after_arrival_is_used() {
        let mut p = l1();
        p.arrive(addr(1), false, 2.0, MessageClass::Load);
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 2.0);
    }

    #[test]
    fn store_before_load_is_write_waste() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Store);
        p.stored(addr(1));
        // A later load must not resurrect the record.
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Write), 1);
        assert_eq!(r.words(WasteCategory::Used), 0);
    }

    #[test]
    fn arrival_on_top_of_pending_word_is_fetch_waste() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(1), false, 3.0, MessageClass::Load);
        p.loaded(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.flit_hops(MessageClass::Load, WasteCategory::Fetch), 3.0);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 1.0);
    }

    #[test]
    fn arrival_when_cache_reports_present_is_fetch_waste() {
        let mut p = l1();
        p.arrive(addr(2), true, 2.5, MessageClass::Load);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
    }

    #[test]
    fn invalidate_and_evict_before_use() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(2), false, 1.0, MessageClass::Load);
        p.invalidated(addr(1));
        p.evicted(addr(2));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Invalidate), 1);
        assert_eq!(r.words(WasteCategory::Evict), 1);
    }

    #[test]
    fn use_then_evict_stays_used() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.loaded(addr(1));
        p.evicted(addr(1));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.words(WasteCategory::Evict), 0);
    }

    #[test]
    fn unclassified_words_become_unevicted_at_finish() {
        let mut p = l1();
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.arrive(addr(2), false, 1.0, MessageClass::Store);
        assert_eq!(p.pending_words(), 2);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Unevicted), 2);
    }

    #[test]
    fn events_without_arrival_are_ignored() {
        let mut p = l1();
        p.loaded(addr(5));
        p.evicted(addr(5));
        p.stored(addr(5));
        let r = p.finish();
        assert_eq!(r.total_words(), 0);
    }

    #[test]
    fn l2_level_uses_same_fsm_without_invalidation() {
        let mut p = CacheWasteProfiler::new(CacheLevel::L2);
        assert_eq!(p.level(), CacheLevel::L2);
        p.arrive(addr(1), false, 1.0, MessageClass::Load);
        p.loaded(addr(1)); // served to an L1
        p.arrive(addr(2), false, 1.0, MessageClass::Load);
        p.stored(addr(2)); // overwritten by an L1 writeback
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.words(WasteCategory::Write), 1);
    }

    #[test]
    fn addresses_are_word_aligned_internally() {
        let mut p = l1();
        p.arrive(Addr::new(0x101), false, 1.0, MessageClass::Load);
        p.loaded(Addr::new(0x103));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
    }
}
