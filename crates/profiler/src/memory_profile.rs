//! The memory-fetch waste profiler (Figure 4.3).
//!
//! Every word fetched from DRAM is tracked as a distinct `(address,
//! identifier)` instance, because DeNovo's non-inclusive L2 can have several
//! copies of the same word on chip from different memory requests. The
//! profile answers "how useful was each word we paid to bring on chip?".
//!
//! Two simplifications relative to the thesis' exact `NumRefs` bookkeeping
//! (documented here because they matter only for corner cases): a program
//! load classifies the *most recent* pending instance of the address as
//! `Used`, and an eviction event classifies the *oldest* pending instance as
//! `Evict`. Stores follow the paper exactly: all pending instances of the
//! address become `Write` waste.

use crate::category::{WasteCategory, WasteReport};
use tw_types::{Addr, FastMap, MessageClass, WordMask, WORD_BYTES};

/// Pending instances are grouped by 64-byte chunk (the maximum line size a
/// [`WordMask`] can describe) so one hash probe covers a whole line event.
const CHUNK_SHIFT: u32 = 6;
const CHUNK_WORDS: usize = 16;

/// Chunk key and word-within-chunk index of a word-aligned byte address.
#[inline(always)]
fn chunk_of(byte: u64) -> (u64, usize) {
    (
        byte >> CHUNK_SHIFT,
        (byte / WORD_BYTES) as usize & (CHUNK_WORDS - 1),
    )
}

/// Pending instances of one 64-byte chunk.
///
/// Per word, the *oldest* pending instance's flit-hops live inline in
/// `oldest` (with its presence bit in `mask`); younger instances of the same
/// word spill to `spill` in arrival order. Nearly every word has at most one
/// pending instance, so the spill vector stays empty and allocation-free.
#[derive(Debug, Clone)]
struct Chunk {
    mask: u16,
    oldest: [f64; CHUNK_WORDS],
    spill: Vec<(u8, f64)>,
}

impl Chunk {
    fn empty() -> Self {
        Chunk {
            mask: 0,
            oldest: [0.0; CHUNK_WORDS],
            spill: Vec::new(),
        }
    }

    fn instances(&self) -> usize {
        self.mask.count_ones() as usize + self.spill.len()
    }

    fn push(&mut self, w: usize, flit_hops: f64) {
        let bit = 1u16 << w;
        if self.mask & bit == 0 {
            self.mask |= bit;
            self.oldest[w] = flit_hops;
        } else {
            self.spill.push((w as u8, flit_hops));
        }
    }

    /// Removes and returns the most recent instance of word `w`, if any.
    fn pop_newest(&mut self, w: usize) -> Option<f64> {
        if let Some(i) = self.spill.iter().rposition(|&(sw, _)| sw as usize == w) {
            return Some(self.spill.remove(i).1);
        }
        let bit = 1u16 << w;
        if self.mask & bit != 0 {
            self.mask &= !bit;
            return Some(self.oldest[w]);
        }
        None
    }

    /// Removes and returns the oldest instance of word `w`, if any.
    fn pop_oldest(&mut self, w: usize) -> Option<f64> {
        let bit = 1u16 << w;
        if self.mask & bit == 0 {
            return None;
        }
        let hops = self.oldest[w];
        if let Some(i) = self.spill.iter().position(|&(sw, _)| sw as usize == w) {
            self.oldest[w] = self.spill.remove(i).1;
        } else {
            self.mask &= !bit;
        }
        Some(hops)
    }
}

/// Profiler for words fetched from memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryWasteProfiler {
    next_id: u64,
    // Keyed by 64-byte chunk; FastMap because the table is consulted on
    // every DRAM word fetched and every program access. Drained chunks are
    // removed eagerly so the table tracks only instances genuinely in
    // flight, which keeps it hot in the host cache.
    pending: FastMap<Chunk>,
    report: WasteReport,
}

impl MemoryWasteProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        MemoryWasteProfiler::default()
    }

    /// Number of word instances awaiting classification.
    pub fn pending_instances(&self) -> usize {
        self.pending.iter().map(|(_, c)| c.instances()).sum()
    }

    /// Pending-table probe statistics `(chunks, collision_probes, resizes)`
    /// for flight-recorder spans. Observer lane only.
    pub fn pending_table_stats(&self) -> (usize, u64, u64) {
        let (probes, resizes) = self.pending.probe_stats();
        (self.pending.len(), probes, resizes)
    }

    /// A word was sent from memory onto the chip.
    ///
    /// `l2_already_present` is true when the L2 already holds the address, in
    /// which case the new instance is immediately `Fetch` waste (Figure 4.3).
    /// Returns the instance identifier.
    pub fn fetched(&mut self, addr: Addr, l2_already_present: bool, flit_hops: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if l2_already_present {
            self.report
                .record(WasteCategory::Fetch, MessageClass::Load, flit_hops);
        } else {
            let (key, w) = chunk_of(addr.word_aligned().byte());
            self.pending
                .get_or_insert_with(key, Chunk::empty)
                .push(w, flit_hops);
        }
        id
    }

    /// Batched [`MemoryWasteProfiler::fetched`] for `words` of the line whose
    /// first word is at `line0`, all carried by one response. Equivalent to
    /// calling `fetched` per word in ascending word order, with one probe.
    pub fn fetched_words(
        &mut self,
        line0: Addr,
        words: WordMask,
        l2_already_present: bool,
        flit_hops: f64,
    ) {
        if words.is_empty() {
            return;
        }
        self.next_id += words.count() as u64;
        if l2_already_present {
            for _ in 0..words.count() {
                self.report
                    .record(WasteCategory::Fetch, MessageClass::Load, flit_hops);
            }
            return;
        }
        let (key, w0) = chunk_of(line0.word_aligned().byte());
        debug_assert!(
            (words.bits() as u32) << w0 <= u16::MAX as u32,
            "line spans a 64-byte chunk"
        );
        let chunk = self.pending.get_or_insert_with(key, Chunk::empty);
        for w in words.iter() {
            chunk.push(w0 + w.index(), flit_hops);
        }
    }

    /// A word was read by DRAM but dropped at the memory controller because
    /// the Flex communication region did not include it (`Excess` waste).
    /// These words never enter the network, so they carry no flit-hops.
    pub fn dropped_at_controller(&mut self, addr: Addr) {
        let _ = addr;
        self.report
            .record(WasteCategory::Excess, MessageClass::Load, 0.0);
    }

    /// The program loaded the word: the most recent pending instance of the
    /// address becomes `Used`.
    pub fn loaded(&mut self, addr: Addr) {
        let (key, w) = chunk_of(addr.word_aligned().byte());
        if let Some(chunk) = self.pending.get_mut(key) {
            if let Some(hops) = chunk.pop_newest(w) {
                if chunk.mask == 0 {
                    self.pending.remove(key);
                }
                self.report
                    .record(WasteCategory::Used, MessageClass::Load, hops);
            }
        }
    }

    /// Some L1 stored to the address: every pending instance becomes `Write`
    /// waste (the coherence protocol will invalidate or overwrite all other
    /// on-chip copies; paper §4.1).
    pub fn stored(&mut self, addr: Addr) {
        let (key, w) = chunk_of(addr.word_aligned().byte());
        if let Some(chunk) = self.pending.get_mut(key) {
            // Oldest first, matching the insertion-order drain of the old
            // per-address list.
            while let Some(hops) = chunk.pop_oldest(w) {
                self.report
                    .record(WasteCategory::Write, MessageClass::Store, hops);
            }
            if chunk.mask == 0 {
                self.pending.remove(key);
            }
        }
    }

    /// The last on-chip copy of one instance of the address left the chip:
    /// the oldest pending instance becomes `Evict` waste.
    pub fn evicted(&mut self, addr: Addr) {
        let (key, w) = chunk_of(addr.word_aligned().byte());
        if let Some(chunk) = self.pending.get_mut(key) {
            if let Some(hops) = chunk.pop_oldest(w) {
                if chunk.mask == 0 {
                    self.pending.remove(key);
                }
                self.report
                    .record(WasteCategory::Evict, MessageClass::Load, hops);
            }
        }
    }

    /// Batched [`MemoryWasteProfiler::evicted`] over `words` of the line
    /// whose first word is at `line0`, in ascending word order.
    pub fn evicted_words(&mut self, line0: Addr, words: WordMask) {
        if words.is_empty() {
            return;
        }
        let (key, w0) = chunk_of(line0.word_aligned().byte());
        let Some(chunk) = self.pending.get_mut(key) else {
            return;
        };
        for w in words.iter() {
            if let Some(hops) = chunk.pop_oldest(w0 + w.index()) {
                self.report
                    .record(WasteCategory::Evict, MessageClass::Load, hops);
            }
        }
        if chunk.mask == 0 {
            self.pending.remove(key);
        }
    }

    /// The coherence protocol invalidated on-chip copies of the address
    /// before use.
    pub fn invalidated(&mut self, addr: Addr) {
        let (key, w) = chunk_of(addr.word_aligned().byte());
        if let Some(chunk) = self.pending.get_mut(key) {
            if let Some(hops) = chunk.pop_newest(w) {
                if chunk.mask == 0 {
                    self.pending.remove(key);
                }
                self.report
                    .record(WasteCategory::Invalidate, MessageClass::Load, hops);
            }
        }
    }

    /// Ends the simulation; remaining instances become `Unevicted`.
    pub fn finish(mut self) -> WasteReport {
        let mut keys: Vec<u64> = self.pending.keys().collect();
        // Address order (chunk-ascending, word-ascending, oldest instance
        // first), not hash order: the flit-hop buckets are f64 sums and must
        // accumulate identically on every run.
        keys.sort_unstable();
        for key in keys {
            let chunk = self.pending.get_mut(key).expect("key just listed");
            for w in 0..CHUNK_WORDS {
                while let Some(hops) = chunk.pop_oldest(w) {
                    self.report
                        .record(WasteCategory::Unevicted, MessageClass::Load, hops);
                }
            }
        }
        self.report
    }

    /// Snapshot of the report accumulated so far.
    pub fn report_so_far(&self) -> &WasteReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Addr {
        Addr::new(0x1000 + n * 4)
    }

    #[test]
    fn fetch_then_load_is_used() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 3.0);
        p.loaded(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 3.0);
    }

    #[test]
    fn fetch_when_l2_holds_the_address_is_fetch_waste() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), true, 2.0);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
    }

    #[test]
    fn store_marks_all_pending_instances_write() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.fetched(addr(0), false, 1.0);
        p.stored(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Write), 2);
        assert_eq!(r.words(WasteCategory::Unevicted), 0);
    }

    #[test]
    fn eviction_consumes_oldest_instance() {
        let mut p = MemoryWasteProfiler::new();
        let first = p.fetched(addr(0), false, 1.0);
        let second = p.fetched(addr(0), false, 2.0);
        assert!(second > first);
        p.evicted(addr(0));
        p.loaded(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Evict), 1);
        assert_eq!(r.words(WasteCategory::Used), 1);
        // The evicted (oldest) instance carried 1.0 flit-hops, the used one 2.0.
        assert_eq!(r.flit_hops(MessageClass::Load, WasteCategory::Evict), 1.0);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 2.0);
    }

    #[test]
    fn excess_waste_counts_words_dropped_at_the_controller() {
        let mut p = MemoryWasteProfiler::new();
        p.dropped_at_controller(addr(4));
        p.dropped_at_controller(addr(5));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Excess), 2);
    }

    #[test]
    fn unresolved_instances_finish_unevicted() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.fetched(addr(1), false, 1.0);
        assert_eq!(p.pending_instances(), 2);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Unevicted), 2);
    }

    #[test]
    fn invalidate_classifies_pending_instance() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.invalidated(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Invalidate), 1);
    }

    #[test]
    fn events_without_fetch_are_ignored() {
        let mut p = MemoryWasteProfiler::new();
        p.loaded(addr(9));
        p.stored(addr(9));
        p.evicted(addr(9));
        assert_eq!(p.finish().total_words(), 0);
    }

    #[test]
    fn three_instances_resolve_newest_and_oldest_correctly() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.fetched(addr(0), false, 2.0);
        p.fetched(addr(0), false, 3.0);
        p.loaded(addr(0)); // newest: 3.0
        p.evicted(addr(0)); // oldest: 1.0
        p.loaded(addr(0)); // remaining: 2.0
        let r = p.finish();
        assert_eq!(r.used_flit_hops(MessageClass::Load), 5.0);
        assert_eq!(r.flit_hops(MessageClass::Load, WasteCategory::Evict), 1.0);
        assert_eq!(r.words(WasteCategory::Unevicted), 0);
    }

    #[test]
    fn batched_words_match_per_word_calls() {
        use tw_types::{LineAddr, WordIdx};
        let mut a = MemoryWasteProfiler::new();
        let mut b = MemoryWasteProfiler::new();
        let line = LineAddr::from_aligned(0x3400);
        let words = WordMask::from_bits(0b0110_1011_0101_1110);
        for w in words.iter() {
            a.fetched(line.word_addr(w), false, 2.5);
        }
        b.fetched_words(line.word_addr(WordIdx(0)), words, false, 2.5);
        // Refetch a subset while still pending, then classify a mix.
        let again = WordMask::from_bits(0b0000_0011_0000_0110);
        for w in again.iter() {
            a.fetched(line.word_addr(w), false, 4.0);
        }
        b.fetched_words(line.word_addr(WordIdx(0)), again, false, 4.0);
        assert_eq!(a.next_id, b.next_id);
        a.loaded(line.word_addr(WordIdx(1)));
        b.loaded(line.word_addr(WordIdx(1)));
        let evict = WordMask::from_bits(0b0110_0000_0000_0110);
        for w in evict.iter() {
            a.evicted(line.word_addr(w));
        }
        b.evicted_words(line.word_addr(WordIdx(0)), evict);
        assert_eq!(a.pending_instances(), b.pending_instances());
        let (ra, rb) = (a.finish(), b.finish());
        for cat in WasteCategory::ALL {
            assert_eq!(ra.words(cat), rb.words(cat), "{cat}");
            assert_eq!(
                ra.flit_hops(MessageClass::Load, cat),
                rb.flit_hops(MessageClass::Load, cat)
            );
        }
    }
}
