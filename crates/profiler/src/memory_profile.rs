//! The memory-fetch waste profiler (Figure 4.3).
//!
//! Every word fetched from DRAM is tracked as a distinct `(address,
//! identifier)` instance, because DeNovo's non-inclusive L2 can have several
//! copies of the same word on chip from different memory requests. The
//! profile answers "how useful was each word we paid to bring on chip?".
//!
//! Two simplifications relative to the thesis' exact `NumRefs` bookkeeping
//! (documented here because they matter only for corner cases): a program
//! load classifies the *most recent* pending instance of the address as
//! `Used`, and an eviction event classifies the *oldest* pending instance as
//! `Evict`. Stores follow the paper exactly: all pending instances of the
//! address become `Write` waste.

use crate::category::{WasteCategory, WasteReport};
use std::collections::HashMap;
use tw_types::{Addr, MessageClass};

#[derive(Debug, Clone, Copy)]
struct Instance {
    flit_hops: f64,
}

/// Profiler for words fetched from memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryWasteProfiler {
    next_id: u64,
    pending: HashMap<Addr, Vec<Instance>>,
    report: WasteReport,
}

impl MemoryWasteProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        MemoryWasteProfiler::default()
    }

    /// Number of word instances awaiting classification.
    pub fn pending_instances(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// A word was sent from memory onto the chip.
    ///
    /// `l2_already_present` is true when the L2 already holds the address, in
    /// which case the new instance is immediately `Fetch` waste (Figure 4.3).
    /// Returns the instance identifier.
    pub fn fetched(&mut self, addr: Addr, l2_already_present: bool, flit_hops: f64) -> u64 {
        let addr = addr.word_aligned();
        let id = self.next_id;
        self.next_id += 1;
        if l2_already_present {
            self.report
                .record(WasteCategory::Fetch, MessageClass::Load, flit_hops);
        } else {
            self.pending
                .entry(addr)
                .or_default()
                .push(Instance { flit_hops });
        }
        id
    }

    /// A word was read by DRAM but dropped at the memory controller because
    /// the Flex communication region did not include it (`Excess` waste).
    /// These words never enter the network, so they carry no flit-hops.
    pub fn dropped_at_controller(&mut self, addr: Addr) {
        let _ = addr;
        self.report
            .record(WasteCategory::Excess, MessageClass::Load, 0.0);
    }

    /// The program loaded the word: the most recent pending instance of the
    /// address becomes `Used`.
    pub fn loaded(&mut self, addr: Addr) {
        let addr = addr.word_aligned();
        if let Some(list) = self.pending.get_mut(&addr) {
            if let Some(inst) = list.pop() {
                self.report
                    .record(WasteCategory::Used, MessageClass::Load, inst.flit_hops);
            }
            if list.is_empty() {
                self.pending.remove(&addr);
            }
        }
    }

    /// Some L1 stored to the address: every pending instance becomes `Write`
    /// waste (the coherence protocol will invalidate or overwrite all other
    /// on-chip copies; paper §4.1).
    pub fn stored(&mut self, addr: Addr) {
        let addr = addr.word_aligned();
        if let Some(list) = self.pending.remove(&addr) {
            for inst in list {
                self.report
                    .record(WasteCategory::Write, MessageClass::Store, inst.flit_hops);
            }
        }
    }

    /// The last on-chip copy of one instance of the address left the chip:
    /// the oldest pending instance becomes `Evict` waste.
    pub fn evicted(&mut self, addr: Addr) {
        let addr = addr.word_aligned();
        if let Some(list) = self.pending.get_mut(&addr) {
            if !list.is_empty() {
                let inst = list.remove(0);
                self.report
                    .record(WasteCategory::Evict, MessageClass::Load, inst.flit_hops);
            }
            if list.is_empty() {
                self.pending.remove(&addr);
            }
        }
    }

    /// The coherence protocol invalidated on-chip copies of the address
    /// before use.
    pub fn invalidated(&mut self, addr: Addr) {
        let addr = addr.word_aligned();
        if let Some(list) = self.pending.get_mut(&addr) {
            if let Some(inst) = list.pop() {
                self.report.record(
                    WasteCategory::Invalidate,
                    MessageClass::Load,
                    inst.flit_hops,
                );
            }
            if list.is_empty() {
                self.pending.remove(&addr);
            }
        }
    }

    /// Ends the simulation; remaining instances become `Unevicted`.
    pub fn finish(mut self) -> WasteReport {
        let mut addrs: Vec<Addr> = self.pending.keys().copied().collect();
        // Address order, not hash order: the flit-hop buckets are f64 sums
        // and must accumulate identically on every run.
        addrs.sort_unstable();
        for addr in addrs {
            for inst in self.pending.remove(&addr).unwrap_or_default() {
                self.report
                    .record(WasteCategory::Unevicted, MessageClass::Load, inst.flit_hops);
            }
        }
        self.report
    }

    /// Snapshot of the report accumulated so far.
    pub fn report_so_far(&self) -> &WasteReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Addr {
        Addr::new(0x1000 + n * 4)
    }

    #[test]
    fn fetch_then_load_is_used() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 3.0);
        p.loaded(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Used), 1);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 3.0);
    }

    #[test]
    fn fetch_when_l2_holds_the_address_is_fetch_waste() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), true, 2.0);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Fetch), 1);
    }

    #[test]
    fn store_marks_all_pending_instances_write() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.fetched(addr(0), false, 1.0);
        p.stored(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Write), 2);
        assert_eq!(r.words(WasteCategory::Unevicted), 0);
    }

    #[test]
    fn eviction_consumes_oldest_instance() {
        let mut p = MemoryWasteProfiler::new();
        let first = p.fetched(addr(0), false, 1.0);
        let second = p.fetched(addr(0), false, 2.0);
        assert!(second > first);
        p.evicted(addr(0));
        p.loaded(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Evict), 1);
        assert_eq!(r.words(WasteCategory::Used), 1);
        // The evicted (oldest) instance carried 1.0 flit-hops, the used one 2.0.
        assert_eq!(r.flit_hops(MessageClass::Load, WasteCategory::Evict), 1.0);
        assert_eq!(r.used_flit_hops(MessageClass::Load), 2.0);
    }

    #[test]
    fn excess_waste_counts_words_dropped_at_the_controller() {
        let mut p = MemoryWasteProfiler::new();
        p.dropped_at_controller(addr(4));
        p.dropped_at_controller(addr(5));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Excess), 2);
    }

    #[test]
    fn unresolved_instances_finish_unevicted() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.fetched(addr(1), false, 1.0);
        assert_eq!(p.pending_instances(), 2);
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Unevicted), 2);
    }

    #[test]
    fn invalidate_classifies_pending_instance() {
        let mut p = MemoryWasteProfiler::new();
        p.fetched(addr(0), false, 1.0);
        p.invalidated(addr(0));
        let r = p.finish();
        assert_eq!(r.words(WasteCategory::Invalidate), 1);
    }

    #[test]
    fn events_without_fetch_are_ignored() {
        let mut p = MemoryWasteProfiler::new();
        p.loaded(addr(9));
        p.stored(addr(9));
        p.evicted(addr(9));
        assert_eq!(p.finish().total_words(), 0);
    }
}
