//! Waste characterization: the profiling methodology of paper §4.1.
//!
//! Every word moved into an L1, into the L2, or fetched from memory is
//! classified into one of six categories — `Used`, `Write`, `Fetch`,
//! `Invalidate`, `Evict`, `Unevicted` (plus `Excess` at the memory level for
//! words dropped at the memory controller by the L2-Flex optimization).
//! Classification is deferred: a word's fate is only known once it is read,
//! overwritten, invalidated, evicted, or the simulation ends. The profilers in
//! this crate implement the three finite-state machines of Figures 4.1–4.3
//! and, because each tracked word also remembers the flit-hops spent moving
//! it, they retroactively attribute response data traffic to the
//! `Used`/`Waste` buckets of Figures 5.1b–5.1c.
//!
//! # Example
//!
//! ```
//! use tw_profiler::{CacheLevel, CacheWasteProfiler, WasteCategory};
//! use tw_types::{Addr, MessageClass};
//!
//! let mut l1 = CacheWasteProfiler::new(CacheLevel::L1);
//! let a = Addr::new(0x100);
//! l1.arrive(a, false, 1.5, MessageClass::Load);
//! l1.loaded(a);
//! let report = l1.finish();
//! assert_eq!(report.words(WasteCategory::Used), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_profile;
pub mod category;
pub mod memory_profile;
pub mod traffic;

pub use cache_profile::{CacheLevel, CacheWasteProfiler};
pub use category::{WasteCategory, WasteReport};
pub use memory_profile::MemoryWasteProfiler;
pub use traffic::TrafficBreakdown;
