//! Flit-hop accounting by traffic class and figure bucket.

use std::collections::BTreeMap;
use tw_types::{MessageClass, TrafficBucket};

/// Accumulated flit-hops, organized the way Figures 5.1a–5.1d present them.
///
/// Control flit-hops (requests, response headers, protocol overhead,
/// writeback control) are recorded directly by the simulator as messages are
/// sent; response *data* flit-hops are recorded once the carried words have
/// been classified by the waste profilers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficBreakdown {
    hops: BTreeMap<(MessageClass, TrafficBucket), f64>,
}

impl TrafficBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        TrafficBreakdown::default()
    }

    /// Adds `flit_hops` to `(class, bucket)`.
    pub fn add(&mut self, class: MessageClass, bucket: TrafficBucket, flit_hops: f64) {
        if flit_hops == 0.0 {
            return;
        }
        *self.hops.entry((class, bucket)).or_insert(0.0) += flit_hops;
    }

    /// Flit-hops recorded for `(class, bucket)`.
    pub fn get(&self, class: MessageClass, bucket: TrafficBucket) -> f64 {
        self.hops.get(&(class, bucket)).copied().unwrap_or(0.0)
    }

    /// Total flit-hops for one message class.
    pub fn class_total(&self, class: MessageClass) -> f64 {
        self.hops
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, h)| h)
            .sum()
    }

    /// Total flit-hops across all classes.
    pub fn total(&self) -> f64 {
        self.hops.values().sum()
    }

    /// Total flit-hops in waste buckets.
    pub fn waste_total(&self) -> f64 {
        self.hops
            .iter()
            .filter(|((_, b), _)| b.is_waste())
            .map(|(_, h)| h)
            .sum()
    }

    /// Fraction of all traffic that is waste-bucket data (0 when empty).
    pub fn waste_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.waste_total() / t
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TrafficBreakdown) {
        for (key, h) in &other.hops {
            *self.hops.entry(*key).or_insert(0.0) += h;
        }
    }

    /// Iterates over all `(class, bucket, flit_hops)` entries in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageClass, TrafficBucket, f64)> + '_ {
        self.hops.iter().map(|((c, b), h)| (*c, *b, *h))
    }

    /// Rebuilds a breakdown from raw `(class, bucket, flit_hops)` entries,
    /// inserting them verbatim (no zero-dropping, later duplicates
    /// overwrite). `from_entries(x.iter())` is bit-identical to `x`, which
    /// is what the experiment result cache's round-trip guarantee rests on.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (MessageClass, TrafficBucket, f64)>,
    ) -> Self {
        TrafficBreakdown {
            hops: entries.into_iter().map(|(c, b, h)| ((c, b), h)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 10.0);
        t.add(MessageClass::Load, TrafficBucket::RespL1Used, 20.0);
        t.add(MessageClass::Load, TrafficBucket::RespL1Waste, 5.0);
        t.add(MessageClass::Store, TrafficBucket::ReqCtl, 7.0);
        assert_eq!(t.get(MessageClass::Load, TrafficBucket::ReqCtl), 10.0);
        assert_eq!(t.class_total(MessageClass::Load), 35.0);
        assert_eq!(t.class_total(MessageClass::Writeback), 0.0);
        assert_eq!(t.total(), 42.0);
        assert_eq!(t.waste_total(), 5.0);
        assert!((t.waste_fraction() - 5.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn zero_additions_are_dropped() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 0.0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.waste_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_entries() {
        let mut a = TrafficBreakdown::new();
        a.add(MessageClass::Load, TrafficBucket::ReqCtl, 1.0);
        let mut b = TrafficBreakdown::new();
        b.add(MessageClass::Load, TrafficBucket::ReqCtl, 2.0);
        b.add(MessageClass::Overhead, TrafficBucket::Overhead, 3.0);
        a.merge(&b);
        assert_eq!(a.get(MessageClass::Load, TrafficBucket::ReqCtl), 3.0);
        assert_eq!(a.get(MessageClass::Overhead, TrafficBucket::Overhead), 3.0);
    }

    #[test]
    fn raw_entries_round_trip_bit_exactly() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 1.25);
        t.add(MessageClass::Overhead, TrafficBucket::Overhead, 0.1 + 0.2);
        assert_eq!(TrafficBreakdown::from_entries(t.iter()), t);
    }

    #[test]
    fn iter_is_stable_and_complete() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Writeback, TrafficBucket::WbMemUsed, 4.0);
        t.add(MessageClass::Load, TrafficBucket::RespCtl, 1.0);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries.len(), 2);
        let sum: f64 = entries.iter().map(|(_, _, h)| h).sum();
        assert_eq!(sum, 5.0);
    }
}
