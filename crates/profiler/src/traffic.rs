//! Flit-hop accounting by traffic class and figure bucket.

use tw_types::{MessageClass, TrafficBucket};

const CLASSES: usize = 4;
const BUCKETS: usize = 12;

#[inline(always)]
fn idx(class: MessageClass, bucket: TrafficBucket) -> usize {
    // Class-major, bucket-minor — ascending flat index reproduces the
    // `(MessageClass, TrafficBucket)` tuple-Ord iteration order of the
    // `BTreeMap` this table used to be.
    class as usize * BUCKETS + bucket as usize
}

/// Accumulated flit-hops, organized the way Figures 5.1a–5.1d present them.
///
/// Control flit-hops (requests, response headers, protocol overhead,
/// writeback control) are recorded directly by the simulator as messages are
/// sent; response *data* flit-hops are recorded once the carried words have
/// been classified by the waste profilers.
///
/// Stored as a dense `class × bucket` array (this is written on every
/// message send); the presence mask preserves the old map semantics — `add`
/// drops zeros, `from_entries` keeps them verbatim — so equality and the
/// result cache's raw-entry round trip behave exactly as before. Invariant:
/// a slot whose presence bit is clear always holds `0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficBreakdown {
    hops: [f64; CLASSES * BUCKETS],
    present: [bool; CLASSES * BUCKETS],
}

impl Default for TrafficBreakdown {
    fn default() -> Self {
        TrafficBreakdown {
            hops: [0.0; CLASSES * BUCKETS],
            present: [false; CLASSES * BUCKETS],
        }
    }
}

impl TrafficBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        TrafficBreakdown::default()
    }

    /// Adds `flit_hops` to `(class, bucket)`.
    #[inline]
    pub fn add(&mut self, class: MessageClass, bucket: TrafficBucket, flit_hops: f64) {
        if flit_hops == 0.0 {
            return;
        }
        let i = idx(class, bucket);
        self.present[i] = true;
        self.hops[i] += flit_hops;
    }

    /// Flit-hops recorded for `(class, bucket)`.
    pub fn get(&self, class: MessageClass, bucket: TrafficBucket) -> f64 {
        self.hops[idx(class, bucket)]
    }

    // The three totals below sum *present* entries only, via `Iterator::sum`
    // (which folds from -0.0). This bit-exactly reproduces the old BTreeMap
    // sums — in particular an empty class sums to -0.0, and that sign
    // survives normalization into the figure JSON ("-0" for a class with no
    // traffic). Summing the dense array directly would fold the absent +0.0
    // slots in and flip that sign.

    /// Total flit-hops for one message class.
    pub fn class_total(&self, class: MessageClass) -> f64 {
        let base = class as usize * BUCKETS;
        self.hops[base..base + BUCKETS]
            .iter()
            .zip(&self.present[base..base + BUCKETS])
            .filter_map(|(h, p)| p.then_some(*h))
            .sum()
    }

    /// Total flit-hops across all classes.
    pub fn total(&self) -> f64 {
        self.hops
            .iter()
            .zip(&self.present)
            .filter_map(|(h, p)| p.then_some(*h))
            .sum()
    }

    /// Total flit-hops in waste buckets.
    pub fn waste_total(&self) -> f64 {
        self.iter()
            .filter(|(_, b, _)| b.is_waste())
            .map(|(_, _, h)| h)
            .sum()
    }

    /// Fraction of all traffic that is waste-bucket data (0 when empty).
    pub fn waste_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.waste_total() / t
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TrafficBreakdown) {
        for i in 0..CLASSES * BUCKETS {
            if other.present[i] {
                self.present[i] = true;
                self.hops[i] += other.hops[i];
            }
        }
    }

    /// Iterates over all `(class, bucket, flit_hops)` entries in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageClass, TrafficBucket, f64)> + '_ {
        MessageClass::ALL.iter().flat_map(move |c| {
            TrafficBucket::ALL.iter().filter_map(move |b| {
                let i = idx(*c, *b);
                self.present[i].then(|| (*c, *b, self.hops[i]))
            })
        })
    }

    /// Rebuilds a breakdown from raw `(class, bucket, flit_hops)` entries,
    /// inserting them verbatim (no zero-dropping, later duplicates
    /// overwrite). `from_entries(x.iter())` is bit-identical to `x`, which
    /// is what the experiment result cache's round-trip guarantee rests on.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (MessageClass, TrafficBucket, f64)>,
    ) -> Self {
        let mut t = TrafficBreakdown::new();
        for (c, b, h) in entries {
            let i = idx(c, b);
            t.present[i] = true;
            t.hops[i] = h;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 10.0);
        t.add(MessageClass::Load, TrafficBucket::RespL1Used, 20.0);
        t.add(MessageClass::Load, TrafficBucket::RespL1Waste, 5.0);
        t.add(MessageClass::Store, TrafficBucket::ReqCtl, 7.0);
        assert_eq!(t.get(MessageClass::Load, TrafficBucket::ReqCtl), 10.0);
        assert_eq!(t.class_total(MessageClass::Load), 35.0);
        assert_eq!(t.class_total(MessageClass::Writeback), 0.0);
        assert_eq!(t.total(), 42.0);
        assert_eq!(t.waste_total(), 5.0);
        assert!((t.waste_fraction() - 5.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn zero_additions_are_dropped() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 0.0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.waste_fraction(), 0.0);
        assert_eq!(t, TrafficBreakdown::new());
    }

    #[test]
    fn merge_sums_entries() {
        let mut a = TrafficBreakdown::new();
        a.add(MessageClass::Load, TrafficBucket::ReqCtl, 1.0);
        let mut b = TrafficBreakdown::new();
        b.add(MessageClass::Load, TrafficBucket::ReqCtl, 2.0);
        b.add(MessageClass::Overhead, TrafficBucket::Overhead, 3.0);
        a.merge(&b);
        assert_eq!(a.get(MessageClass::Load, TrafficBucket::ReqCtl), 3.0);
        assert_eq!(a.get(MessageClass::Overhead, TrafficBucket::Overhead), 3.0);
    }

    #[test]
    fn raw_entries_round_trip_bit_exactly() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 1.25);
        t.add(MessageClass::Overhead, TrafficBucket::Overhead, 0.1 + 0.2);
        assert_eq!(TrafficBreakdown::from_entries(t.iter()), t);
    }

    #[test]
    fn verbatim_zero_entries_survive_the_round_trip() {
        // The cache layer serializes whatever iter() yields and rebuilds with
        // from_entries; an explicit zero entry must stay distinguishable from
        // an absent one.
        let t =
            TrafficBreakdown::from_entries([(MessageClass::Store, TrafficBucket::RespCtl, 0.0)]);
        assert_eq!(t.iter().count(), 1);
        assert_ne!(t, TrafficBreakdown::new());
        assert_eq!(TrafficBreakdown::from_entries(t.iter()), t);
    }

    #[test]
    fn empty_class_total_is_negative_zero() {
        // `Iterator::sum` for f64 folds from -0.0, so the old BTreeMap
        // implementation returned -0.0 for a class with no entries — and
        // that sign reaches BENCH_results.json through normalization
        // (LU/MESI has zero store traffic and prints "-0"). The dense
        // rewrite must not flip it by summing absent +0.0 slots.
        let mut t = TrafficBreakdown::new();
        assert!(t.total().is_sign_negative());
        assert!(t.class_total(MessageClass::Store).is_sign_negative());
        assert!(t.waste_total().is_sign_negative());
        t.add(MessageClass::Load, TrafficBucket::ReqCtl, 10.0);
        assert!(t.class_total(MessageClass::Store).is_sign_negative());
        assert_eq!(t.total(), 10.0);
    }

    #[test]
    fn iter_is_stable_and_complete() {
        let mut t = TrafficBreakdown::new();
        t.add(MessageClass::Writeback, TrafficBucket::WbMemUsed, 4.0);
        t.add(MessageClass::Load, TrafficBucket::RespCtl, 1.0);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries.len(), 2);
        // (class, bucket) tuple-Ord order: Load before Writeback.
        assert_eq!(entries[0].0, MessageClass::Load);
        let sum: f64 = entries.iter().map(|(_, _, h)| h).sum();
        assert_eq!(sum, 5.0);
    }
}
