//! The tiled-machine simulator: core scheduling, barriers, report assembly.
//!
//! The simulator is *transaction level*: each memory reference of the in-order
//! cores is resolved as one atomic coherence transaction whose messages are
//! individually routed (and charged flit-hops) on the mesh, and whose critical
//! path determines how long the issuing core stalls. Cores are interleaved by
//! always stepping the core with the smallest local clock, and barriers
//! synchronize all clocks (charging the difference to `Sync` time). The
//! blocking-directory corner cases the paper's GEMS protocol NACKs or holds
//! never arise under this serialization, matching the paper's observation
//! that NACK traffic is negligible.
//!
//! This module is protocol-agnostic: every protocol-specific action is
//! reached through the [`engine::ProtocolExecutor`] trait, resolved once at
//! construction from the registry in [`engine`]. The executors themselves
//! live in `exec_mesi.rs`, `exec_denovo.rs` and `exec_dragon.rs`; the shared
//! machine state and accounting they operate on live in `engine.rs` (see
//! `DESIGN.md` §3).

pub(crate) mod engine;
mod exec_denovo;
mod exec_dragon;
mod exec_mesi;

use crate::machine::build_tiles;
use crate::report::SimReport;
use crate::timing::{ExecutionBreakdown, TimeClass};
use engine::{executor_for, Engine, GeomCache, Net, ProtocolExecutor, TraceCapture};
use tw_obs::{Span, SpanSink};
use tw_profiler::{CacheLevel, CacheWasteProfiler, MemoryWasteProfiler};
use tw_types::{
    Cycle, MemKind, MessageClass, ProtocolKind, Stamp, SystemConfig, TraceOp, TrafficBucket,
};
use tw_workloads::Workload;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Protocol configuration to simulate.
    pub protocol: ProtocolKind,
    /// Simulated system parameters (Table 4.1 by default).
    pub system: SystemConfig,
    /// Fixed cost charged to every core at each barrier (latency of the
    /// barrier primitive itself).
    pub barrier_overhead: Cycle,
    /// Observer-lane span sink for this run. `None` (the default) records
    /// nothing; emission sites guard on it, so an unrecorded run pays one
    /// branch per barrier, not per memory operation. The recorder is
    /// write-only — nothing simulated may depend on it (DESIGN.md §15).
    pub recorder: Option<SpanSink>,
}

/// Resolves a protocol configuration from its figure name (case-insensitive),
/// via the executor registry — the inverse of [`ProtocolKind::name`].
pub fn protocol_by_name(name: &str) -> Option<ProtocolKind> {
    engine::kind_by_name(name)
}

impl SimConfig {
    /// A run of `protocol` on the default (Table 4.1) system.
    pub fn new(protocol: ProtocolKind) -> Self {
        SimConfig {
            protocol,
            system: SystemConfig::default(),
            barrier_overhead: 100,
            recorder: None,
        }
    }

    /// Replaces the system configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Arms flight recording: phase and run spans are emitted on `sink`.
    pub fn with_recorder(mut self, sink: SpanSink) -> Self {
        self.recorder = Some(sink);
        self
    }
}

/// Per-core execution status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    AtBarrier(u32),
    Done,
}

/// The simulator for one (protocol, workload) pair.
///
/// The simulator owns the scheduler state (per-core clocks, program counters
/// and run states) and an [`Engine`] holding all machine state; protocol
/// behavior is dispatched through the executor resolved from the registry.
#[derive(Debug)]
pub struct Simulator<'wl> {
    pub(crate) engine: Engine<'wl>,
    exec: &'static dyn ProtocolExecutor,
    /// Per-core clocks. Scheduling and barrier matching consult only the
    /// canonical lane, so the service order — and with it every traffic and
    /// waste number — is identical under every network model; the timed
    /// lane carries the configured model's latency into the report.
    clocks: Vec<Stamp>,
    pc: Vec<usize>,
    state: Vec<CoreState>,
    /// Scheduler shadow of `clocks`/`state`: the canonical clock of each
    /// `Running` core, `u64::MAX` otherwise. The per-op "next core" argmin
    /// scans this flat array instead of filtering on `state` each time;
    /// ties resolve to the lowest core index, exactly like the
    /// `min_by_key` it replaces.
    ready: Vec<u64>,
    /// Barrier phases released so far (flight-recorder span numbering).
    phases: u64,
}

impl<'wl> Simulator<'wl> {
    /// Builds a simulator for one protocol configuration and workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload was generated for a different number of cores
    /// than the system has tiles, or if the system configuration is invalid.
    pub fn new(cfg: SimConfig, workload: &'wl Workload) -> Self {
        cfg.system.validate().expect("invalid system configuration");
        assert_eq!(
            workload.cores(),
            cfg.system.tiles(),
            "workload core count must match the machine"
        );
        let cores = cfg.system.tiles();
        let exec = executor_for(cfg.protocol);
        let engine = Engine {
            tiles: build_tiles(&cfg.system, cfg.protocol),
            net: Net::new(cfg.system.noc.clone(), cfg.system.network),
            geo: GeomCache::new(&cfg.system, &workload.regions),
            l1_prof: (0..cores)
                .map(|_| CacheWasteProfiler::new(CacheLevel::L1))
                .collect(),
            l2_prof: CacheWasteProfiler::new(CacheLevel::L2),
            mem_prof: MemoryWasteProfiler::new(),
            time: (0..cores).map(|_| ExecutionBreakdown::new()).collect(),
            capture: None,
            cfg,
            workload,
        };
        Simulator {
            engine,
            exec,
            clocks: vec![Stamp::at(0); cores],
            pc: vec![0; cores],
            state: vec![CoreState::Running; cores],
            ready: vec![0; cores],
            phases: 0,
        }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> ProtocolKind {
        self.engine.protocol()
    }

    /// Runs the workload to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        self.run_loop();
        self.finish()
    }

    /// Runs the workload to completion while recording the serviced
    /// reference stream, returning the report plus a replayable [`Workload`]
    /// (same kind, input and region table; traces as serviced). Persist it
    /// with `Workload::to_trace` and any later replay under the same
    /// protocol and system produces a bit-identical report.
    pub fn run_captured(mut self) -> (SimReport, Workload) {
        self.engine.capture = Some(TraceCapture::new(self.clocks.len()));
        self.run_loop();
        let capture = self.engine.capture.take().expect("capture was armed");
        let workload = Workload {
            kind: self.engine.workload.kind,
            input: self.engine.workload.input.clone(),
            regions: self.engine.workload.regions.clone(),
            traces: capture.into_streams(),
        };
        (self.finish(), workload)
    }

    /// The scheduler loop: steps the runnable core with the smallest clock,
    /// releasing barriers when nobody is runnable.
    fn run_loop(&mut self) {
        loop {
            // Canonical-lane ordering: which core runs next must not depend
            // on the configured network model (see `clocks`). Non-running
            // cores sit at `u64::MAX` in `ready` (clocks can never reach it),
            // so a flat first-minimum scan is the old filtered `min_by_key`.
            let mut core = usize::MAX;
            let mut best = u64::MAX;
            for (c, &at) in self.ready.iter().enumerate() {
                if at < best {
                    best = at;
                    core = c;
                }
            }
            if core != usize::MAX {
                self.step_core(core);
            } else {
                // Everyone is either done or waiting at a barrier.
                if self.state.iter().all(|s| *s == CoreState::Done) {
                    break;
                }
                self.release_barrier();
            }
        }
    }

    /// Executes one trace record of `core`.
    fn step_core(&mut self, core: usize) {
        let Some(op) = self.engine.workload.traces[core]
            .get(self.pc[core])
            .copied()
        else {
            self.state[core] = CoreState::Done;
            self.ready[core] = u64::MAX;
            return;
        };
        match op {
            TraceOp::Compute { cycles } => {
                self.clocks[core] += cycles as Cycle;
                self.ready[core] = self.clocks[core].canon;
                self.engine.time[core].add(TimeClass::Compute, cycles as Cycle);
                self.pc[core] += 1;
                self.engine.record_serviced(core, op);
            }
            TraceOp::Barrier { id } => {
                self.state[core] = CoreState::AtBarrier(id);
                self.ready[core] = u64::MAX;
                // pc advances when the barrier releases; this arm runs once
                // per barrier record, so the capture sees it exactly once.
                self.engine.record_serviced(core, op);
            }
            TraceOp::Mem { kind, addr, region } => {
                let now = self.clocks[core];
                let done = match kind {
                    MemKind::Load => self.exec.load(&mut self.engine, core, addr, region, now),
                    MemKind::Store => self.exec.store(&mut self.engine, core, addr, region, now),
                };
                debug_assert!(done.not_before(now));
                self.clocks[core] = done;
                self.ready[core] = done.canon;
                self.pc[core] += 1;
                self.engine.record_serviced(core, op);
            }
        }
    }

    /// Releases the barrier every non-finished core is waiting at.
    fn release_barrier(&mut self) {
        let waiting: Vec<usize> = (0..self.state.len())
            .filter(|&c| matches!(self.state[c], CoreState::AtBarrier(_)))
            .collect();
        assert!(
            !waiting.is_empty(),
            "deadlock: no runnable core and no barrier to release"
        );
        let ids: Vec<u32> = waiting
            .iter()
            .map(|&c| match self.state[c] {
                CoreState::AtBarrier(id) => id,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "cores are waiting at different barriers: {ids:?}"
        );
        // Finished cores no longer participate; everyone still waiting
        // synchronizes to the latest arrival — on each lane independently,
        // so the canonical release point stays model-invariant while the
        // timed release reflects the configured network's latency.
        let release = waiting
            .iter()
            .map(|&c| self.clocks[c])
            .fold(Stamp::at(0), Stamp::max)
            + self.engine.cfg.barrier_overhead;
        for &c in &waiting {
            let wait = release.since(self.clocks[c]);
            self.engine.time[c].add(TimeClass::Sync, wait);
            self.clocks[c] = release;
            self.ready[c] = release.canon;
            self.pc[c] += 1;
            self.state[c] = CoreState::Running;
        }
        self.exec.barrier_released(&mut self.engine, release);
        self.phases += 1;
        // Observer lane: every attribute below is a pure function of the
        // run's inputs (canonical/timed lanes and all counters are
        // deterministic), so traces byte-diff across reruns.
        if let Some(sink) = &self.engine.cfg.recorder {
            if sink.enabled() {
                sink.emit(
                    Span::event("phase")
                        .attr("phase", self.phases)
                        .attr("barrier", u64::from(ids[0]))
                        .attr("cores", waiting.len() as u64)
                        .attr("release", release.canon)
                        .attr("sends", self.engine.net.sends)
                        .attr("queue_hw", self.engine.net.queue_high_water() as u64),
                );
            }
        }
    }

    /// Drains profilers and builds the final report.
    fn finish(mut self) -> SimReport {
        // Give the protocol a chance to drain still-pending work (e.g.
        // DeNovo registrations) so its traffic is accounted — the paper's
        // measurement period ends at a barrier, where those tables would
        // have drained anyway.
        let last = self.clocks.iter().copied().fold(Stamp::at(0), Stamp::max);
        self.exec.finish(&mut self.engine, last);
        if let Some(sink) = &self.engine.cfg.recorder {
            if sink.enabled() {
                let (mut probes, mut resizes) = (0u64, 0u64);
                for prof in &self.engine.l1_prof {
                    let (_, p, r) = prof.pending_table_stats();
                    probes += p;
                    resizes += r;
                }
                for (_, p, r) in [
                    self.engine.l2_prof.pending_table_stats(),
                    self.engine.mem_prof.pending_table_stats(),
                ] {
                    probes += p;
                    resizes += r;
                }
                sink.emit(
                    Span::event("run")
                        .attr("protocol", self.engine.cfg.protocol.name())
                        .attr("benchmark", self.engine.workload.kind.name())
                        .attr("network", self.engine.cfg.system.network.name())
                        .attr("cycles", last.timed)
                        .attr("phases", self.phases)
                        .attr("sends", self.engine.net.sends)
                        .attr("queue_hw", self.engine.net.queue_high_water() as u64)
                        .attr("map_probes", probes)
                        .attr("map_resizes", resizes),
                );
            }
        }
        let eng = self.engine;

        let mut l1_waste = tw_profiler::WasteReport::new();
        for p in eng.l1_prof {
            l1_waste.merge(&p.finish());
        }
        let l2_waste = eng.l2_prof.finish();
        let mem_waste = eng.mem_prof.finish();

        // Attribute the profiled response-data flit-hops to the traffic
        // breakdown now that every word has a final classification.
        let mesh_flit_hops = eng.net.total_flit_hops();
        let mut traffic = eng.net.traffic.clone();
        for class in [MessageClass::Load, MessageClass::Store] {
            for (report, used_bucket, waste_bucket) in [
                (
                    &l1_waste,
                    TrafficBucket::RespL1Used,
                    TrafficBucket::RespL1Waste,
                ),
                (
                    &l2_waste,
                    TrafficBucket::RespL2Used,
                    TrafficBucket::RespL2Waste,
                ),
            ] {
                traffic.add(class, used_bucket, report.used_flit_hops(class));
                traffic.add(class, waste_bucket, report.wasted_flit_hops(class));
            }
        }

        let mut time = ExecutionBreakdown::new();
        for t in &eng.time {
            time.merge(t);
        }
        // Reported execution time lives on the timed lane (identical to the
        // canonical lane under the default analytic model).
        let total_cycles = self.clocks.iter().map(|s| s.timed).max().unwrap_or(0);

        let (mut accesses, mut hits, mut total) = (0u64, 0u64, 0u64);
        for tile in &eng.tiles {
            if let Some(mc) = &tile.mc {
                let s = mc.stats();
                accesses += s.reads + s.writes;
                hits += s.row_hits;
                total += s.row_hits + s.row_misses;
            }
        }

        SimReport {
            protocol: eng.cfg.protocol,
            benchmark: eng.workload.kind,
            input: eng.workload.input.clone(),
            total_cycles,
            time,
            traffic,
            mesh_flit_hops,
            l1_waste,
            l2_waste,
            mem_waste,
            dram_accesses: accesses,
            dram_row_hit_rate: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_workloads::{build_tiny, BenchmarkKind};

    fn run(protocol: ProtocolKind, bench: BenchmarkKind) -> SimReport {
        let wl = build_tiny(bench, 16).unwrap();
        Simulator::new(SimConfig::new(protocol), &wl).run()
    }

    #[test]
    fn mesi_runs_a_tiny_fft_to_completion() {
        let r = run(ProtocolKind::Mesi, BenchmarkKind::Fft);
        assert!(r.total_cycles > 0);
        assert!(r.traffic.total() > 0.0);
        assert!(r.l1_waste.total_words() > 0);
        assert!(r.mem_waste.total_words() > 0);
        assert!(r.dram_accesses > 0);
    }

    #[test]
    fn every_protocol_completes_every_tiny_benchmark() {
        for &p in &ProtocolKind::ALL {
            for &b in &BenchmarkKind::ALL {
                let r = run(p, b);
                assert!(r.total_cycles > 0, "{p} on {b} produced no time");
                assert!(r.traffic.total() > 0.0, "{p} on {b} produced no traffic");
            }
        }
    }

    #[test]
    fn denovo_generates_no_mesi_style_overhead_messages() {
        let mesi = run(ProtocolKind::Mesi, BenchmarkKind::Lu);
        let denovo = run(ProtocolKind::DeNovo, BenchmarkKind::Lu);
        let mesi_ovh = mesi.traffic.class_total(MessageClass::Overhead);
        let denovo_ovh = denovo.traffic.class_total(MessageClass::Overhead);
        assert!(
            denovo_ovh < mesi_ovh * 0.2,
            "DeNovo overhead {denovo_ovh} should be well below MESI's {mesi_ovh}"
        );
    }

    #[test]
    fn optimized_denovo_reduces_traffic_versus_mesi() {
        // At the miniature test scale (tiny inputs on the full Table 4.1
        // caches) some benchmarks fit almost entirely in cache, where MESI's
        // silent E→M upgrades can locally beat DeNovo's registration traffic
        // and the Bloom-copy overhead of DBypFull is not yet amortized. The
        // paper-scale per-benchmark shape is validated by the integration
        // tests and the experiments harness; here we check the aggregate over
        // all six benchmarks with every optimization short of request bypass.
        let (mut mesi_total, mut opt_total) = (0.0, 0.0);
        for &b in &BenchmarkKind::ALL {
            mesi_total += run(ProtocolKind::Mesi, b).total_flit_hops();
            opt_total += run(ProtocolKind::DBypL2, b).total_flit_hops();
        }
        assert!(
            opt_total < mesi_total,
            "DBypL2 ({opt_total}) should move fewer flit-hops than MESI ({mesi_total}) across the suite"
        );
    }

    #[test]
    fn bucketed_ledger_tracks_raw_mesh_flit_hops() {
        let wl = build_tiny(BenchmarkKind::Radix, 16).unwrap();
        let sim = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &wl);
        assert_eq!(sim.protocol(), ProtocolKind::DBypFull);
        let report = sim.run();
        assert!(report.traffic.total() > 0.0);
        let waste = report.traffic.waste_total();
        assert!(waste >= 0.0 && waste <= report.traffic.total());
        // The bucketed ledger attributes fractional flits; the mesh counts
        // whole flits. The two totals must agree to within a few percent.
        let rel = (report.traffic.total() - report.mesh_flit_hops).abs() / report.mesh_flit_hops;
        assert!(
            rel < 0.05,
            "bucketed total {} vs raw mesh {} differ by {:.1}%",
            report.traffic.total(),
            report.mesh_flit_hops,
            100.0 * rel
        );
    }

    #[test]
    fn mismatched_core_count_is_rejected() {
        let wl = build_tiny(BenchmarkKind::Fft, 4).unwrap();
        let result =
            std::panic::catch_unwind(|| Simulator::new(SimConfig::new(ProtocolKind::Mesi), &wl));
        assert!(result.is_err());
    }

    #[test]
    fn captured_stream_replays_to_a_bit_identical_report() {
        let wl = build_tiny(BenchmarkKind::Lu, 16).unwrap();
        let (report, captured) =
            Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &wl).run_captured();
        captured.assert_well_formed();
        assert_eq!(captured.kind, BenchmarkKind::Lu);
        // The in-order cores service records in program order, so the
        // captured stream is the input stream.
        assert_eq!(captured.traces, wl.traces);
        let replayed = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &captured).run();
        assert_eq!(report, replayed, "replay must be bit-identical");
        // The same captured trace is a first-class workload for any other
        // protocol too.
        let other = Simulator::new(SimConfig::new(ProtocolKind::Mesi), &captured).run();
        assert!(other.total_cycles > 0);
    }

    #[test]
    fn timed_models_move_identical_traffic_and_never_run_faster() {
        // The traffic-identity invariant of DESIGN.md §11, for every
        // non-default network model (flit-level wormhole and snooping bus):
        // the network model may only move time. Everything the canonical
        // lane drives — per-bucket flit-hops, every waste classification,
        // DRAM behavior — must be bit-identical, and the timed execution
        // time must be at or above the analytic lower bound.
        for network in tw_types::NetworkModelKind::ALL {
            if network == tw_types::NetworkModelKind::Analytic {
                continue;
            }
            let timed_sys = SystemConfig {
                network,
                ..SystemConfig::default()
            };
            for &p in &[
                ProtocolKind::Mesi,
                ProtocolKind::DBypFull,
                ProtocolKind::Dragon,
            ] {
                for &b in &[BenchmarkKind::Fft, BenchmarkKind::Fluidanimate] {
                    let wl = build_tiny(b, 16).unwrap();
                    let analytic = Simulator::new(SimConfig::new(p), &wl).run();
                    let timed =
                        Simulator::new(SimConfig::new(p).with_system(timed_sys.clone()), &wl).run();
                    let n = network.name();
                    assert_eq!(timed.traffic, analytic.traffic, "{n}/{p}/{b} traffic");
                    assert_eq!(timed.mesh_flit_hops, analytic.mesh_flit_hops, "{n}/{p}/{b}");
                    assert_eq!(timed.l1_waste, analytic.l1_waste, "{n}/{p}/{b} L1 waste");
                    assert_eq!(timed.l2_waste, analytic.l2_waste, "{n}/{p}/{b} L2 waste");
                    assert_eq!(timed.mem_waste, analytic.mem_waste, "{n}/{p}/{b} mem waste");
                    assert_eq!(timed.dram_accesses, analytic.dram_accesses, "{n}/{p}/{b}");
                    assert_eq!(
                        timed.dram_row_hit_rate, analytic.dram_row_hit_rate,
                        "{n}/{p}/{b}: DRAM evolves on the canonical lane"
                    );
                    assert!(
                        timed.total_cycles >= analytic.total_cycles,
                        "{n}/{p}/{b}: timed {} undercuts analytic {}",
                        timed.total_cycles,
                        analytic.total_cycles
                    );
                    // And the timed run is itself deterministic.
                    let again =
                        Simulator::new(SimConfig::new(p).with_system(timed_sys.clone()), &wl).run();
                    assert_eq!(again, timed, "{n}/{p}/{b} rerun");
                }
            }
        }
    }

    #[test]
    fn barrier_sync_time_is_attributed() {
        // Barnes has a long sequential phase on core 0, so other cores must
        // accumulate Sync time waiting at the first barrier.
        let r = run(ProtocolKind::Mesi, BenchmarkKind::Barnes);
        assert!(r.time.get(TimeClass::Sync) > 0);
        assert!(r.time.get(TimeClass::Compute) > 0);
    }
}
