//! The tiled-machine simulator: core loop, network accounting, barriers.
//!
//! The simulator is *transaction level*: each memory reference of the in-order
//! cores is resolved as one atomic coherence transaction whose messages are
//! individually routed (and charged flit-hops) on the mesh, and whose critical
//! path determines how long the issuing core stalls. Cores are interleaved by
//! always stepping the core with the smallest local clock, and barriers
//! synchronize all clocks (charging the difference to `Sync` time). The
//! blocking-directory corner cases the paper's GEMS protocol NACKs or holds
//! never arise under this serialization, matching the paper's observation
//! that NACK traffic is negligible.

mod exec_denovo;
mod exec_mesi;

use crate::machine::{build_tiles, L1Meta, Tile};
use crate::report::SimReport;
use crate::timing::{ExecutionBreakdown, TimeClass};
use tw_noc::{Mesh, PacketSize};
use tw_profiler::{CacheLevel, CacheWasteProfiler, MemoryWasteProfiler, TrafficBreakdown};
use tw_types::{
    Cycle, LineAddr, MemKind, MessageClass, MessageKind, NocConfig, ProtocolKind, SystemConfig,
    TileId, TraceOp, TrafficBucket,
};
use tw_workloads::Workload;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Protocol configuration to simulate.
    pub protocol: ProtocolKind,
    /// Simulated system parameters (Table 4.1 by default).
    pub system: SystemConfig,
    /// Fixed cost charged to every core at each barrier (latency of the
    /// barrier primitive itself).
    pub barrier_overhead: Cycle,
}

impl SimConfig {
    /// A run of `protocol` on the default (Table 4.1) system.
    pub fn new(protocol: ProtocolKind) -> Self {
        SimConfig {
            protocol,
            system: SystemConfig::default(),
            barrier_overhead: 100,
        }
    }

    /// Replaces the system configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }
}

/// The mesh plus the flit-hop ledger.
#[derive(Debug)]
pub(crate) struct Net {
    mesh: Mesh,
    pub(crate) traffic: TrafficBreakdown,
    noc: NocConfig,
}

/// Outcome of sending one message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Delivery {
    /// Cycle the tail of the message arrives at its destination.
    pub arrival: Cycle,
    /// Flit-hops attributable to each data word carried (0 for local hops).
    pub per_word_hops: f64,
}

impl Net {
    fn new(noc: NocConfig) -> Self {
        Net {
            mesh: Mesh::new(noc.clone()),
            traffic: TrafficBreakdown::new(),
            noc,
        }
    }

    /// Sends a message, charging its control (and unfilled-data) flit-hops to
    /// the appropriate bucket. Data-word flit-hops are returned for the
    /// caller to attribute (to the waste profilers for responses, or directly
    /// to used/waste buckets for writebacks).
    pub(crate) fn send(
        &mut self,
        from: TileId,
        to: TileId,
        kind: MessageKind,
        data_words: usize,
        now: Cycle,
    ) -> Delivery {
        debug_assert!(
            data_words <= self.noc.max_data_words(),
            "oversized payload must be split by the caller"
        );
        let size = if data_words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&self.noc, data_words)
        };
        let hops = self.mesh.hops(from, to) as f64;
        let arrival = self.mesh.send(from, to, size, now);

        let class = kind.class();
        let ctl_bucket = match kind {
            MessageKind::L1Writeback
            | MessageKind::MemWriteback
            | MessageKind::WritebackAndRegister => TrafficBucket::WbControl,
            _ if class == MessageClass::Overhead => TrafficBucket::Overhead,
            _ if kind.is_request() => TrafficBucket::ReqCtl,
            _ => TrafficBucket::RespCtl,
        };
        // Control flit(s) plus the unfilled fraction of the last data flit.
        let ctl_hops = hops * (size.control_flits as f64 + size.unfilled_data_flits(&self.noc));
        self.traffic.add(class, ctl_bucket, ctl_hops);

        let per_word_hops = if data_words == 0 {
            0.0
        } else {
            hops / self.noc.words_per_flit() as f64
        };
        // Data carried by overhead messages (Bloom-filter copies) is charged
        // directly; nobody profiles those words.
        if class == MessageClass::Overhead && data_words > 0 {
            self.traffic
                .add(class, TrafficBucket::Overhead, per_word_hops * data_words as f64);
        }
        Delivery {
            arrival,
            per_word_hops,
        }
    }

    /// Total flit-hops so far.
    pub(crate) fn total_flit_hops(&self) -> f64 {
        self.mesh.total_flit_hops()
    }
}

/// Per-core execution status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    AtBarrier(u32),
    Done,
}

/// The simulator for one (protocol, workload) pair.
#[derive(Debug)]
pub struct Simulator<'wl> {
    cfg: SimConfig,
    workload: &'wl Workload,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) net: Net,
    pub(crate) l1_prof: Vec<CacheWasteProfiler>,
    pub(crate) l2_prof: CacheWasteProfiler,
    pub(crate) mem_prof: MemoryWasteProfiler,
    pub(crate) time: Vec<ExecutionBreakdown>,
    clocks: Vec<Cycle>,
    pc: Vec<usize>,
    state: Vec<CoreState>,
}

impl<'wl> Simulator<'wl> {
    /// Builds a simulator for one protocol configuration and workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload was generated for a different number of cores
    /// than the system has tiles, or if the system configuration is invalid.
    pub fn new(cfg: SimConfig, workload: &'wl Workload) -> Self {
        cfg.system.validate().expect("invalid system configuration");
        assert_eq!(
            workload.cores(),
            cfg.system.tiles(),
            "workload core count must match the machine"
        );
        let cores = cfg.system.tiles();
        Simulator {
            tiles: build_tiles(&cfg.system, cfg.protocol),
            net: Net::new(cfg.system.noc.clone()),
            l1_prof: (0..cores).map(|_| CacheWasteProfiler::new(CacheLevel::L1)).collect(),
            l2_prof: CacheWasteProfiler::new(CacheLevel::L2),
            mem_prof: MemoryWasteProfiler::new(),
            time: (0..cores).map(|_| ExecutionBreakdown::new()).collect(),
            clocks: vec![0; cores],
            pc: vec![0; cores],
            state: vec![CoreState::Running; cores],
            cfg,
            workload,
        }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    pub(crate) fn system(&self) -> &SystemConfig {
        &self.cfg.system
    }

    pub(crate) fn line_bytes(&self) -> u64 {
        self.cfg.system.cache.line_bytes
    }

    pub(crate) fn line_of(&self, addr: tw_types::Addr) -> LineAddr {
        LineAddr::containing(addr, self.line_bytes())
    }

    /// Runs the workload to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        loop {
            // Pick the runnable core with the smallest clock.
            let next = (0..self.clocks.len())
                .filter(|&c| self.state[c] == CoreState::Running)
                .min_by_key(|&c| self.clocks[c]);
            match next {
                Some(core) => self.step_core(core),
                None => {
                    // Everyone is either done or waiting at a barrier.
                    if self.state.iter().all(|s| *s == CoreState::Done) {
                        break;
                    }
                    self.release_barrier();
                }
            }
        }
        self.finish()
    }

    /// Executes one trace record of `core`.
    fn step_core(&mut self, core: usize) {
        let Some(op) = self.workload.traces[core].get(self.pc[core]).copied() else {
            self.state[core] = CoreState::Done;
            return;
        };
        match op {
            TraceOp::Compute { cycles } => {
                self.clocks[core] += cycles as Cycle;
                self.time[core].add(TimeClass::Compute, cycles as Cycle);
                self.pc[core] += 1;
            }
            TraceOp::Barrier { id } => {
                self.state[core] = CoreState::AtBarrier(id);
                // pc advances when the barrier releases.
            }
            TraceOp::Mem { kind, addr, region } => {
                let now = self.clocks[core];
                let done = match (self.cfg.protocol.is_mesi(), kind) {
                    (true, MemKind::Load) => self.mesi_load(core, addr, region, now),
                    (true, MemKind::Store) => self.mesi_store(core, addr, region, now),
                    (false, MemKind::Load) => self.denovo_load(core, addr, region, now),
                    (false, MemKind::Store) => self.denovo_store(core, addr, region, now),
                };
                debug_assert!(done >= now);
                self.clocks[core] = done;
                self.pc[core] += 1;
            }
        }
    }

    /// Releases the barrier every non-finished core is waiting at.
    fn release_barrier(&mut self) {
        let waiting: Vec<usize> = (0..self.state.len())
            .filter(|&c| matches!(self.state[c], CoreState::AtBarrier(_)))
            .collect();
        assert!(
            !waiting.is_empty(),
            "deadlock: no runnable core and no barrier to release"
        );
        let ids: Vec<u32> = waiting
            .iter()
            .map(|&c| match self.state[c] {
                CoreState::AtBarrier(id) => id,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "cores are waiting at different barriers: {ids:?}"
        );
        // Finished cores no longer participate; everyone still waiting
        // synchronizes to the latest arrival.
        let release = waiting.iter().map(|&c| self.clocks[c]).max().unwrap_or(0)
            + self.cfg.barrier_overhead;
        for &c in &waiting {
            let wait = release - self.clocks[c];
            self.time[c].add(TimeClass::Sync, wait);
            self.clocks[c] = release;
            self.pc[c] += 1;
            self.state[c] = CoreState::Running;
        }
        if self.cfg.protocol.is_denovo() {
            self.denovo_barrier_actions(release);
        }
    }

    /// Drains profilers and builds the final report.
    fn finish(mut self) -> SimReport {
        // Flush any still-pending DeNovo registrations so their traffic is
        // accounted (the paper's measurement period ends at a barrier, where
        // the write-combining table would have drained anyway).
        if self.cfg.protocol.is_denovo() {
            let release = *self.clocks.iter().max().unwrap_or(&0);
            self.denovo_barrier_actions(release);
        }

        let mut l1_waste = tw_profiler::WasteReport::new();
        for p in self.l1_prof {
            l1_waste.merge(&p.finish());
        }
        let l2_waste = self.l2_prof.finish();
        let mem_waste = self.mem_prof.finish();

        // Attribute the profiled response-data flit-hops to the traffic
        // breakdown now that every word has a final classification.
        let mut traffic = self.net.traffic.clone();
        for class in [MessageClass::Load, MessageClass::Store] {
            for (report, used_bucket, waste_bucket) in [
                (&l1_waste, TrafficBucket::RespL1Used, TrafficBucket::RespL1Waste),
                (&l2_waste, TrafficBucket::RespL2Used, TrafficBucket::RespL2Waste),
            ] {
                traffic.add(class, used_bucket, report.used_flit_hops(class));
                traffic.add(class, waste_bucket, report.wasted_flit_hops(class));
            }
        }

        let mut time = ExecutionBreakdown::new();
        for t in &self.time {
            time.merge(t);
        }
        let total_cycles = *self.clocks.iter().max().unwrap_or(&0);

        let (mut accesses, mut hits, mut total) = (0u64, 0u64, 0u64);
        for tile in &self.tiles {
            if let Some(mc) = &tile.mc {
                let s = mc.stats();
                accesses += s.reads + s.writes;
                hits += s.row_hits;
                total += s.row_hits + s.row_misses;
            }
        }

        SimReport {
            protocol: self.cfg.protocol,
            benchmark: self.workload.kind,
            input: self.workload.input.clone(),
            total_cycles,
            time,
            traffic,
            l1_waste,
            l2_waste,
            mem_waste,
            dram_accesses: accesses,
            dram_row_hit_rate: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
        }
    }

    // ---- shared helpers used by both protocol implementations -----------

    /// Home L2 slice of a line.
    pub(crate) fn home_of(&self, line: LineAddr) -> TileId {
        self.cfg.system.home_tile(line.byte())
    }

    /// Memory controller responsible for a line.
    pub(crate) fn mc_of(&self, line: LineAddr) -> TileId {
        self.cfg.system.mc_tile(line.byte())
    }

    /// Performs a DRAM access at controller `mc` and returns its completion
    /// cycle.
    pub(crate) fn dram_access(&mut self, mc: TileId, line: LineAddr, write: bool, at: Cycle) -> Cycle {
        self.tiles[mc.0]
            .mc
            .as_mut()
            .expect("tile has a memory controller")
            .access(line, write, at)
    }

    /// Whether the L1 of `core` currently holds readable data for `addr`.
    pub(crate) fn l1_word_present(&self, core: usize, addr: tw_types::Addr) -> bool {
        let line = LineAddr::containing(addr, self.cfg.system.cache.line_bytes);
        let w = addr.word_in_line(self.cfg.system.cache.line_bytes);
        match self.tiles[core].l1.peek(line) {
            Some(entry) => match &entry.meta {
                L1Meta::Mesi { state, .. } => state.can_read() && entry.valid.contains(w),
                L1Meta::Denovo(l) => l.word(w).can_read(),
            },
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_workloads::{build_tiny, BenchmarkKind};

    fn run(protocol: ProtocolKind, bench: BenchmarkKind) -> SimReport {
        let wl = build_tiny(bench, 16);
        Simulator::new(SimConfig::new(protocol), &wl).run()
    }

    #[test]
    fn mesi_runs_a_tiny_fft_to_completion() {
        let r = run(ProtocolKind::Mesi, BenchmarkKind::Fft);
        assert!(r.total_cycles > 0);
        assert!(r.traffic.total() > 0.0);
        assert!(r.l1_waste.total_words() > 0);
        assert!(r.mem_waste.total_words() > 0);
        assert!(r.dram_accesses > 0);
    }

    #[test]
    fn every_protocol_completes_every_tiny_benchmark() {
        for &p in &ProtocolKind::ALL {
            for &b in &BenchmarkKind::ALL {
                let r = run(p, b);
                assert!(r.total_cycles > 0, "{p} on {b} produced no time");
                assert!(r.traffic.total() > 0.0, "{p} on {b} produced no traffic");
            }
        }
    }

    #[test]
    fn denovo_generates_no_mesi_style_overhead_messages() {
        let mesi = run(ProtocolKind::Mesi, BenchmarkKind::Lu);
        let denovo = run(ProtocolKind::DeNovo, BenchmarkKind::Lu);
        let mesi_ovh = mesi.traffic.class_total(MessageClass::Overhead);
        let denovo_ovh = denovo.traffic.class_total(MessageClass::Overhead);
        assert!(
            denovo_ovh < mesi_ovh * 0.2,
            "DeNovo overhead {denovo_ovh} should be well below MESI's {mesi_ovh}"
        );
    }

    #[test]
    fn optimized_denovo_reduces_traffic_versus_mesi() {
        // At the miniature test scale (tiny inputs on the full Table 4.1
        // caches) some benchmarks fit almost entirely in cache, where MESI's
        // silent E→M upgrades can locally beat DeNovo's registration traffic
        // and the Bloom-copy overhead of DBypFull is not yet amortized. The
        // paper-scale per-benchmark shape is validated by the integration
        // tests and the experiments harness; here we check the aggregate over
        // all six benchmarks with every optimization short of request bypass.
        let (mut mesi_total, mut opt_total) = (0.0, 0.0);
        for &b in &BenchmarkKind::ALL {
            mesi_total += run(ProtocolKind::Mesi, b).total_flit_hops();
            opt_total += run(ProtocolKind::DBypL2, b).total_flit_hops();
        }
        assert!(
            opt_total < mesi_total,
            "DBypL2 ({opt_total}) should move fewer flit-hops than MESI ({mesi_total}) across the suite"
        );
    }

    #[test]
    fn bucketed_ledger_tracks_raw_mesh_flit_hops() {
        // The bucketed ledger attributes fractional flits; the mesh counts
        // whole flits. The two totals must agree to within a few percent.
        let wl = build_tiny(BenchmarkKind::Radix, 16);
        let sim = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &wl);
        assert_eq!(sim.protocol(), ProtocolKind::DBypFull);
        let raw_and_report = {
            let mut sim = sim;
            // Drive the run manually so the mesh total can be read before the
            // simulator is consumed by `finish`.
            let report = {
                let r = &mut sim;
                // run() consumes, so replicate by calling run on a fresh sim.
                let _ = r;
                Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &wl).run()
            };
            (sim.net.total_flit_hops(), report)
        };
        let (_raw_unused, report) = raw_and_report;
        assert!(report.traffic.total() > 0.0);
        let waste = report.traffic.waste_total();
        assert!(waste >= 0.0 && waste <= report.traffic.total());
    }

    #[test]
    fn mismatched_core_count_is_rejected() {
        let wl = build_tiny(BenchmarkKind::Fft, 4);
        let result = std::panic::catch_unwind(|| Simulator::new(SimConfig::new(ProtocolKind::Mesi), &wl));
        assert!(result.is_err());
    }

    #[test]
    fn barrier_sync_time_is_attributed() {
        // Barnes has a long sequential phase on core 0, so other cores must
        // accumulate Sync time waiting at the first barrier.
        let r = run(ProtocolKind::Mesi, BenchmarkKind::Barnes);
        assert!(r.time.get(TimeClass::Sync) > 0);
        assert!(r.time.get(TimeClass::Compute) > 0);
    }
}
