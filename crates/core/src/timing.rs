//! Execution-time attribution (Figure 5.2).

use std::collections::BTreeMap;
use std::fmt;
use tw_types::Cycle;

/// The execution-time components of Figure 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeClass {
    /// CPU busy time (non-memory instructions and L1 hits).
    Compute,
    /// Stall on hits in the L2 or a remote L1.
    OnChipHit,
    /// Time for a memory-bound request to reach the memory controller.
    ToMc,
    /// Time spent at the memory controller waiting for DRAM.
    Mem,
    /// Time from the memory controller back to the requesting L1.
    FromMc,
    /// Time stalled at barriers.
    Sync,
}

impl TimeClass {
    /// All components in the stacking order of Figure 5.2.
    pub const ALL: [TimeClass; 6] = [
        TimeClass::Compute,
        TimeClass::OnChipHit,
        TimeClass::FromMc,
        TimeClass::ToMc,
        TimeClass::Mem,
        TimeClass::Sync,
    ];

    /// Figure label.
    pub const fn label(self) -> &'static str {
        match self {
            TimeClass::Compute => "Compute",
            TimeClass::OnChipHit => "On-chip Hit",
            TimeClass::ToMc => "To MC",
            TimeClass::Mem => "Mem",
            TimeClass::FromMc => "From MC",
            TimeClass::Sync => "Sync",
        }
    }
}

impl fmt::Display for TimeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles attributed to each [`TimeClass`] (per core or aggregated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionBreakdown {
    cycles: BTreeMap<TimeClass, Cycle>,
}

impl ExecutionBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        ExecutionBreakdown::default()
    }

    /// Adds `cycles` to `class`.
    pub fn add(&mut self, class: TimeClass, cycles: Cycle) {
        if cycles > 0 {
            *self.cycles.entry(class).or_insert(0) += cycles;
        }
    }

    /// Cycles attributed to `class`.
    pub fn get(&self, class: TimeClass) -> Cycle {
        self.cycles.get(&class).copied().unwrap_or(0)
    }

    /// Total attributed cycles.
    pub fn total(&self) -> Cycle {
        self.cycles.values().sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &ExecutionBreakdown) {
        for (class, c) in &other.cycles {
            *self.cycles.entry(*class).or_insert(0) += c;
        }
    }

    /// Iterates over the raw `(class, cycles)` entries in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (TimeClass, Cycle)> + '_ {
        self.cycles.iter().map(|(c, n)| (*c, *n))
    }

    /// Rebuilds a breakdown from raw entries, inserted verbatim — the
    /// inverse of [`ExecutionBreakdown::iter`], used by the experiment
    /// result cache's report codec.
    pub fn from_entries(entries: impl IntoIterator<Item = (TimeClass, Cycle)>) -> Self {
        ExecutionBreakdown {
            cycles: entries.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 100);
        b.add(TimeClass::Mem, 50);
        b.add(TimeClass::Mem, 25);
        b.add(TimeClass::Sync, 0);
        assert_eq!(b.get(TimeClass::Compute), 100);
        assert_eq!(b.get(TimeClass::Mem), 75);
        assert_eq!(b.get(TimeClass::Sync), 0);
        assert_eq!(b.total(), 175);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = ExecutionBreakdown::new();
        a.add(TimeClass::Compute, 10);
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 5);
        b.add(TimeClass::OnChipHit, 7);
        a.merge(&b);
        assert_eq!(a.get(TimeClass::Compute), 15);
        assert_eq!(a.get(TimeClass::OnChipHit), 7);
    }

    #[test]
    fn raw_entries_round_trip_bit_exactly() {
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 42);
        b.add(TimeClass::Sync, 7);
        assert_eq!(ExecutionBreakdown::from_entries(b.iter()), b);
        assert_eq!(
            ExecutionBreakdown::from_entries(std::iter::empty()),
            ExecutionBreakdown::new()
        );
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(TimeClass::ALL.len(), 6);
        assert_eq!(TimeClass::OnChipHit.to_string(), "On-chip Hit");
        assert_eq!(TimeClass::FromMc.label(), "From MC");
    }
}
