//! Execution-time attribution (Figure 5.2).

use std::fmt;
use tw_types::Cycle;

/// The execution-time components of Figure 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeClass {
    /// CPU busy time (non-memory instructions and L1 hits).
    Compute,
    /// Stall on hits in the L2 or a remote L1.
    OnChipHit,
    /// Time for a memory-bound request to reach the memory controller.
    ToMc,
    /// Time spent at the memory controller waiting for DRAM.
    Mem,
    /// Time from the memory controller back to the requesting L1.
    FromMc,
    /// Time stalled at barriers.
    Sync,
}

impl TimeClass {
    /// All components in the stacking order of Figure 5.2.
    pub const ALL: [TimeClass; 6] = [
        TimeClass::Compute,
        TimeClass::OnChipHit,
        TimeClass::FromMc,
        TimeClass::ToMc,
        TimeClass::Mem,
        TimeClass::Sync,
    ];

    /// Dense index in declaration (= `Ord`) order, used by
    /// [`ExecutionBreakdown`]'s fixed-size storage.
    const fn idx(self) -> usize {
        match self {
            TimeClass::Compute => 0,
            TimeClass::OnChipHit => 1,
            TimeClass::ToMc => 2,
            TimeClass::Mem => 3,
            TimeClass::FromMc => 4,
            TimeClass::Sync => 5,
        }
    }

    /// The inverse of [`TimeClass::idx`].
    const ORD: [TimeClass; 6] = [
        TimeClass::Compute,
        TimeClass::OnChipHit,
        TimeClass::ToMc,
        TimeClass::Mem,
        TimeClass::FromMc,
        TimeClass::Sync,
    ];

    /// Figure label.
    pub const fn label(self) -> &'static str {
        match self {
            TimeClass::Compute => "Compute",
            TimeClass::OnChipHit => "On-chip Hit",
            TimeClass::ToMc => "To MC",
            TimeClass::Mem => "Mem",
            TimeClass::FromMc => "From MC",
            TimeClass::Sync => "Sync",
        }
    }
}

impl fmt::Display for TimeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles attributed to each [`TimeClass`] (per core or aggregated).
///
/// Stored as a dense array indexed by [`TimeClass::idx`] — this sits on the
/// per-op hot path (`add` runs for every simulated memory access), where the
/// previous `BTreeMap` lookup cost real time. Cycle counts are integers, so
/// the sums are exact regardless of accumulation order; `iter` emits only
/// non-zero entries in `Ord` order, exactly as the map-based version did, so
/// the result-cache codec bytes are unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionBreakdown {
    cycles: [Cycle; 6],
}

impl ExecutionBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        ExecutionBreakdown::default()
    }

    /// Adds `cycles` to `class`.
    #[inline]
    pub fn add(&mut self, class: TimeClass, cycles: Cycle) {
        self.cycles[class.idx()] += cycles;
    }

    /// Cycles attributed to `class`.
    pub fn get(&self, class: TimeClass) -> Cycle {
        self.cycles[class.idx()]
    }

    /// Total attributed cycles.
    pub fn total(&self) -> Cycle {
        self.cycles.iter().sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &ExecutionBreakdown) {
        for (slot, c) in self.cycles.iter_mut().zip(other.cycles) {
            *slot += c;
        }
    }

    /// Iterates over the non-zero `(class, cycles)` entries in a stable
    /// (`Ord`) order.
    pub fn iter(&self) -> impl Iterator<Item = (TimeClass, Cycle)> + '_ {
        TimeClass::ORD
            .into_iter()
            .zip(self.cycles)
            .filter(|&(_, n)| n > 0)
    }

    /// Rebuilds a breakdown from raw entries — the inverse of
    /// [`ExecutionBreakdown::iter`], used by the experiment result cache's
    /// report codec.
    pub fn from_entries(entries: impl IntoIterator<Item = (TimeClass, Cycle)>) -> Self {
        let mut b = ExecutionBreakdown::new();
        for (class, c) in entries {
            b.cycles[class.idx()] += c;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 100);
        b.add(TimeClass::Mem, 50);
        b.add(TimeClass::Mem, 25);
        b.add(TimeClass::Sync, 0);
        assert_eq!(b.get(TimeClass::Compute), 100);
        assert_eq!(b.get(TimeClass::Mem), 75);
        assert_eq!(b.get(TimeClass::Sync), 0);
        assert_eq!(b.total(), 175);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = ExecutionBreakdown::new();
        a.add(TimeClass::Compute, 10);
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 5);
        b.add(TimeClass::OnChipHit, 7);
        a.merge(&b);
        assert_eq!(a.get(TimeClass::Compute), 15);
        assert_eq!(a.get(TimeClass::OnChipHit), 7);
    }

    #[test]
    fn raw_entries_round_trip_bit_exactly() {
        let mut b = ExecutionBreakdown::new();
        b.add(TimeClass::Compute, 42);
        b.add(TimeClass::Sync, 7);
        assert_eq!(ExecutionBreakdown::from_entries(b.iter()), b);
        assert_eq!(
            ExecutionBreakdown::from_entries(std::iter::empty()),
            ExecutionBreakdown::new()
        );
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(TimeClass::ALL.len(), 6);
        assert_eq!(TimeClass::OnChipHit.to_string(), "On-chip Hit");
        assert_eq!(TimeClass::FromMc.label(), "From MC");
    }
}
