//! Plain-text figure/table rendering.

use std::fmt;

/// A labeled table of numeric series — the in-memory form of one paper figure
/// or table, renderable as aligned text or CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Title ("Figure 5.1a: Overall network traffic ...").
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: a label plus one value per data column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        FigureTable {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the data columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len().saturating_sub(1),
            "row width must match the column headers"
        );
        self.rows.push((label.into(), values));
    }

    /// Looks up a value by row label and column header.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().skip(1).position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .and_then(|(_, values)| values.get(col).copied())
    }

    /// Renders the table as comma-separated values.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.columns[0].len()))
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .skip(1)
            .map(|c| c.len())
            .max()
            .unwrap_or(10)
            .max(10);
        write!(f, "{:label_w$}", self.columns[0])?;
        for c in self.columns.iter().skip(1) {
            write!(f, " {c:>col_w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                write!(f, " {v:>col_w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        let mut t = FigureTable::new(
            "Figure X",
            vec!["protocol".into(), "LD".into(), "ST".into()],
        );
        t.push_row("MESI", vec![1.0, 0.5]);
        t.push_row("DBypFull", vec![0.6, 0.25]);
        t
    }

    #[test]
    fn value_lookup() {
        let t = sample();
        assert_eq!(t.value("MESI", "LD"), Some(1.0));
        assert_eq!(t.value("DBypFull", "ST"), Some(0.25));
        assert_eq!(t.value("DBypFull", "WB"), None);
        assert_eq!(t.value("nope", "LD"), None);
    }

    #[test]
    fn csv_and_display_render_all_rows() {
        let t = sample();
        let csv = t.to_csv();
        assert!(csv.starts_with("protocol,LD,ST\n"));
        assert!(csv.contains("DBypFull,0.6000,0.2500"));
        let text = t.to_string();
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("MESI"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }
}
