//! Plain-text figure/table rendering.

use std::collections::HashMap;
use std::fmt;

/// A labeled table of numeric series — the in-memory form of one paper figure
/// or table, renderable as aligned text or CSV.
///
/// The table is append-only through [`FigureTable::push_row`]; the columns
/// are fixed at construction. Both row labels and column headers are indexed
/// on insertion, so [`FigureTable::value`] is an O(1) lookup rather than a
/// rescan of the table.
#[derive(Debug, Clone)]
pub struct FigureTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    /// Data-column header → index into each row's value vector.
    col_index: HashMap<String, usize>,
    /// Row label → index into `rows` (first occurrence wins).
    row_index: HashMap<String, usize>,
}

/// Equality is over the visible content (title, columns, rows); the lookup
/// indices are derived state.
impl PartialEq for FigureTable {
    fn eq(&self, other: &Self) -> bool {
        self.title == other.title && self.columns == other.columns && self.rows == other.rows
    }
}

impl FigureTable {
    /// Creates an empty table with the given title and column headers. The
    /// first column header labels the row-name column; the rest label data
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty (every table has at least the row-label
    /// column).
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        assert!(
            !columns.is_empty(),
            "a figure table needs at least the row-label column"
        );
        let col_index = columns
            .iter()
            .skip(1)
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        FigureTable {
            title: title.into(),
            columns,
            rows: Vec::new(),
            col_index,
            row_index: HashMap::new(),
        }
    }

    /// Convenience constructor: the row-label column plus data columns taken
    /// from an iterator of labels (the shape every figure extractor builds).
    pub fn with_series(
        title: impl Into<String>,
        row_label: impl Into<String>,
        series: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut columns = vec![row_label.into()];
        columns.extend(series);
        FigureTable::new(title, columns)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// All column headers (first is the row-label column).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the data columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.columns.len() - 1,
            "row width must match the column headers"
        );
        self.row_index
            .entry(label.clone())
            .or_insert(self.rows.len());
        self.rows.push((label, values));
    }

    /// Looks up a value by row label and column header in O(1).
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let row = *self.row_index.get(row)?;
        let col = *self.col_index.get(column)?;
        self.rows[row].1.get(col).copied()
    }

    /// Renders the table as comma-separated values.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.columns[0].len()))
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .skip(1)
            .map(|c| c.len())
            .max()
            .unwrap_or(10)
            .max(10);
        write!(f, "{:label_w$}", self.columns[0])?;
        for c in self.columns.iter().skip(1) {
            write!(f, " {c:>col_w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                write!(f, " {v:>col_w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        let mut t = FigureTable::new(
            "Figure X",
            vec!["protocol".into(), "LD".into(), "ST".into()],
        );
        t.push_row("MESI", vec![1.0, 0.5]);
        t.push_row("DBypFull", vec![0.6, 0.25]);
        t
    }

    #[test]
    fn value_lookup() {
        let t = sample();
        assert_eq!(t.value("MESI", "LD"), Some(1.0));
        assert_eq!(t.value("DBypFull", "ST"), Some(0.25));
        assert_eq!(t.value("DBypFull", "WB"), None);
        assert_eq!(t.value("nope", "LD"), None);
    }

    #[test]
    fn duplicate_row_labels_resolve_to_the_first() {
        let mut t = sample();
        t.push_row("MESI", vec![9.0, 9.0]);
        assert_eq!(t.value("MESI", "LD"), Some(1.0));
        assert_eq!(t.rows().len(), 3);
    }

    #[test]
    fn with_series_builds_the_standard_shape() {
        let t = FigureTable::with_series(
            "Figure Y",
            "bench/protocol",
            ["A".to_string(), "B".to_string()],
        );
        assert_eq!(t.columns(), ["bench/protocol", "A", "B"]);
        assert_eq!(t.title(), "Figure Y");
    }

    #[test]
    fn equality_ignores_derived_indices() {
        assert_eq!(sample(), sample());
        let mut other = sample();
        other.push_row("extra", vec![0.0, 0.0]);
        assert_ne!(sample(), other);
    }

    #[test]
    fn csv_and_display_render_all_rows() {
        let t = sample();
        let csv = t.to_csv();
        assert!(csv.starts_with("protocol,LD,ST\n"));
        assert!(csv.contains("DBypFull,0.6000,0.2500"));
        let text = t.to_string();
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("MESI"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }
}
