//! Per-tile hardware state.

use tw_bloom::{BloomBank, BloomConfig};
use tw_dram::MemoryController;
use tw_mem::{CacheArray, CacheGeometry, WriteCombineTable};
use tw_protocols::{
    DenovoL1Line, DenovoL2Line, DirectoryEntry, DragonDirectory, DragonState, MesiState,
};
use tw_types::{ProtocolKind, RegionId, SystemConfig, TileId};

/// Metadata an L1 line carries, depending on the protocol family.
#[derive(Debug, Clone)]
pub enum L1Meta {
    /// MESI: line state plus the region of the data (regions are only used
    /// for reporting under MESI).
    Mesi {
        /// MESI stable state.
        state: MesiState,
        /// Software region of the line.
        region: RegionId,
    },
    /// DeNovo: per-word states plus the region (drives self-invalidation).
    Denovo(DenovoL1Line),
    /// Dragon: write-update line state plus the region (reporting only, as
    /// under MESI).
    Dragon {
        /// Dragon stable state.
        state: DragonState,
        /// Software region of the line.
        region: RegionId,
    },
}

impl L1Meta {
    /// The software region the line belongs to.
    pub fn region(&self) -> RegionId {
        match self {
            L1Meta::Mesi { region, .. } => *region,
            L1Meta::Denovo(l) => l.region,
            L1Meta::Dragon { region, .. } => *region,
        }
    }
}

/// Metadata an L2 line carries, depending on the protocol family.
// A cache array holds one variant uniformly for the whole run (the protocol
// never changes mid-simulation), so the DeNovo per-word table dominating the
// enum size costs nothing in practice; boxing it would add a pointer chase to
// the hottest lookup path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum L2Meta {
    /// MESI: the directory entry for the (inclusive) line.
    Mesi(DirectoryEntry),
    /// DeNovo: per-word ownership (registration) state.
    Denovo(DenovoL2Line),
    /// Dragon: sharer set and dirty owner for the (inclusive) line.
    Dragon(DragonDirectory),
}

/// One tile: private L1, L2 slice, and (on corner tiles) a memory controller.
#[derive(Debug)]
pub struct Tile {
    /// Tile identifier.
    pub id: TileId,
    /// Private L1 data cache.
    pub l1: CacheArray<L1Meta>,
    /// This tile's slice of the shared L2.
    pub l2: CacheArray<L2Meta>,
    /// The DeNovo write-combining / non-blocking-write table of this core.
    pub write_combine: WriteCombineTable,
    /// Counting Bloom filters summarizing this L2 slice's dirty lines
    /// (only consulted by `DBypFull`).
    pub l2_bloom: BloomBank,
    /// This core's shadow copies of every slice's Bloom filters, indexed by
    /// slice tile id (only consulted by `DBypFull`).
    pub l1_bloom: Vec<BloomBank>,
    /// Memory controller, on corner tiles.
    pub mc: Option<MemoryController>,
}

/// Builds the full set of tiles for a system configuration and protocol.
pub fn build_tiles(cfg: &SystemConfig, protocol: ProtocolKind) -> Vec<Tile> {
    let _ = protocol;
    let l1_geom = CacheGeometry::new(cfg.cache.l1_bytes, cfg.cache.l1_ways, cfg.cache.line_bytes);
    let l2_geom = CacheGeometry::new(
        cfg.cache.l2_slice_bytes,
        cfg.cache.l2_ways,
        cfg.cache.line_bytes,
    );
    let bloom_cfg = BloomConfig::default();
    let mc_tiles = cfg.memory_controller_tiles();
    (0..cfg.tiles())
        .map(|t| {
            let id = TileId(t);
            Tile {
                id,
                l1: CacheArray::new(l1_geom),
                l2: CacheArray::new(l2_geom),
                write_combine: WriteCombineTable::new(
                    cfg.cache.write_table_entries,
                    cfg.cache.write_combine_timeout,
                    cfg.cache.words_per_line(),
                ),
                l2_bloom: BloomBank::counting(bloom_cfg),
                l1_bloom: (0..cfg.tiles())
                    .map(|_| BloomBank::plain(bloom_cfg))
                    .collect(),
                mc: if mc_tiles.contains(&id) {
                    Some(MemoryController::new(cfg.dram.clone()))
                } else {
                    None
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_match_table_4_1_geometry() {
        let cfg = SystemConfig::default();
        let tiles = build_tiles(&cfg, ProtocolKind::Mesi);
        assert_eq!(tiles.len(), 16);
        assert_eq!(tiles[0].l1.geometry().lines(), 512); // 32 KB / 64 B
        assert_eq!(tiles[0].l2.geometry().lines(), 4096); // 256 KB / 64 B
        let with_mc = tiles.iter().filter(|t| t.mc.is_some()).count();
        assert_eq!(with_mc, 4, "memory controllers on the four corners");
        assert!(tiles[0].mc.is_some());
        assert!(tiles[1].mc.is_none());
        assert_eq!(tiles[5].l1_bloom.len(), 16);
    }

    #[test]
    fn l1_meta_region_accessor() {
        let m = L1Meta::Mesi {
            state: MesiState::Shared,
            region: RegionId(7),
        };
        assert_eq!(m.region(), RegionId(7));
        let d = L1Meta::Denovo(DenovoL1Line::new(RegionId(3)));
        assert_eq!(d.region(), RegionId(3));
        let g = L1Meta::Dragon {
            state: DragonState::SharedClean,
            region: RegionId(5),
        };
        assert_eq!(g.region(), RegionId(5));
    }
}
