//! Plan outcomes and figure-data extraction.
//!
//! [`PlanOutcome`] holds the reports of one executed plan, keyed by cell
//! identity (row × protocol), and extracts every table and figure of the
//! paper's evaluation section. Figures normalize each row's bars to the
//! plan's [`Baseline`] run of the same row — MESI by default, exactly as the
//! paper does — and a zero-valued baseline yields `0.0` rows rather than
//! NaN/inf, so figure output is always finite and JSON-serializable.
//!
//! [`RunOutcome`] is the benchmark-keyed facade the original matrix API
//! exposed; it delegates everything to an inner [`PlanOutcome`].

use super::plan::{Baseline, ExperimentError, RowKey};
use super::session::CacheStats;
use super::ScaleProfile;
use crate::figures::FigureTable;
use crate::report::SimReport;
use crate::timing::TimeClass;
use std::collections::BTreeMap;
use tw_profiler::WasteCategory;
use tw_types::{MessageClass, ProtocolKind, SystemConfig, TrafficBucket};
use tw_workloads::BenchmarkKind;

/// Normalizes `value` to `base`, yielding `0.0` for an empty baseline
/// instead of NaN/inf (a zero-traffic baseline cell must produce all-zero
/// figure rows).
fn norm(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        value / base
    }
}

/// Headline cross-benchmark averages (abstract / §5.1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineSummary {
    /// Mean traffic of DBypFull relative to MESI (paper: ≈ 0.605).
    pub dbypfull_traffic_vs_mesi: f64,
    /// Mean traffic of DBypFull relative to MMemL1 (paper: ≈ 0.648).
    pub dbypfull_traffic_vs_mmeml1: f64,
    /// Mean traffic of DBypFull relative to DFlexL1 (paper: ≈ 0.811).
    pub dbypfull_traffic_vs_dflexl1: f64,
    /// Mean traffic of baseline DeNovo relative to MESI (paper: ≈ 0.861).
    pub denovo_traffic_vs_mesi: f64,
    /// Mean execution time of DBypFull relative to MESI (paper: ≈ 0.895).
    pub dbypfull_time_vs_mesi: f64,
    /// Mean execution time of MMemL1 relative to MESI (paper: ≈ 0.962).
    pub mmeml1_time_vs_mesi: f64,
    /// Mean fraction of DBypFull's data traffic classified as waste
    /// (paper: ≈ 0.088).
    pub dbypfull_waste_fraction: f64,
    /// Mean fraction of MESI traffic that is protocol overhead (paper: ≈ 0.136).
    pub mesi_overhead_fraction: f64,
}

/// The collected reports of one executed plan plus figure extraction.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The plan's name.
    pub name: String,
    /// Protocols, in figure order.
    pub protocols: Vec<ProtocolKind>,
    /// What figures normalize to.
    pub baseline: Baseline,
    /// Figure rows `(identity, display label)`, in plan order.
    pub rows: Vec<(RowKey, String)>,
    /// Resolved system configuration per variant label.
    pub variants: Vec<(String, SystemConfig)>,
    /// One report per cell.
    pub reports: BTreeMap<(RowKey, ProtocolKind), SimReport>,
    /// Result-cache counters for this execution: disk hits, simulated
    /// misses, and duplicate-key cells coalesced by the session's
    /// single-flight table.
    pub cache: CacheStats,
}

impl PlanOutcome {
    /// Number of cells executed.
    pub fn cells(&self) -> usize {
        self.reports.len()
    }

    /// The report for one cell.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::MissingCell`] if the plan had no such cell.
    pub fn report(
        &self,
        row: &RowKey,
        protocol: ProtocolKind,
    ) -> Result<&SimReport, ExperimentError> {
        self.reports
            .get(&(row.clone(), protocol))
            .ok_or_else(|| ExperimentError::MissingCell {
                row: format!("{}@{}", row.workload, row.variant),
                protocol,
            })
    }

    fn baseline_report(&self, row: &RowKey) -> Result<&SimReport, ExperimentError> {
        self.report(row, self.baseline.protocol())
    }

    fn row_label(&self, label: &str, protocol: ProtocolKind) -> String {
        format!("{label}/{protocol}")
    }

    /// Arithmetic mean over rows of `f(report, baseline)`, matching the
    /// paper's "average of X%" statements.
    fn mean_over_rows<F: Fn(&SimReport, &SimReport) -> f64>(
        &self,
        protocol: ProtocolKind,
        f: F,
    ) -> Result<f64, ExperimentError> {
        if !self.protocols.contains(&protocol) {
            return Err(ExperimentError::MissingProtocol(protocol));
        }
        let mut sum = 0.0;
        for (row, _) in &self.rows {
            sum += f(self.report(row, protocol)?, self.baseline_report(row)?);
        }
        Ok(sum / self.rows.len().max(1) as f64)
    }

    /// Table 4.1: simulated system parameters, one block per variant.
    pub fn table_4_1(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 4.1: Simulated system parameters",
            vec!["Component".into(), "Value".into()],
        );
        let multi = self.variants.len() > 1;
        for (label, sys) in &self.variants {
            for (component, value) in sys.table_rows() {
                let row = if multi {
                    format!("[{label}] {component}: {value}")
                } else {
                    format!("{component}: {value}")
                };
                t.push_row(row, vec![0.0]);
            }
        }
        t
    }

    /// Table 4.2: application input sizes (paper input and the one actually
    /// simulated).
    pub fn table_4_2(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 4.2: Application input sizes (paper input -> simulated input)",
            vec!["Application".into(), "Value".into()],
        );
        for (row, label) in &self.rows {
            let Some(report) = self
                .reports
                .iter()
                .find(|((r, _), _)| r == row)
                .map(|(_, r)| r)
            else {
                continue;
            };
            t.push_row(
                format!(
                    "{label}: {} -> {}",
                    report.benchmark.paper_input(),
                    report.input
                ),
                vec![0.0],
            );
        }
        t
    }

    /// Figure 5.1a: overall network traffic normalized to the baseline,
    /// stacked by LD/ST/WB/Overhead.
    pub fn fig_5_1a(&self) -> Result<FigureTable, ExperimentError> {
        let mut t = FigureTable::new(
            "Figure 5.1a: Overall network traffic (flit-hops, normalized to MESI)",
            vec![
                "bench/protocol".into(),
                "LD".into(),
                "ST".into(),
                "WB".into(),
                "Overhead".into(),
                "Total".into(),
            ],
        );
        for (row, label) in &self.rows {
            let base = self.baseline_report(row)?.traffic.total();
            for &p in &self.protocols {
                let r = self.report(row, p)?;
                let v = |c: MessageClass| norm(r.traffic.class_total(c), base);
                t.push_row(
                    self.row_label(label, p),
                    vec![
                        v(MessageClass::Load),
                        v(MessageClass::Store),
                        v(MessageClass::Writeback),
                        v(MessageClass::Overhead),
                        norm(r.traffic.total(), base),
                    ],
                );
            }
        }
        Ok(t)
    }

    fn request_response_figure(
        &self,
        title: &str,
        class: MessageClass,
    ) -> Result<FigureTable, ExperimentError> {
        let buckets = TrafficBucket::REQUEST_RESPONSE;
        let mut t = FigureTable::with_series(
            title,
            "bench/protocol",
            buckets.iter().map(|b| b.label().to_string()),
        );
        for (row, label) in &self.rows {
            let base = self.baseline_report(row)?.traffic.class_total(class);
            for &p in &self.protocols {
                let r = self.report(row, p)?;
                let values = buckets
                    .iter()
                    .map(|bucket| norm(r.traffic.get(class, *bucket), base))
                    .collect();
                t.push_row(self.row_label(label, p), values);
            }
        }
        Ok(t)
    }

    /// Figure 5.1b: load-traffic breakdown normalized to the baseline's load
    /// traffic.
    pub fn fig_5_1b(&self) -> Result<FigureTable, ExperimentError> {
        self.request_response_figure(
            "Figure 5.1b: LD network traffic breakdown (normalized to MESI LD traffic)",
            MessageClass::Load,
        )
    }

    /// Figure 5.1c: store-traffic breakdown normalized to the baseline's
    /// store traffic.
    pub fn fig_5_1c(&self) -> Result<FigureTable, ExperimentError> {
        self.request_response_figure(
            "Figure 5.1c: ST network traffic breakdown (normalized to MESI ST traffic)",
            MessageClass::Store,
        )
    }

    /// Figure 5.1d: writeback-traffic breakdown normalized to the baseline's
    /// writeback traffic.
    pub fn fig_5_1d(&self) -> Result<FigureTable, ExperimentError> {
        let buckets = TrafficBucket::WRITEBACK;
        let mut t = FigureTable::with_series(
            "Figure 5.1d: WB network traffic breakdown (normalized to MESI WB traffic)",
            "bench/protocol",
            buckets.iter().map(|b| b.label().to_string()),
        );
        for (row, label) in &self.rows {
            let base = self
                .baseline_report(row)?
                .traffic
                .class_total(MessageClass::Writeback);
            for &p in &self.protocols {
                let r = self.report(row, p)?;
                let values = buckets
                    .iter()
                    .map(|bucket| norm(r.traffic.get(MessageClass::Writeback, *bucket), base))
                    .collect();
                t.push_row(self.row_label(label, p), values);
            }
        }
        Ok(t)
    }

    /// Figure 5.2: execution time normalized to the baseline, stacked by
    /// component.
    pub fn fig_5_2(&self) -> Result<FigureTable, ExperimentError> {
        let mut columns = vec!["bench/protocol".into()];
        columns.extend(TimeClass::ALL.iter().map(|c| c.label().to_string()));
        columns.push("Total".into());
        let mut t = FigureTable::new("Figure 5.2: Execution time (normalized to MESI)", columns);
        for (row, label) in &self.rows {
            let base = self.baseline_report(row)?.time.total() as f64;
            for &p in &self.protocols {
                let r = self.report(row, p)?;
                let mut values: Vec<f64> = TimeClass::ALL
                    .iter()
                    .map(|c| norm(r.time.get(*c) as f64, base))
                    .collect();
                values.push(norm(r.time.total() as f64, base));
                t.push_row(self.row_label(label, p), values);
            }
        }
        Ok(t)
    }

    fn waste_figure<F: Fn(&SimReport) -> &tw_profiler::WasteReport>(
        &self,
        title: &str,
        select: F,
    ) -> Result<FigureTable, ExperimentError> {
        // Update waste is structurally zero under every invalidation protocol,
        // so the column only appears when some cell in the matrix actually
        // produced it (i.e. Dragon is present). The paper's 9-protocol matrix
        // keeps the figure layout the paper uses.
        let mut update_seen = false;
        for (row, _) in &self.rows {
            for &p in &self.protocols {
                if select(self.report(row, p)?).words(WasteCategory::Update) > 0 {
                    update_seen = true;
                }
            }
        }
        let cats: Vec<WasteCategory> = WasteCategory::ALL
            .into_iter()
            .filter(|c| update_seen || *c != WasteCategory::Update)
            .collect();
        let mut t = FigureTable::with_series(
            title,
            "bench/protocol",
            cats.iter().map(|c| c.label().to_string()),
        );
        for (row, label) in &self.rows {
            let base = select(self.baseline_report(row)?).total_words() as f64;
            for &p in &self.protocols {
                let r = select(self.report(row, p)?);
                let values = cats
                    .iter()
                    .map(|c| norm(r.words(*c) as f64, base))
                    .collect();
                t.push_row(self.row_label(label, p), values);
            }
        }
        Ok(t)
    }

    /// Figure 5.3a: words fetched into the L1s by waste category.
    pub fn fig_5_3a(&self) -> Result<FigureTable, ExperimentError> {
        self.waste_figure(
            "Figure 5.3a: L1 fetch waste (words fetched into L1, normalized to MESI)",
            |r| &r.l1_waste,
        )
    }

    /// Figure 5.3b: words fetched into the L2 by waste category.
    pub fn fig_5_3b(&self) -> Result<FigureTable, ExperimentError> {
        self.waste_figure(
            "Figure 5.3b: L2 fetch waste (words fetched into L2, normalized to MESI)",
            |r| &r.l2_waste,
        )
    }

    /// Figure 5.3c: words fetched from memory by waste category.
    pub fn fig_5_3c(&self) -> Result<FigureTable, ExperimentError> {
        self.waste_figure(
            "Figure 5.3c: Memory fetch waste (words fetched from memory, normalized to MESI)",
            |r| &r.mem_waste,
        )
    }

    /// The headline cross-benchmark averages quoted in the abstract and §5.1.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::MissingProtocol`] if the plan did not sweep every
    /// protocol the headline quotes (MESI, MMemL1, DeNovo, DFlexL1,
    /// DBypFull), or [`ExperimentError::MissingCell`] if a quoted cell is
    /// absent.
    pub fn headline(&self) -> Result<HeadlineSummary, ExperimentError> {
        let rel_traffic = |p: ProtocolKind, q: ProtocolKind| -> Result<f64, ExperimentError> {
            if !self.protocols.contains(&q) {
                return Err(ExperimentError::MissingProtocol(q));
            }
            let mut sum = 0.0;
            for (row, _) in &self.rows {
                sum += norm(
                    self.report(row, p)?.total_flit_hops(),
                    self.report(row, q)?.total_flit_hops(),
                );
            }
            Ok(sum / self.rows.len().max(1) as f64)
        };
        let rel_time = |p: ProtocolKind, q: ProtocolKind| -> Result<f64, ExperimentError> {
            let mut sum = 0.0;
            for (row, _) in &self.rows {
                sum += norm(
                    self.report(row, p)?.total_cycles as f64,
                    self.report(row, q)?.total_cycles as f64,
                );
            }
            Ok(sum / self.rows.len().max(1) as f64)
        };
        Ok(HeadlineSummary {
            dbypfull_traffic_vs_mesi: rel_traffic(ProtocolKind::DBypFull, ProtocolKind::Mesi)?,
            dbypfull_traffic_vs_mmeml1: rel_traffic(ProtocolKind::DBypFull, ProtocolKind::MMemL1)?,
            dbypfull_traffic_vs_dflexl1: rel_traffic(
                ProtocolKind::DBypFull,
                ProtocolKind::DFlexL1,
            )?,
            denovo_traffic_vs_mesi: rel_traffic(ProtocolKind::DeNovo, ProtocolKind::Mesi)?,
            dbypfull_time_vs_mesi: rel_time(ProtocolKind::DBypFull, ProtocolKind::Mesi)?,
            mmeml1_time_vs_mesi: rel_time(ProtocolKind::MMemL1, ProtocolKind::Mesi)?,
            dbypfull_waste_fraction: self
                .mean_over_rows(ProtocolKind::DBypFull, |r, _| r.waste_traffic_fraction())?,
            mesi_overhead_fraction: self.mean_over_rows(ProtocolKind::Mesi, |r, _| {
                norm(
                    r.traffic.class_total(MessageClass::Overhead),
                    r.traffic.total(),
                )
            })?,
        })
    }

    /// Every figure of the evaluation section, in order.
    pub fn all_figures(&self) -> Result<Vec<FigureTable>, ExperimentError> {
        Ok(vec![
            self.table_4_1(),
            self.table_4_2(),
            self.fig_5_1a()?,
            self.fig_5_1b()?,
            self.fig_5_1c()?,
            self.fig_5_1d()?,
            self.fig_5_2()?,
            self.fig_5_3a()?,
            self.fig_5_3b()?,
            self.fig_5_3c()?,
        ])
    }
}

/// The benchmark-keyed facade over a [`PlanOutcome`] — the shape the
/// original `ExperimentMatrix` API exposed. Rows are benchmarks, so it only
/// represents single-variant plans whose workloads all carry distinct
/// [`BenchmarkKind`]s.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    inner: PlanOutcome,
    /// Protocols, in figure order.
    pub protocols: Vec<ProtocolKind>,
    /// Benchmarks, in figure order.
    pub benchmarks: Vec<BenchmarkKind>,
    bench_rows: BTreeMap<BenchmarkKind, RowKey>,
}

impl RunOutcome {
    /// Wraps a plan outcome, deriving the benchmark axis from each row's
    /// reports.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::DuplicateWorkload`] if two rows carry the same
    /// [`BenchmarkKind`] — such plans are fine as [`PlanOutcome`]s but have
    /// no faithful benchmark-keyed view.
    pub fn from_plan(inner: PlanOutcome) -> Result<Self, ExperimentError> {
        let mut benchmarks = Vec::new();
        let mut bench_rows = BTreeMap::new();
        for (row, _) in &inner.rows {
            let Some(report) = inner
                .reports
                .iter()
                .find(|((r, _), _)| r == row)
                .map(|(_, r)| r)
            else {
                continue;
            };
            let kind = report.benchmark;
            if bench_rows.insert(kind, row.clone()).is_some() {
                return Err(ExperimentError::DuplicateWorkload(kind.to_string()));
            }
            benchmarks.push(kind);
        }
        Ok(RunOutcome {
            protocols: inner.protocols.clone(),
            benchmarks,
            bench_rows,
            inner,
        })
    }

    /// The underlying plan outcome (cell-identity view, cache statistics).
    pub fn plan(&self) -> &PlanOutcome {
        &self.inner
    }

    /// Number of cells executed.
    pub fn cells(&self) -> usize {
        self.inner.cells()
    }

    /// The report for one (benchmark, protocol) pair.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::MissingCell`] if the pair was not part of the
    /// matrix.
    pub fn report(
        &self,
        bench: BenchmarkKind,
        protocol: ProtocolKind,
    ) -> Result<&SimReport, ExperimentError> {
        let row = self
            .bench_rows
            .get(&bench)
            .ok_or_else(|| ExperimentError::MissingCell {
                row: bench.to_string(),
                protocol,
            })?;
        self.inner.report(row, protocol)
    }

    /// Table 4.1 (see [`PlanOutcome::table_4_1`]). The scale argument is
    /// retained for call-site compatibility; the variant systems recorded in
    /// the plan are what is rendered.
    pub fn table_4_1(&self, _scale: ScaleProfile) -> FigureTable {
        self.inner.table_4_1()
    }

    /// Table 4.2 (see [`PlanOutcome::table_4_2`]).
    pub fn table_4_2(&self) -> FigureTable {
        self.inner.table_4_2()
    }

    /// Figure 5.1a (see [`PlanOutcome::fig_5_1a`]).
    pub fn fig_5_1a(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_1a()
    }

    /// Figure 5.1b (see [`PlanOutcome::fig_5_1b`]).
    pub fn fig_5_1b(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_1b()
    }

    /// Figure 5.1c (see [`PlanOutcome::fig_5_1c`]).
    pub fn fig_5_1c(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_1c()
    }

    /// Figure 5.1d (see [`PlanOutcome::fig_5_1d`]).
    pub fn fig_5_1d(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_1d()
    }

    /// Figure 5.2 (see [`PlanOutcome::fig_5_2`]).
    pub fn fig_5_2(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_2()
    }

    /// Figure 5.3a (see [`PlanOutcome::fig_5_3a`]).
    pub fn fig_5_3a(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_3a()
    }

    /// Figure 5.3b (see [`PlanOutcome::fig_5_3b`]).
    pub fn fig_5_3b(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_3b()
    }

    /// Figure 5.3c (see [`PlanOutcome::fig_5_3c`]).
    pub fn fig_5_3c(&self) -> Result<FigureTable, ExperimentError> {
        self.inner.fig_5_3c()
    }

    /// The headline cross-benchmark averages (see
    /// [`PlanOutcome::headline`]).
    pub fn headline(&self) -> Result<HeadlineSummary, ExperimentError> {
        self.inner.headline()
    }

    /// Every figure of the evaluation section, in order.
    pub fn all_figures(&self, _scale: ScaleProfile) -> Result<Vec<FigureTable>, ExperimentError> {
        self.inner.all_figures()
    }
}
