//! Plan execution through a content-addressed result cache.
//!
//! A [`Session`] turns a compiled plan into a [`PlanOutcome`]. Cells fan out
//! on the rayon pool exactly like the old matrix runner; the difference is
//! the cache in front of the simulator. The cache key of a cell digests
//! **everything that determines its `SimReport`**:
//!
//! * the workload's canonical trace bytes (via its content digest),
//! * the fully-resolved [`SystemConfig`] (every result-affecting field),
//! * the protocol,
//! * the barrier overhead of the run configuration, and
//! * [`ENGINE_VERSION`] — bumped whenever simulation semantics change, which
//!   retires every stale entry at once.
//!
//! Entries are one JSON file per key under the cache directory (see
//! `codec.rs` for the bit-exact report encoding). A corrupt, truncated or
//! mismatched entry is treated as a miss and recomputed/overwritten, so the
//! cache can never poison a run — at worst it fails to speed one up.

use super::codec;
use super::json::Json;
use super::outcome::PlanOutcome;
use super::plan::{CompiledPlan, ExperimentError, ExperimentSpec, PlannedCell, WorkloadSet};
use crate::report::SimReport;
use crate::sim::{SimConfig, Simulator};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tw_obs::{Span, SpanSink};
use tw_types::{Cycle, Digest, Digester, ProtocolKind, SystemConfig};

/// Version stamp of the simulation engine, folded into every cache key.
///
/// Bump this whenever a change alters any simulated number — protocol
/// behavior, timing model, traffic accounting, workload generators feeding
/// digested traces, the trace binary format, or the report codec. The cache
/// then misses on every old entry instead of serving stale results. The
/// suffix tracks the PR history: v3 is the engine as of the plan/session
/// redesign.
pub const ENGINE_VERSION: &str = "denovo-waste/engine-v3";

/// Cache hit/miss counters for one executed plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the on-disk cache.
    pub hits: u64,
    /// Cells simulated (and, when a cache directory is configured, stored).
    pub misses: u64,
    /// Cells served from the in-process single-flight table instead of
    /// simulating: the cell's key was already being (or had already been)
    /// computed by this session, so the duplicate shared the leader's report
    /// rather than paying a second simulation.
    pub coalesced: u64,
}

impl CacheStats {
    /// Total cells executed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of cells served without running a simulation — from the
    /// on-disk cache or the single-flight table (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.total() as f64
        }
    }

    /// Folds another stats record into this one (the daemon aggregates
    /// per-request stats into service totals this way).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
    }
}

/// Computes the content-addressed cache key for one cell.
///
/// Exposed so tests can prove key sensitivity to every component; everything
/// else should go through [`Session`].
pub fn cache_key(
    trace_digest: Digest,
    system: &SystemConfig,
    protocol: ProtocolKind,
    barrier_overhead: Cycle,
    engine_version: &str,
) -> Digest {
    let mut d = Digester::new();
    d.write_str(engine_version);
    d.write_str(protocol.name());
    d.write_u64(barrier_overhead);
    system.digest_fields(&mut d);
    // The trace digest already covers regions, streams and metadata.
    d.write_u64((trace_digest.0 >> 64) as u64);
    d.write_u64(trace_digest.0 as u64);
    d.finish()
}

/// How one cell's report was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellSource {
    /// Loaded from the on-disk cache.
    DiskHit,
    /// Simulated by this call (the single-flight leader).
    Simulated,
    /// Shared from the single-flight table without simulating.
    Coalesced,
}

/// State shared by every clone of a [`Session`]: the in-process
/// single-flight table and the once-per-session temp-file sweep marker.
#[derive(Debug, Default)]
struct SessionState {
    /// One slot per cache key currently being (or already) computed by this
    /// session. Duplicate-key cells — two same-content workloads in one
    /// plan, or two concurrent daemon requests — wait on the leader's slot
    /// instead of simulating again. Completed slots are retained, so the
    /// table doubles as an in-memory result cache for cache-less sessions;
    /// sessions are per-plan in CLI use and deliberately long-lived (and
    /// memory-resident) in the daemon.
    inflight: Mutex<BTreeMap<Digest, Arc<OnceLock<SimReport>>>>,
    /// Whether this session already swept stray temp files from its cache
    /// directory (done once, on first execute).
    swept: AtomicBool,
}

/// Executes experiment plans, optionally through a persistent result cache.
///
/// Clones share one single-flight table, so a session handed to several
/// threads (the daemon's worker pool) never simulates the same cache key
/// twice concurrently.
#[derive(Debug, Clone, Default)]
pub struct Session {
    cache_dir: Option<PathBuf>,
    barrier_overhead: Cycle,
    /// Observer-lane flight recording: when set, every cell emits a span on
    /// the `<label>/<protocol>` track and hands the simulator a sink on the
    /// same track for its phase/run spans. Never read back — recording on
    /// or off, every simulated number is identical.
    recorder: Option<SpanSink>,
    state: Arc<SessionState>,
}

impl Session {
    /// A session with no cache: every cell simulates.
    pub fn new() -> Self {
        Session {
            cache_dir: None,
            barrier_overhead: SimConfig::new(ProtocolKind::Mesi).barrier_overhead,
            recorder: None,
            state: Arc::default(),
        }
    }

    /// Routes this session through a cache directory (created on first
    /// use). Re-running a plan whose cells are cached is near-instant, and
    /// editing one protocol only recomputes that protocol's column.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The cache directory, if one is configured.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// Arms flight recording on this session (and the simulators it runs).
    pub fn with_recorder(mut self, sink: SpanSink) -> Self {
        self.recorder = Some(sink);
        self
    }

    /// Compiles and executes a spec in one step.
    pub fn run(
        &self,
        spec: &ExperimentSpec,
        provided: &WorkloadSet,
    ) -> Result<PlanOutcome, ExperimentError> {
        self.execute(&spec.compile(provided)?)
    }

    /// Executes a compiled plan.
    pub fn execute(&self, plan: &CompiledPlan) -> Result<PlanOutcome, ExperimentError> {
        if let Some(dir) = &self.cache_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                ExperimentError::Io(format!(
                    "cannot create cache directory {}: {e}",
                    dir.display()
                ))
            })?;
            // First execute of this session: sweep temp files orphaned by a
            // crashed writer. The age threshold keeps a *live* concurrent
            // writer's temp file safe (no store takes minutes, let alone
            // this long).
            if !self.state.swept.swap(true, Ordering::Relaxed) {
                let _ = sweep_temp_files(dir, TEMP_SWEEP_AGE);
            }
        }
        let results: Vec<Result<(SimReport, CellSource), ExperimentError>> = plan
            .cells
            .par_iter()
            .map(|cell| self.run_cell(cell))
            .collect();

        let mut reports = BTreeMap::new();
        let mut cache = CacheStats::default();
        for (cell, result) in plan.cells.iter().zip(results) {
            let (report, source) = result?;
            match source {
                CellSource::DiskHit => cache.hits += 1,
                CellSource::Simulated => cache.misses += 1,
                CellSource::Coalesced => cache.coalesced += 1,
            }
            reports.insert((cell.row.clone(), cell.protocol), report);
        }
        Ok(PlanOutcome {
            name: plan.name.clone(),
            protocols: plan.protocols.clone(),
            baseline: plan.baseline,
            rows: plan.rows.clone(),
            variants: plan.variants.clone(),
            reports,
            cache,
        })
    }

    /// The cache key of one planned cell under this session's run
    /// configuration.
    pub fn key_of(&self, cell: &PlannedCell) -> Digest {
        cache_key(
            cell.workload_ref.digest,
            &cell.system,
            cell.protocol,
            self.barrier_overhead,
            ENGINE_VERSION,
        )
    }

    fn run_cell(&self, cell: &PlannedCell) -> Result<(SimReport, CellSource), ExperimentError> {
        // Timers exist only when a live recorder is attached, so the
        // unrecorded path pays one Option probe per cell, nothing per op.
        let sink = self
            .recorder
            .as_ref()
            .filter(|s| s.enabled())
            .map(|s| s.with_track(format!("{}/{}", cell.label, cell.protocol.name())));
        let key = self.key_of(cell);
        let path = self
            .cache_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")));
        let mut probe_us = 0u64;
        if let Some(path) = &path {
            let t = sink.as_ref().map(|_| Instant::now());
            let probe = probe_entry(path, key);
            probe_us = t.map_or(0, |t| t.elapsed().as_micros() as u64);
            match probe {
                DiskProbe::Hit(report) => {
                    emit_cell_span(&sink, "disk_hit", probe_us, 0, 0);
                    return Ok((*report, CellSource::DiskHit));
                }
                DiskProbe::Absent => {}
                DiskProbe::Corrupt => {
                    // The entry exists but cannot be trusted (garbled,
                    // truncated, wrong engine/key). A *retained* completed
                    // flight would shadow it forever and the bad bytes would
                    // never be repaired; drop it so this cell re-simulates
                    // and overwrites the entry. A flight still in progress
                    // is left alone — its leader overwrites on store anyway.
                    let mut inflight = self.state.inflight.lock().expect("inflight lock");
                    if inflight.get(&key).is_some_and(|f| f.get().is_some()) {
                        inflight.remove(&key);
                    }
                }
            }
        }
        // Single-flight: exactly one caller per key simulates; everyone else
        // who arrives while (or after) that leader runs shares its report.
        let flight = {
            let mut inflight = self.state.inflight.lock().expect("inflight lock");
            Arc::clone(inflight.entry(key).or_default())
        };
        let mut leader = false;
        let mut sim_us = 0u64;
        let report = flight
            .get_or_init(|| {
                leader = true;
                let t = sink.as_ref().map(|_| Instant::now());
                let report = self.simulate(cell, sink.as_ref());
                sim_us = t.map_or(0, |t| t.elapsed().as_micros() as u64);
                report
            })
            .clone();
        if leader {
            let t = sink.as_ref().map(|_| Instant::now());
            if let Some(path) = &path {
                store_entry(path, key, cell, &report)?;
            }
            let store_us = t.map_or(0, |t| t.elapsed().as_micros() as u64);
            emit_cell_span(&sink, "simulated", probe_us, sim_us, store_us);
            Ok((report, CellSource::Simulated))
        } else {
            emit_cell_span(&sink, "coalesced", probe_us, 0, 0);
            Ok((report, CellSource::Coalesced))
        }
    }

    fn simulate(&self, cell: &PlannedCell, sink: Option<&SpanSink>) -> SimReport {
        let mut cfg = SimConfig::new(cell.protocol).with_system(cell.system.clone());
        cfg.barrier_overhead = self.barrier_overhead;
        cfg.recorder = sink.cloned();
        Simulator::new(cfg, &cell.workload).run()
    }
}

/// Emits one per-cell span: the coalesce outcome in the deterministic
/// payload, every wall-clock measurement quarantined in `timing`.
fn emit_cell_span(
    sink: &Option<SpanSink>,
    outcome: &str,
    probe_us: u64,
    sim_us: u64,
    store_us: u64,
) {
    if let Some(sink) = sink {
        sink.emit(
            Span::event("cell")
                .attr("outcome", outcome)
                .timing_us("probe_us", probe_us)
                .timing_us("sim_us", sim_us)
                .timing_us("store_us", store_us),
        );
    }
}

/// Outcome of probing the on-disk cache for one key.
enum DiskProbe {
    /// A valid entry decoded for this key (boxed: a report is large and
    /// the other variants are unit-sized).
    Hit(Box<SimReport>),
    /// No entry file exists — the ordinary cold-cache miss.
    Absent,
    /// Something *is* at the entry path but it cannot be trusted:
    /// unreadable, garbled, truncated, or carrying the wrong engine
    /// version or key. Both are misses, but corruption additionally
    /// invalidates any retained single-flight result so the entry gets
    /// recomputed and overwritten instead of shadowed from memory.
    Corrupt,
}

/// Probes a cache entry; never errors — every failure mode maps to
/// [`DiskProbe::Absent`] or [`DiskProbe::Corrupt`].
fn probe_entry(path: &std::path::Path, key: Digest) -> DiskProbe {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskProbe::Absent,
        Err(_) => return DiskProbe::Corrupt,
    };
    let valid = || -> Option<SimReport> {
        let doc = Json::parse(&text).ok()?;
        if doc.get("engine")?.as_str().ok()? != ENGINE_VERSION {
            return None;
        }
        if doc.get("key")?.as_str().ok()? != key.to_string() {
            return None;
        }
        codec::report_from_json(doc.get("report")?).ok()
    };
    match valid() {
        Some(report) => DiskProbe::Hit(Box::new(report)),
        None => DiskProbe::Corrupt,
    }
}

/// Persists one entry atomically (write to a sibling temp file, then
/// rename), so a crashed or concurrent run can never leave a torn entry.
fn store_entry(
    path: &std::path::Path,
    key: Digest,
    cell: &PlannedCell,
    report: &SimReport,
) -> Result<(), ExperimentError> {
    let doc = Json::Obj(vec![
        ("engine".to_string(), Json::str(ENGINE_VERSION)),
        ("key".to_string(), Json::str(key.to_string())),
        (
            "workload".to_string(),
            Json::str(cell.workload_ref.to_string()),
        ),
        ("protocol".to_string(), Json::str(cell.protocol.name())),
        ("report".to_string(), codec::report_to_json(report)),
    ]);
    // Two cells can legitimately share a key (same content under two
    // names), and two processes can share a cache directory; the cell
    // identity plus the process id keep every writer on its own temp file.
    let mut nonce = Digester::new();
    nonce.write_str(&cell.label);
    nonce.write_str(cell.protocol.name());
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        nonce.finish().short()
    ));
    // A failed write or rename must not strand the temp file: a long-running
    // daemon would slowly fill its cache directory with orphans. The sweep
    // in `Session::execute` (and at daemon startup) is the second line of
    // defense, for writers that crash between the two calls.
    if let Err(e) = std::fs::write(&tmp, doc.pretty()) {
        let _ = std::fs::remove_file(&tmp);
        return Err(ExperimentError::Io(format!(
            "cannot write {}: {e}",
            tmp.display()
        )));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(ExperimentError::Io(format!(
            "cannot commit {}: {e}",
            path.display()
        )));
    }
    Ok(())
}

/// Minimum age before the automatic sweeps consider a temp file orphaned.
/// Stores take milliseconds; a concurrent writer's live temp file is never
/// anywhere near this old.
pub const TEMP_SWEEP_AGE: Duration = Duration::from_secs(15 * 60);

/// Removes stray `*.tmp-<pid>-<nonce>` files older than `older_than` from a
/// cache directory, returning how many were removed.
///
/// These are the intermediate files of `store_entry`'s write-then-rename
/// commit; one survives only if a writer crashed between the two syscalls
/// (the error paths clean up after themselves). Sessions sweep their
/// directory once on first execute and the daemon sweeps at startup, both
/// with [`TEMP_SWEEP_AGE`]; tests pass [`Duration::ZERO`] to sweep
/// unconditionally. A missing directory is not an error (0 removed).
///
/// # Errors
///
/// Any I/O error listing the directory. Per-file removal failures are
/// ignored (another sweeper may have won the race).
pub fn sweep_temp_files(dir: &std::path::Path, older_than: Duration) -> std::io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let now = std::time::SystemTime::now();
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_temp = std::path::Path::new(name)
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.starts_with("tmp-"));
        if !is_temp {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age >= older_than);
        if old_enough && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_is_sensitive_to_every_component() {
        let sys = SystemConfig::default();
        let digest = Digest::of_bytes(b"trace");
        let base = cache_key(digest, &sys, ProtocolKind::Mesi, 100, ENGINE_VERSION);
        assert_eq!(
            base,
            cache_key(digest, &sys, ProtocolKind::Mesi, 100, ENGINE_VERSION)
        );
        // Trace bytes.
        assert_ne!(
            base,
            cache_key(
                Digest::of_bytes(b"tracf"),
                &sys,
                ProtocolKind::Mesi,
                100,
                ENGINE_VERSION
            )
        );
        // Protocol.
        assert_ne!(
            base,
            cache_key(digest, &sys, ProtocolKind::DeNovo, 100, ENGINE_VERSION)
        );
        // System geometry.
        let mut other = sys.clone();
        other.cache.l2_slice_bytes = 128 * 1024;
        assert_ne!(
            base,
            cache_key(digest, &other, ProtocolKind::Mesi, 100, ENGINE_VERSION)
        );
        // Run configuration.
        assert_ne!(
            base,
            cache_key(digest, &sys, ProtocolKind::Mesi, 101, ENGINE_VERSION)
        );
        // Engine version.
        assert_ne!(
            base,
            cache_key(
                digest,
                &sys,
                ProtocolKind::Mesi,
                100,
                "denovo-waste/engine-v2"
            )
        );
    }

    #[test]
    fn cache_stats_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            coalesced: 0,
        };
        assert_eq!(s.total(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Coalesced cells count as served-without-simulating.
        let c = CacheStats {
            hits: 1,
            misses: 2,
            coalesced: 1,
        };
        assert_eq!(c.total(), 4);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        let mut sum = s;
        sum.absorb(&c);
        assert_eq!(
            sum,
            CacheStats {
                hits: 4,
                misses: 3,
                coalesced: 1,
            }
        );
    }
}
