//! Plan execution through a content-addressed result cache.
//!
//! A [`Session`] turns a compiled plan into a [`PlanOutcome`]. Cells fan out
//! on the rayon pool exactly like the old matrix runner; the difference is
//! the cache in front of the simulator. The cache key of a cell digests
//! **everything that determines its `SimReport`**:
//!
//! * the workload's canonical trace bytes (via its content digest),
//! * the fully-resolved [`SystemConfig`] (every result-affecting field),
//! * the protocol,
//! * the barrier overhead of the run configuration, and
//! * [`ENGINE_VERSION`] — bumped whenever simulation semantics change, which
//!   retires every stale entry at once.
//!
//! Entries are one JSON file per key under the cache directory (see
//! `codec.rs` for the bit-exact report encoding). A corrupt, truncated or
//! mismatched entry is treated as a miss and recomputed/overwritten, so the
//! cache can never poison a run — at worst it fails to speed one up.

use super::codec;
use super::json::Json;
use super::outcome::PlanOutcome;
use super::plan::{CompiledPlan, ExperimentError, ExperimentSpec, PlannedCell, WorkloadSet};
use crate::report::SimReport;
use crate::sim::{SimConfig, Simulator};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use tw_types::{Cycle, Digest, Digester, ProtocolKind, SystemConfig};

/// Version stamp of the simulation engine, folded into every cache key.
///
/// Bump this whenever a change alters any simulated number — protocol
/// behavior, timing model, traffic accounting, workload generators feeding
/// digested traces, the trace binary format, or the report codec. The cache
/// then misses on every old entry instead of serving stale results. The
/// suffix tracks the PR history: v3 is the engine as of the plan/session
/// redesign.
pub const ENGINE_VERSION: &str = "denovo-waste/engine-v3";

/// Cache hit/miss counters for one executed plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the cache.
    pub hits: u64,
    /// Cells simulated (and, when a cache directory is configured, stored).
    pub misses: u64,
}

impl CacheStats {
    /// Total cells executed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of cells served from the cache (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Computes the content-addressed cache key for one cell.
///
/// Exposed so tests can prove key sensitivity to every component; everything
/// else should go through [`Session`].
pub fn cache_key(
    trace_digest: Digest,
    system: &SystemConfig,
    protocol: ProtocolKind,
    barrier_overhead: Cycle,
    engine_version: &str,
) -> Digest {
    let mut d = Digester::new();
    d.write_str(engine_version);
    d.write_str(protocol.name());
    d.write_u64(barrier_overhead);
    system.digest_fields(&mut d);
    // The trace digest already covers regions, streams and metadata.
    d.write_u64((trace_digest.0 >> 64) as u64);
    d.write_u64(trace_digest.0 as u64);
    d.finish()
}

/// Executes experiment plans, optionally through a persistent result cache.
#[derive(Debug, Clone, Default)]
pub struct Session {
    cache_dir: Option<PathBuf>,
    barrier_overhead: Cycle,
}

impl Session {
    /// A session with no cache: every cell simulates.
    pub fn new() -> Self {
        Session {
            cache_dir: None,
            barrier_overhead: SimConfig::new(ProtocolKind::Mesi).barrier_overhead,
        }
    }

    /// Routes this session through a cache directory (created on first
    /// use). Re-running a plan whose cells are cached is near-instant, and
    /// editing one protocol only recomputes that protocol's column.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The cache directory, if one is configured.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// Compiles and executes a spec in one step.
    pub fn run(
        &self,
        spec: &ExperimentSpec,
        provided: &WorkloadSet,
    ) -> Result<PlanOutcome, ExperimentError> {
        self.execute(&spec.compile(provided)?)
    }

    /// Executes a compiled plan.
    pub fn execute(&self, plan: &CompiledPlan) -> Result<PlanOutcome, ExperimentError> {
        if let Some(dir) = &self.cache_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                ExperimentError::Io(format!(
                    "cannot create cache directory {}: {e}",
                    dir.display()
                ))
            })?;
        }
        let results: Vec<Result<(SimReport, bool), ExperimentError>> = plan
            .cells
            .par_iter()
            .map(|cell| self.run_cell(cell))
            .collect();

        let mut reports = BTreeMap::new();
        let mut cache = CacheStats::default();
        for (cell, result) in plan.cells.iter().zip(results) {
            let (report, hit) = result?;
            if hit {
                cache.hits += 1;
            } else {
                cache.misses += 1;
            }
            reports.insert((cell.row.clone(), cell.protocol), report);
        }
        Ok(PlanOutcome {
            name: plan.name.clone(),
            protocols: plan.protocols.clone(),
            baseline: plan.baseline,
            rows: plan.rows.clone(),
            variants: plan.variants.clone(),
            reports,
            cache,
        })
    }

    /// The cache key of one planned cell under this session's run
    /// configuration.
    pub fn key_of(&self, cell: &PlannedCell) -> Digest {
        cache_key(
            cell.workload_ref.digest,
            &cell.system,
            cell.protocol,
            self.barrier_overhead,
            ENGINE_VERSION,
        )
    }

    fn run_cell(&self, cell: &PlannedCell) -> Result<(SimReport, bool), ExperimentError> {
        let key = self.key_of(cell);
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(format!("{key}.json"));
            if let Some(report) = load_entry(&path, key) {
                return Ok((report, true));
            }
            let report = self.simulate(cell);
            store_entry(&path, key, cell, &report)?;
            return Ok((report, false));
        }
        Ok((self.simulate(cell), false))
    }

    fn simulate(&self, cell: &PlannedCell) -> SimReport {
        let mut cfg = SimConfig::new(cell.protocol).with_system(cell.system.clone());
        cfg.barrier_overhead = self.barrier_overhead;
        Simulator::new(cfg, &cell.workload).run()
    }
}

/// Loads a cache entry, returning `None` (a miss) on any problem: absent
/// file, unreadable bytes, wrong schema/engine/key, or a decode failure.
fn load_entry(path: &std::path::Path, key: Digest) -> Option<SimReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("engine")?.as_str().ok()? != ENGINE_VERSION {
        return None;
    }
    if doc.get("key")?.as_str().ok()? != key.to_string() {
        return None;
    }
    codec::report_from_json(doc.get("report")?).ok()
}

/// Persists one entry atomically (write to a sibling temp file, then
/// rename), so a crashed or concurrent run can never leave a torn entry.
fn store_entry(
    path: &std::path::Path,
    key: Digest,
    cell: &PlannedCell,
    report: &SimReport,
) -> Result<(), ExperimentError> {
    let doc = Json::Obj(vec![
        ("engine".to_string(), Json::str(ENGINE_VERSION)),
        ("key".to_string(), Json::str(key.to_string())),
        (
            "workload".to_string(),
            Json::str(cell.workload_ref.to_string()),
        ),
        ("protocol".to_string(), Json::str(cell.protocol.name())),
        ("report".to_string(), codec::report_to_json(report)),
    ]);
    // Two cells can legitimately share a key (same content under two
    // names), and two processes can share a cache directory; the cell
    // identity plus the process id keep every writer on its own temp file.
    let mut nonce = Digester::new();
    nonce.write_str(&cell.label);
    nonce.write_str(cell.protocol.name());
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        nonce.finish().short()
    ));
    std::fs::write(&tmp, doc.pretty())
        .map_err(|e| ExperimentError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ExperimentError::Io(format!("cannot commit {}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_is_sensitive_to_every_component() {
        let sys = SystemConfig::default();
        let digest = Digest::of_bytes(b"trace");
        let base = cache_key(digest, &sys, ProtocolKind::Mesi, 100, ENGINE_VERSION);
        assert_eq!(
            base,
            cache_key(digest, &sys, ProtocolKind::Mesi, 100, ENGINE_VERSION)
        );
        // Trace bytes.
        assert_ne!(
            base,
            cache_key(
                Digest::of_bytes(b"tracf"),
                &sys,
                ProtocolKind::Mesi,
                100,
                ENGINE_VERSION
            )
        );
        // Protocol.
        assert_ne!(
            base,
            cache_key(digest, &sys, ProtocolKind::DeNovo, 100, ENGINE_VERSION)
        );
        // System geometry.
        let mut other = sys.clone();
        other.cache.l2_slice_bytes = 128 * 1024;
        assert_ne!(
            base,
            cache_key(digest, &other, ProtocolKind::Mesi, 100, ENGINE_VERSION)
        );
        // Run configuration.
        assert_ne!(
            base,
            cache_key(digest, &sys, ProtocolKind::Mesi, 101, ENGINE_VERSION)
        );
        // Engine version.
        assert_ne!(
            base,
            cache_key(
                digest,
                &sys,
                ProtocolKind::Mesi,
                100,
                "denovo-waste/engine-v2"
            )
        );
    }

    #[test]
    fn cache_stats_arithmetic() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.total(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
