//! A minimal JSON value model shared by the experiment-spec codec, the
//! result-cache report codec, and the daemon wire protocol.
//!
//! The workspace is offline (no serde), so the experiment layer carries its
//! own parser. It deliberately supports only the subset the codecs emit:
//! strings, **unsigned integers**, arrays and objects. There are no floats —
//! `f64` round-tripping through decimal JSON is lossy, and the result cache
//! must be bit-exact, so floating-point fields are stored as 16-hex-digit
//! IEEE-754 bit patterns in strings (see `codec.rs`); the daemon's wire
//! headers render rates as fixed-precision decimal strings for the same
//! reason. Booleans/null/negative numbers are rejected with an error naming
//! the offending construct.
//!
//! The type is public because the experiments daemon (`tw-bench`) frames its
//! wire protocol with exactly these documents: one compact header line per
//! request/response (see [`Json::compact`]), optionally followed by an
//! opaque byte body.

use std::fmt::Write as _;

/// A parsed JSON value (strings, unsigned ints, arrays, ordered objects).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An unsigned integer (the only number form supported).
    UInt(u64),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys rejected at parse time.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Names the kind actually found when the value is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {}", other.kind())),
        }
    }

    /// The value as an unsigned integer.
    ///
    /// # Errors
    ///
    /// Names the kind actually found when the value is not an integer.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::UInt(v) => Ok(*v),
            other => Err(format!("expected an integer, found {}", other.kind())),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Names the kind actually found when the value is not an array.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected an array, found {}", other.kind())),
        }
    }

    /// The value as an object's field list.
    ///
    /// # Errors
    ///
    /// Names the kind actually found when the value is not an object.
    pub fn as_obj(&self) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("expected an object, found {}", other.kind())),
        }
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// Names the missing key.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Str(_) => "a string",
            Json::UInt(_) => "an integer",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }

    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Any structural problem, with the offending byte offset or construct
    /// named.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent, stable
    /// field order — the emitted bytes are deterministic).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as a single line with no decorative whitespace —
    /// the framing used by the daemon wire protocol, where every header is
    /// exactly one LF-terminated line. The output contains no raw newline
    /// bytes (string newlines are escaped), so `read_line` framing is safe.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.emit_compact(&mut out);
        out
    }

    fn emit_compact(&self, out: &mut String) {
        match self {
            Json::Str(s) => emit_str(s, out),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_str(k, out);
                    out.push(':');
                    v.emit_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn emit(&self, out: &mut String, depth: usize) {
        match self {
            Json::Str(s) => emit_str(s, out),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render inline; arrays of containers
                // render one element per line.
                let scalar = items
                    .iter()
                    .all(|i| matches!(i, Json::Str(_) | Json::UInt(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if scalar {
                        if i > 0 {
                            out.push(' ');
                        }
                    } else {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    item.emit(out, depth + 1);
                }
                if !scalar {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    emit_str(k, out);
                    out.push_str(": ");
                    v.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {}",
                b as char,
                self.pos,
                self.peek()
                    .map(|c| format!("`{}`", c as char))
                    .unwrap_or_else(|| "end of input".to_string())
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.uint(),
            Some(b't') | Some(b'f') | Some(b'n') => Err(format!(
                "booleans and null are not part of this schema (byte {})",
                self.pos
            )),
            Some(b'-') => Err(format!(
                "negative numbers are not part of this schema (byte {})",
                self.pos
            )),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn uint(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "floats are not part of this schema (byte {}); encode f64 fields as bit-pattern strings",
                self.pos
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|e| format!("integer `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // The codecs only escape control characters; no
                            // surrogate-pair support needed or provided.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_emit_round_trip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("l2 \"sweep\"\n")),
            ("count".into(), Json::UInt(u64::MAX)),
            (
                "items".into(),
                Json::Arr(vec![Json::UInt(1), Json::str("two")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("nested".into(), Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // u64::MAX survives exactly (the usual JSON-as-f64 trap).
        assert!(text.contains("18446744073709551615"));
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let doc = Json::Obj(vec![
            ("op".into(), Json::str("submit")),
            ("note".into(), Json::str("line\nbreak")),
            ("body_bytes".into(), Json::UInt(42)),
            (
                "tags".into(),
                Json::Arr(vec![Json::str("a"), Json::UInt(7)]),
            ),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact form must be newline-free");
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(
            line,
            r#"{"op":"submit","note":"line\nbreak","body_bytes":42,"tags":["a",7]}"#
        );
    }

    #[test]
    fn human_written_whitespace_is_accepted() {
        let doc = Json::parse(
            r#"
            { "a" : [ 1 , 2 ] ,
              "b" : { "c" : "d" } }
            "#,
        )
        .unwrap();
        assert_eq!(doc.require("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            doc.require("b").unwrap().require("c").unwrap().as_str(),
            Ok("d")
        );
    }

    #[test]
    fn unsupported_constructs_are_named() {
        for (input, needle) in [
            ("1.5", "floats"),
            ("true", "booleans"),
            ("-3", "negative"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
            ("[1", "expected"),
            ("\"ab", "unterminated"),
            ("{}, 1", "trailing"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.contains(needle), "`{input}` -> {err}");
        }
    }

    #[test]
    fn accessor_errors_name_the_found_kind() {
        let v = Json::parse("[1]").unwrap();
        assert!(v.as_str().unwrap_err().contains("array"));
        assert!(v.as_obj().unwrap_err().contains("array"));
        assert!(Json::UInt(3).as_arr().unwrap_err().contains("integer"));
        assert!(Json::str("x").require("k").is_err());
        assert!(Json::str("x").get("k").is_none());
    }
}
