//! The experiment layer: declarative plans, cached sessions, outcomes.
//!
//! The layer is split along its lifecycle (see `DESIGN.md` §10):
//!
//! * [`plan`] — the declarative, JSON-round-trippable [`ExperimentSpec`]
//!   (sweep axes: protocols × workloads × system variants), compiled into
//!   cells with stable identity ([`WorkloadRef`] = name + content digest);
//! * [`session`] — [`Session`] executes compiled plans through an optional
//!   content-addressed result cache keyed by everything that determines a
//!   report (trace bytes, system, protocol, engine version);
//! * [`outcome`] — [`PlanOutcome`] extracts the paper's tables and figures,
//!   normalized to an explicit [`Baseline`] (MESI by default).
//!
//! [`ExperimentMatrix`] and [`RunOutcome`] are thin facades preserving the
//! original benchmark-keyed API: `ExperimentMatrix::full(scale).run()` still
//! works (now returning `Result` instead of panicking) and is sugar for a
//! built-in spec run through an uncached session.

mod codec;
pub mod json;
pub mod outcome;
pub mod plan;
pub mod session;

pub use json::Json;
pub use outcome::{HeadlineSummary, PlanOutcome, RunOutcome};
pub use plan::{
    Baseline, CompiledPlan, ExperimentError, ExperimentSpec, PlannedCell, RowKey, SystemVariant,
    WorkloadRef, WorkloadSet, WorkloadSource, WorkloadSpec, SPEC_SCHEMA,
};
pub use session::{
    cache_key, sweep_temp_files, CacheStats, Session, ENGINE_VERSION, TEMP_SWEEP_AGE,
};

use tw_types::SystemConfig;
use tw_workloads::{build_scaled, build_tiny, BenchmarkKind, Workload};

/// Which input scale to run (see DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProfile {
    /// The paper's input sizes on the Table 4.1 system. Slow; intended for
    /// full reproduction runs.
    Paper,
    /// Scaled-down inputs with the L2 shrunk proportionally so every
    /// working-set-to-cache relationship of the paper is preserved. This is
    /// the default for `EXPERIMENTS.md`.
    Scaled,
    /// Miniature inputs for tests and Criterion benches.
    Tiny,
}

impl ScaleProfile {
    /// The spec-grammar name of this profile (lowercase).
    pub const fn name(self) -> &'static str {
        match self {
            ScaleProfile::Paper => "paper",
            ScaleProfile::Scaled => "scaled",
            ScaleProfile::Tiny => "tiny",
        }
    }

    /// Resolves a profile from its spec-grammar name (case-insensitive).
    pub fn by_name(name: &str) -> Result<ScaleProfile, String> {
        [
            ScaleProfile::Paper,
            ScaleProfile::Scaled,
            ScaleProfile::Tiny,
        ]
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown scale `{name}`; expected paper | scaled | tiny"))
    }

    /// The system configuration this profile simulates.
    pub fn system(self) -> SystemConfig {
        let mut sys = SystemConfig::default();
        match self {
            ScaleProfile::Paper => {}
            ScaleProfile::Scaled => {
                // 64 KB slices (1 MB total): keeps "working set >> L2" true
                // for fluidanimate/FFT/radix/kD-tree and "working set << L2"
                // true for LU/Barnes at the scaled input sizes.
                sys.cache.l2_slice_bytes = 64 * 1024;
            }
            ScaleProfile::Tiny => {
                sys.cache.l1_bytes = 16 * 1024;
                sys.cache.l2_slice_bytes = 32 * 1024;
            }
        }
        sys
    }

    /// Builds the workload for one benchmark at this scale. The trace-only
    /// kinds (`Custom`, `Synthesized`) have no fixed-input generator and are
    /// reported as an error — feed those through a plan's `provided`
    /// workloads (or the [`ExperimentMatrix::run_on`] facade) instead.
    pub fn try_workload(self, bench: BenchmarkKind, cores: usize) -> Result<Workload, String> {
        match self {
            ScaleProfile::Paper => Ok(match bench {
                BenchmarkKind::Fluidanimate => {
                    tw_workloads::fluidanimate::FluidanimateConfig::paper().build(cores)
                }
                BenchmarkKind::Lu => tw_workloads::lu::LuConfig::paper().build(cores),
                BenchmarkKind::Fft => tw_workloads::fft::FftConfig::paper().build(cores),
                BenchmarkKind::Radix => tw_workloads::radix::RadixConfig::paper().build(cores),
                BenchmarkKind::Barnes => tw_workloads::barnes::BarnesConfig::paper().build(cores),
                BenchmarkKind::KdTree => tw_workloads::kdtree::KdTreeConfig::paper().build(cores),
                BenchmarkKind::Custom | BenchmarkKind::Synthesized => {
                    // Route through the scaled builder purely for its error
                    // message, which names the replacement workflow.
                    return build_scaled(bench, cores);
                }
            }),
            ScaleProfile::Scaled => build_scaled(bench, cores),
            ScaleProfile::Tiny => build_tiny(bench, cores),
        }
    }
}

/// A set of (protocol × benchmark) runs — the facade over the plan API that
/// keeps the original one-liners working.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    /// Protocols to simulate (figure order).
    pub protocols: Vec<tw_types::ProtocolKind>,
    /// Benchmarks to simulate (figure order).
    pub benchmarks: Vec<BenchmarkKind>,
    /// Input/system scale.
    pub scale: ScaleProfile,
}

impl ExperimentMatrix {
    /// The full matrix of the paper: the nine figure protocols on all six
    /// benchmarks. Pinned to [`tw_types::ProtocolKind::PAPER`] so the
    /// committed figure artifacts are unaffected by registry extensions
    /// (Dragon is exercised by the differential oracle and the explicit
    /// update-vs-invalidate figure, not the paper matrix).
    pub fn full(scale: ScaleProfile) -> Self {
        ExperimentMatrix {
            protocols: tw_types::ProtocolKind::PAPER.to_vec(),
            benchmarks: BenchmarkKind::ALL.to_vec(),
            scale,
        }
    }

    /// A reduced matrix (useful for tests): the given protocols on the given
    /// benchmarks.
    pub fn subset(
        protocols: Vec<tw_types::ProtocolKind>,
        benchmarks: Vec<BenchmarkKind>,
        scale: ScaleProfile,
    ) -> Self {
        ExperimentMatrix {
            protocols,
            benchmarks,
            scale,
        }
    }

    /// The equivalent declarative spec (what [`ExperimentMatrix::run`]
    /// executes).
    pub fn spec(&self) -> ExperimentSpec {
        ExperimentSpec::subset(self.protocols.clone(), self.benchmarks.clone(), self.scale)
    }

    /// Runs every (protocol, benchmark) pair through an uncached
    /// [`Session`], cells rayon-parallel.
    ///
    /// # Errors
    ///
    /// Any [`ExperimentError`] from compiling or executing the equivalent
    /// spec (a workload that cannot be generated, an invalid system, ...).
    pub fn run(&self) -> Result<RunOutcome, ExperimentError> {
        RunOutcome::from_plan(Session::new().run(&self.spec(), &WorkloadSet::new())?)
    }

    /// Runs every protocol of the matrix over externally supplied workloads
    /// (replayed traces, synthesized scenarios) instead of the generated
    /// benchmarks. The `benchmarks` field is ignored; each workload becomes
    /// a plan row named by its [`BenchmarkKind`], so baseline-normalized
    /// figures work as long as the protocol list includes the baseline.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::DuplicateWorkload`] if two workloads share a
    /// [`BenchmarkKind`] (the benchmark-keyed facade cannot represent that —
    /// give them distinct names in an [`ExperimentSpec`] instead), or
    /// [`ExperimentError::CoreCountMismatch`] if a workload's core count
    /// does not match the scale's system.
    pub fn run_on(&self, workloads: Vec<Workload>) -> Result<RunOutcome, ExperimentError> {
        let mut spec = self.spec();
        spec.workloads = Vec::new();
        let mut set = WorkloadSet::new();
        for wl in workloads {
            let name = wl.kind.name().to_string();
            if spec.workloads.iter().any(|w| w.name == name) {
                return Err(ExperimentError::DuplicateWorkload(name));
            }
            spec.workloads.push(WorkloadSpec::provided(name.clone()));
            set.insert(name, wl);
        }
        RunOutcome::from_plan(Session::new().run(&spec, &set)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::ProtocolKind;

    fn tiny_outcome() -> RunOutcome {
        ExperimentMatrix::subset(
            vec![
                ProtocolKind::Mesi,
                ProtocolKind::DeNovo,
                ProtocolKind::DBypFull,
            ],
            vec![BenchmarkKind::Fft, BenchmarkKind::Radix],
            ScaleProfile::Tiny,
        )
        .run()
        .unwrap()
    }

    #[test]
    fn matrix_runs_all_pairs() {
        let out = tiny_outcome();
        assert_eq!(out.cells(), 6);
        assert!(
            out.report(BenchmarkKind::Fft, ProtocolKind::Mesi)
                .unwrap()
                .total_cycles
                > 0
        );
    }

    #[test]
    fn missing_cells_are_errors_not_panics() {
        let out = tiny_outcome();
        let err = out
            .report(BenchmarkKind::Lu, ProtocolKind::Mesi)
            .unwrap_err();
        assert!(matches!(err, ExperimentError::MissingCell { .. }), "{err}");
        let err = out.headline().unwrap_err();
        assert!(matches!(err, ExperimentError::MissingProtocol(_)), "{err}");
    }

    #[test]
    fn fig_5_1a_is_normalized_to_mesi() {
        let out = tiny_outcome();
        let fig = out.fig_5_1a().unwrap();
        let mesi_total = fig.value("FFT/MESI", "Total").unwrap();
        assert!(
            (mesi_total - 1.0).abs() < 1e-9,
            "MESI bar must be exactly 1.0"
        );
        let opt_total = fig.value("FFT/DBypFull", "Total").unwrap();
        assert!(opt_total < 1.0, "optimized protocol must reduce traffic");
    }

    #[test]
    fn fig_5_2_mesi_components_sum_to_one() {
        let out = tiny_outcome();
        let fig = out.fig_5_2().unwrap();
        let total = fig.value("radix/MESI", "Total").unwrap();
        assert!((total - 1.0).abs() < 1e-9);
        let parts: f64 = TimeClass::ALL
            .iter()
            .map(|c| fig.value("radix/MESI", c.label()).unwrap())
            .sum();
        assert!((parts - total).abs() < 1e-6);
    }

    use crate::timing::TimeClass;

    #[test]
    fn waste_figures_have_mesi_used_below_one() {
        let out = tiny_outcome();
        for fig in [
            out.fig_5_3a().unwrap(),
            out.fig_5_3b().unwrap(),
            out.fig_5_3c().unwrap(),
        ] {
            let used = fig.value("FFT/MESI", "Used Words").unwrap();
            assert!(used > 0.0 && used <= 1.0, "{}: used={used}", fig.title());
        }
    }

    #[test]
    fn full_figure_set_has_ten_entries() {
        let out = tiny_outcome();
        assert_eq!(out.all_figures(ScaleProfile::Tiny).unwrap().len(), 10);
        assert!(out.table_4_2().rows().len() >= 2);
    }

    #[test]
    fn custom_workloads_run_through_the_matrix() {
        // A captured FFT trace re-labelled as a custom workload must run
        // under every protocol of a matrix and normalize against its own
        // MESI cell.
        let mut wl = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        wl.kind = BenchmarkKind::Custom;
        let matrix = ExperimentMatrix::subset(
            vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
            vec![],
            ScaleProfile::Tiny,
        );
        let out = matrix.run_on(vec![wl]).unwrap();
        assert_eq!(out.benchmarks, vec![BenchmarkKind::Custom]);
        assert_eq!(out.cells(), 2);
        let fig = out.fig_5_1a().unwrap();
        let mesi = fig.value("custom/MESI", "Total").unwrap();
        assert!((mesi - 1.0).abs() < 1e-9);
        assert!(fig.value("custom/DBypFull", "Total").unwrap() > 0.0);
    }

    #[test]
    fn run_on_rejects_duplicate_kinds_without_panicking() {
        let wl = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        let matrix = ExperimentMatrix::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
        let err = matrix.run_on(vec![wl.clone(), wl]).unwrap_err();
        assert!(
            matches!(err, ExperimentError::DuplicateWorkload(_)),
            "{err}"
        );
    }

    #[test]
    fn run_on_rejects_core_count_mismatch_without_panicking() {
        let wl = build_tiny(BenchmarkKind::Fft, 4).unwrap();
        let matrix = ExperimentMatrix::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
        let err = matrix.run_on(vec![wl]).unwrap_err();
        assert!(
            matches!(err, ExperimentError::CoreCountMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn scale_profiles_produce_distinct_systems() {
        assert_eq!(
            ScaleProfile::Paper.system().cache.l2_slice_bytes,
            256 * 1024
        );
        assert_eq!(
            ScaleProfile::Scaled.system().cache.l2_slice_bytes,
            64 * 1024
        );
        assert!(ScaleProfile::Tiny.system().cache.l1_bytes < 32 * 1024);
        assert!(ScaleProfile::Paper.system().validate().is_ok());
        assert!(ScaleProfile::Scaled.system().validate().is_ok());
        assert!(ScaleProfile::Tiny.system().validate().is_ok());
    }

    #[test]
    fn scale_names_round_trip() {
        for s in [
            ScaleProfile::Paper,
            ScaleProfile::Scaled,
            ScaleProfile::Tiny,
        ] {
            assert_eq!(ScaleProfile::by_name(s.name()), Ok(s));
            assert_eq!(ScaleProfile::by_name(&s.name().to_uppercase()), Ok(s));
        }
        assert!(ScaleProfile::by_name("huge").is_err());
    }

    #[test]
    fn spec_json_round_trips_the_full_matrix_and_a_sweep() {
        let full = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
        let back = ExperimentSpec::from_json(&full.to_json()).unwrap();
        assert_eq!(back, full);

        let sweep = ExperimentSpec {
            name: "l2-sweep".into(),
            scale: ScaleProfile::Tiny,
            protocols: vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
            workloads: vec![
                WorkloadSpec::bench(BenchmarkKind::Fft),
                WorkloadSpec::provided("synth-a"),
                WorkloadSpec::trace("ext", "some/path.trace"),
            ],
            variants: vec![
                SystemVariant::l2_slice("l2-16k", 16 * 1024),
                SystemVariant::mesh("mesh-2x2", 2, 2),
                SystemVariant::base(),
            ],
            networks: vec![
                tw_types::NetworkModelKind::Analytic,
                tw_types::NetworkModelKind::FlitLevel,
            ],
            baseline: Baseline::Protocol(ProtocolKind::Mesi),
        };
        let text = sweep.to_json();
        assert_eq!(ExperimentSpec::from_json(&text).unwrap(), sweep);
    }

    #[test]
    fn spec_errors_name_the_offence() {
        for (mangle, needle) in [
            (
                ExperimentSpec {
                    protocols: vec![],
                    ..ExperimentSpec::full_matrix(ScaleProfile::Tiny)
                },
                "protocol axis is empty",
            ),
            (
                ExperimentSpec {
                    workloads: vec![],
                    ..ExperimentSpec::full_matrix(ScaleProfile::Tiny)
                },
                "workload axis is empty",
            ),
        ] {
            let err = mangle.compile(&WorkloadSet::new()).unwrap_err().to_string();
            assert!(err.contains(needle), "{err}");
        }
        let mut dup = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
        dup.workloads.push(WorkloadSpec::bench(BenchmarkKind::Fft));
        assert!(matches!(
            dup.compile(&WorkloadSet::new()).unwrap_err(),
            ExperimentError::DuplicateWorkload(_)
        ));
        let mut bad_sys = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
        bad_sys.variants = vec![SystemVariant::l2_slice("tiny-l2", 100)];
        assert!(matches!(
            bad_sys.compile(&WorkloadSet::new()).unwrap_err(),
            ExperimentError::InvalidSystem { .. }
        ));
    }

    #[test]
    fn spec_json_rejects_ambiguous_and_unknown_workload_fields() {
        let base = |workloads: &str| {
            format!(
                r#"{{"schema": "{SPEC_SCHEMA}", "name": "x", "scale": "tiny",
                     "workloads": [{workloads}]}}"#
            )
        };
        // Two source keys in one entry must not silently resolve to one.
        let err = ExperimentSpec::from_json(&base(r#"{"bench": "FFT", "provided": "synth"}"#))
            .unwrap_err()
            .to_string();
        assert!(err.contains("exactly one"), "{err}");
        // A stray field is named, like variant entries do it.
        let err = ExperimentSpec::from_json(&base(r#"{"bench": "FFT", "benhc": "LU"}"#))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown workload field `benhc`"), "{err}");
        // A source-less entry is still rejected.
        let err = ExperimentSpec::from_json(&base(r#"{"name": "orphan"}"#))
            .unwrap_err()
            .to_string();
        assert!(err.contains("exactly one"), "{err}");
    }

    #[test]
    fn network_axis_expands_variants_with_model_suffixed_labels() {
        use tw_types::NetworkModelKind;
        let mut spec = ExperimentSpec::subset(
            vec![ProtocolKind::Mesi],
            vec![BenchmarkKind::Fft],
            ScaleProfile::Tiny,
        );
        spec.networks = NetworkModelKind::ALL.to_vec();
        let plan = spec.compile(&WorkloadSet::new()).unwrap();
        assert_eq!(plan.rows.len(), 3);
        assert_eq!(plan.cells.len(), 3);
        assert_eq!(plan.cells[0].label, "FFT@base+analytic");
        assert_eq!(plan.cells[1].label, "FFT@base+flit");
        assert_eq!(plan.cells[2].label, "FFT@base+bus");
        assert_eq!(plan.cells[0].system.network, NetworkModelKind::Analytic);
        assert_eq!(plan.cells[1].system.network, NetworkModelKind::FlitLevel);
        assert_eq!(plan.cells[2].system.network, NetworkModelKind::SnoopBus);
        // Same workload identity on both rows — only the system differs.
        assert_eq!(
            plan.cells[0].workload_ref.digest,
            plan.cells[1].workload_ref.digest
        );

        // A single-model axis keeps the plain labels and just sets the model.
        spec.networks = vec![NetworkModelKind::FlitLevel];
        let plan = spec.compile(&WorkloadSet::new()).unwrap();
        assert_eq!(plan.cells[0].label, "FFT");
        assert_eq!(plan.cells[0].system.network, NetworkModelKind::FlitLevel);
    }

    #[test]
    fn network_axis_misuse_is_a_named_error() {
        use tw_types::NetworkModelKind;
        let mut dup = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
        dup.networks = vec![NetworkModelKind::FlitLevel, NetworkModelKind::FlitLevel];
        let err = dup.compile(&WorkloadSet::new()).unwrap_err().to_string();
        assert!(err.contains("appears twice in the network axis"), "{err}");

        let mut conflict = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
        conflict.networks = vec![NetworkModelKind::FlitLevel];
        conflict.variants = vec![SystemVariant::network(
            "wormhole",
            NetworkModelKind::FlitLevel,
        )];
        let err = conflict
            .compile(&WorkloadSet::new())
            .unwrap_err()
            .to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(err.contains("`wormhole`"), "{err}");

        // Unknown model names are rejected with the name in the error, both
        // on the axis and in a variant override (the PR-3 by_name rule).
        for doc in [
            format!(
                r#"{{"schema": "{SPEC_SCHEMA}", "name": "x", "scale": "tiny",
                     "workloads": [{{"bench": "FFT"}}], "networks": ["booksim"]}}"#
            ),
            format!(
                r#"{{"schema": "{SPEC_SCHEMA}", "name": "x", "scale": "tiny",
                     "workloads": [{{"bench": "FFT"}}],
                     "variants": [{{"label": "v", "network": "booksim"}}]}}"#
            ),
        ] {
            let err = ExperimentSpec::from_json(&doc).unwrap_err().to_string();
            assert!(err.contains("`booksim`"), "{err}");
            assert!(err.contains("analytic"), "{err}");
        }
    }

    #[test]
    fn compiled_cells_carry_stable_identity() {
        let spec = ExperimentSpec::subset(
            vec![ProtocolKind::Mesi, ProtocolKind::DeNovo],
            vec![BenchmarkKind::Fft, BenchmarkKind::Lu],
            ScaleProfile::Tiny,
        );
        let plan = spec.compile(&WorkloadSet::new()).unwrap();
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.rows.len(), 2);
        // Same workload across the protocol axis shares one digest; the two
        // benchmarks have distinct digests.
        let fft: Vec<_> = plan
            .cells
            .iter()
            .filter(|c| c.workload_ref.name == "FFT")
            .collect();
        assert_eq!(fft.len(), 2);
        assert_eq!(fft[0].workload_ref.digest, fft[1].workload_ref.digest);
        let lu = plan
            .cells
            .iter()
            .find(|c| c.workload_ref.name == "LU")
            .unwrap();
        assert_ne!(lu.workload_ref.digest, fft[0].workload_ref.digest);
        // Recompiling reproduces the same identities.
        let again = spec.compile(&WorkloadSet::new()).unwrap();
        assert_eq!(
            again.cells[0].workload_ref.digest,
            plan.cells[0].workload_ref.digest
        );
    }

    #[test]
    fn variant_sweep_produces_distinct_systems_per_row() {
        let mut spec = ExperimentSpec::subset(
            vec![ProtocolKind::Mesi],
            vec![BenchmarkKind::Fft],
            ScaleProfile::Tiny,
        );
        spec.variants = vec![
            SystemVariant::base(),
            SystemVariant::l2_slice("l2-64k", 64 * 1024),
        ];
        let plan = spec.compile(&WorkloadSet::new()).unwrap();
        assert_eq!(plan.rows.len(), 2);
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(plan.cells[0].label, "FFT@base");
        assert_eq!(plan.cells[1].label, "FFT@l2-64k");
        assert_ne!(
            plan.cells[0].system.cache.l2_slice_bytes,
            plan.cells[1].system.cache.l2_slice_bytes
        );
        // Same input trace on both variants — identity is per workload, not
        // per cell.
        assert_eq!(
            plan.cells[0].workload_ref.digest,
            plan.cells[1].workload_ref.digest
        );
    }
}
