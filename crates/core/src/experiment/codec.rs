//! Bit-exact `SimReport` (de)serialization for the result cache.
//!
//! The cache's contract is that a warm hit returns a report **bit-identical**
//! to what the simulation would have produced (`SimReport`'s `PartialEq` is
//! exact, and CI diffs warm-run figure output byte-for-byte against cold
//! runs). Decimal JSON numbers cannot carry `f64`s losslessly, so every
//! floating-point field is stored as its 16-hex-digit IEEE-754 bit pattern;
//! integers use plain JSON integers (the parser in `json.rs` reads them as
//! exact `u64`s, not doubles).
//!
//! Enum-keyed maps (time classes, traffic buckets, waste categories) are
//! stored as label-tagged entry lists, resolved back through the same `ALL`
//! arrays the figures iterate — a new enum variant automatically becomes
//! codable, and an unknown label in a cache file is a decode error (the
//! session treats it as a miss and recomputes).

use super::json::Json;
use crate::report::SimReport;
use crate::timing::{ExecutionBreakdown, TimeClass};
use tw_profiler::{TrafficBreakdown, WasteCategory, WasteReport};
use tw_types::{MessageClass, ProtocolKind, TrafficBucket};
use tw_workloads::BenchmarkKind;

/// Schema tag of one serialized report.
pub(crate) const REPORT_SCHEMA: &str = "denovo-waste/sim-report/v1";

fn f64_json(v: f64) -> Json {
    Json::str(format!("{:016x}", v.to_bits()))
}

fn f64_parse(v: &Json) -> Result<f64, String> {
    let s = v.as_str()?;
    if s.len() != 16 {
        return Err(format!("f64 bit pattern `{s}` is not 16 hex digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("f64 bit pattern `{s}`: {e}"))
}

fn label_of_class(c: MessageClass) -> &'static str {
    c.label()
}

fn class_by_label(label: &str) -> Result<MessageClass, String> {
    MessageClass::ALL
        .into_iter()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown message class `{label}`"))
}

fn bucket_by_label(label: &str) -> Result<TrafficBucket, String> {
    // Bucket labels alone are not unique across figure families ("Control"
    // etc. are scoped by figure); serialize by debug name instead.
    TrafficBucket::ALL
        .into_iter()
        .find(|b| format!("{b:?}") == label)
        .ok_or_else(|| format!("unknown traffic bucket `{label}`"))
}

fn time_class_by_label(label: &str) -> Result<TimeClass, String> {
    TimeClass::ALL
        .into_iter()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown time class `{label}`"))
}

fn category_by_label(label: &str) -> Result<WasteCategory, String> {
    WasteCategory::ALL
        .into_iter()
        .find(|c| c.label() == label)
        .ok_or_else(|| format!("unknown waste category `{label}`"))
}

fn waste_json(w: &WasteReport) -> Json {
    Json::Obj(vec![
        (
            "words".to_string(),
            Json::Arr(
                w.words_iter()
                    .map(|(cat, n)| Json::Arr(vec![Json::str(cat.label()), Json::UInt(n)]))
                    .collect(),
            ),
        ),
        (
            "flit_hops".to_string(),
            Json::Arr(
                w.flit_hops_iter()
                    .map(|(class, cat, h)| {
                        Json::Arr(vec![
                            Json::str(label_of_class(class)),
                            Json::str(cat.label()),
                            f64_json(h),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn waste_parse(v: &Json) -> Result<WasteReport, String> {
    let words = v
        .require("words")?
        .as_arr()?
        .iter()
        .map(|entry| {
            let [cat, n] = entry.as_arr()? else {
                return Err("words entry must be [category, count]".to_string());
            };
            Ok((category_by_label(cat.as_str()?)?, n.as_u64()?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hops = v
        .require("flit_hops")?
        .as_arr()?
        .iter()
        .map(|entry| {
            let [class, cat, h] = entry.as_arr()? else {
                return Err("flit_hops entry must be [class, category, bits]".to_string());
            };
            Ok((
                class_by_label(class.as_str()?)?,
                category_by_label(cat.as_str()?)?,
                f64_parse(h)?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(WasteReport::from_parts(words, hops))
}

/// Serializes one report (without the cache-entry envelope).
pub(crate) fn report_to_json(r: &SimReport) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::str(REPORT_SCHEMA)),
        ("protocol".to_string(), Json::str(r.protocol.name())),
        ("benchmark".to_string(), Json::str(r.benchmark.name())),
        ("input".to_string(), Json::str(r.input.clone())),
        ("total_cycles".to_string(), Json::UInt(r.total_cycles)),
        (
            "time".to_string(),
            Json::Arr(
                r.time
                    .iter()
                    .map(|(c, n)| Json::Arr(vec![Json::str(c.label()), Json::UInt(n)]))
                    .collect(),
            ),
        ),
        (
            "traffic".to_string(),
            Json::Arr(
                r.traffic
                    .iter()
                    .map(|(class, bucket, h)| {
                        Json::Arr(vec![
                            Json::str(label_of_class(class)),
                            Json::str(format!("{bucket:?}")),
                            f64_json(h),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("mesh_flit_hops".to_string(), f64_json(r.mesh_flit_hops)),
        ("l1_waste".to_string(), waste_json(&r.l1_waste)),
        ("l2_waste".to_string(), waste_json(&r.l2_waste)),
        ("mem_waste".to_string(), waste_json(&r.mem_waste)),
        ("dram_accesses".to_string(), Json::UInt(r.dram_accesses)),
        (
            "dram_row_hit_rate".to_string(),
            f64_json(r.dram_row_hit_rate),
        ),
    ])
}

/// Parses one report serialized by [`report_to_json`].
pub(crate) fn report_from_json(v: &Json) -> Result<SimReport, String> {
    let schema = v.require("schema")?.as_str()?;
    if schema != REPORT_SCHEMA {
        return Err(format!(
            "unknown report schema `{schema}` (expected `{REPORT_SCHEMA}`)"
        ));
    }
    let protocol_name = v.require("protocol")?.as_str()?;
    let protocol: ProtocolKind = crate::sim::protocol_by_name(protocol_name)
        .ok_or_else(|| format!("unknown protocol `{protocol_name}`"))?;
    let benchmark = BenchmarkKind::by_name(v.require("benchmark")?.as_str()?)?;
    let time = ExecutionBreakdown::from_entries(
        v.require("time")?
            .as_arr()?
            .iter()
            .map(|entry| {
                let [class, n] = entry.as_arr()? else {
                    return Err("time entry must be [class, cycles]".to_string());
                };
                Ok((time_class_by_label(class.as_str()?)?, n.as_u64()?))
            })
            .collect::<Result<Vec<_>, String>>()?,
    );
    let traffic = TrafficBreakdown::from_entries(
        v.require("traffic")?
            .as_arr()?
            .iter()
            .map(|entry| {
                let [class, bucket, h] = entry.as_arr()? else {
                    return Err("traffic entry must be [class, bucket, bits]".to_string());
                };
                Ok((
                    class_by_label(class.as_str()?)?,
                    bucket_by_label(bucket.as_str()?)?,
                    f64_parse(h)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?,
    );
    Ok(SimReport {
        protocol,
        benchmark,
        input: v.require("input")?.as_str()?.to_string(),
        total_cycles: v.require("total_cycles")?.as_u64()?,
        time,
        traffic,
        mesh_flit_hops: f64_parse(v.require("mesh_flit_hops")?)?,
        l1_waste: waste_parse(v.require("l1_waste")?)?,
        l2_waste: waste_parse(v.require("l2_waste")?)?,
        mem_waste: waste_parse(v.require("mem_waste")?)?,
        dram_accesses: v.require("dram_accesses")?.as_u64()?,
        dram_row_hit_rate: f64_parse(v.require("dram_row_hit_rate")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};
    use tw_workloads::build_tiny;

    #[test]
    fn simulated_report_round_trips_bit_exactly() {
        let wl = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        let report = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &wl).run();
        let text = report_to_json(&report).pretty();
        let back = report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report, "codec must preserve every field bit-exactly");
    }

    #[test]
    fn special_floats_round_trip() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 0.1 + 0.2, -1.5e-300] {
            let parsed = f64_parse(&f64_json(v)).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} lost bits");
        }
        assert!(f64_parse(&Json::str("xyz")).is_err());
        assert!(f64_parse(&Json::str("0")).is_err());
    }

    #[test]
    fn unknown_labels_are_decode_errors() {
        let wl = build_tiny(BenchmarkKind::Lu, 16).unwrap();
        let report = Simulator::new(SimConfig::new(ProtocolKind::Mesi), &wl).run();
        let text = report_to_json(&report).pretty();
        let tampered = text.replace("\"MESI\"", "\"NOPE\"");
        assert!(report_from_json(&Json::parse(&tampered).unwrap()).is_err());
        let tampered = text.replace(REPORT_SCHEMA, "denovo-waste/sim-report/v0");
        assert!(report_from_json(&Json::parse(&tampered).unwrap()).is_err());
    }
}
