//! DeNovo transaction execution (all seven DeNovo configurations), behind
//! the [`ProtocolExecutor`] trait. All machine state lives in the shared
//! [`Engine`]; this file contains only the DeNovo-family transaction logic.

use super::engine::{Engine, ProtocolExecutor};
use crate::machine::{L1Meta, L2Meta};
use crate::timing::TimeClass;
use tw_mem::LineEntry;
use tw_protocols::{flex_fetch_plan, DenovoL1Line, DenovoL2Line, DenovoWordState, FlexPlan};
use tw_types::{
    Addr, CoreId, LineAddr, MessageClass, MessageKind, RegionId, Stamp, TileId, WordIdx, WordMask,
};

/// Executor for the DeNovo protocol family (`DeNovo` through `DBypFull`).
pub(crate) struct DenovoExecutor;

impl ProtocolExecutor for DenovoExecutor {
    fn family(&self) -> &'static str {
        "DeNovo"
    }

    fn load(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.denovo_load(core, addr, region, now)
    }

    fn store(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.denovo_store(core, addr, region, now)
    }

    fn barrier_released(&self, eng: &mut Engine<'_>, at: Stamp) {
        eng.denovo_barrier_actions(at);
    }

    fn finish(&self, eng: &mut Engine<'_>, at: Stamp) {
        // Flush any still-pending registrations so their traffic is
        // accounted (the paper's measurement period ends at a barrier, where
        // the write-combining table would have drained anyway).
        eng.denovo_barrier_actions(at);
    }
}

/// How one cache line of a fetch plan was served.
#[derive(Debug, Clone, Copy)]
struct LineService {
    arrival: Stamp,
    reached_mc: Option<Stamp>,
    dram_done: Option<Stamp>,
}

impl Engine<'_> {
    fn denovo_l1_line(&self, core: usize, line: LineAddr) -> Option<&DenovoL1Line> {
        match self.tiles[core].l1.peek(line).map(|e| &e.meta) {
            Some(L1Meta::Denovo(l)) => Some(l),
            _ => None,
        }
    }

    fn denovo_l2_meta(&self, home: TileId, line: LineAddr) -> Option<&DenovoL2Line> {
        match self.tiles[home.0].l2.peek(line).map(|e| &e.meta) {
            Some(L2Meta::Denovo(d)) => Some(d),
            _ => None,
        }
    }

    /// Executes a load under any DeNovo configuration.
    fn denovo_load(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let l1_hit_cycles = self.system().timing.l1_hit_cycles;

        if self.l1_load_hit(core, addr) {
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);
            self.time[core].add(TimeClass::Compute, l1_hit_cycles);
            return now + l1_hit_cycles;
        }

        // Build the fetch plan (Flex or whole-line).
        let plan = if self.protocol().flex_on_chip() {
            flex_fetch_plan(&self.workload.regions, addr, lb)
        } else {
            FlexPlan::whole_line(addr, lb)
        };
        let bypass = self.protocol().l2_response_bypass() && self.geo.region_bypasses_l2(region);

        // L2 request bypass: consult the Bloom shadow and, when it says the
        // line cannot be dirty on chip, go straight to the memory controller.
        let mut t_start = now;
        let mut direct_to_mc = false;
        if self.protocol().l2_request_bypass() && bypass {
            let home = self.home_of(line);
            if !self.tiles[core].l1_bloom[home.0].has_copy_for(line) {
                let rq = self
                    .net
                    .send(TileId(core), home, MessageKind::BloomCopyReq, 0, now);
                let words = self.wpl();
                let rs = self.net.send(
                    home,
                    TileId(core),
                    MessageKind::BloomCopyResp,
                    words,
                    rq.arrival + 1,
                );
                self.install_bloom_copy(core, home.0, line);
                t_start = rs.arrival;
            }
            let shadow = &self.tiles[core].l1_bloom[home.0];
            if shadow.has_copy_for(line) && !shadow.may_contain(line) {
                direct_to_mc = true;
            }
        }

        // Serve every line of the plan; remember the demanded line's path for
        // the timing attribution.
        let demanded = line;
        let mut demand_service = None;
        for (pl_line, want) in plan.lines.clone() {
            let is_demand = pl_line == demanded;
            // The request names only the words this L1 is actually missing;
            // words it already holds (valid or registered) are never
            // re-fetched.
            let already = self
                .denovo_l1_line(core, pl_line)
                .map(|l| l.readable_mask())
                .unwrap_or(WordMask::EMPTY);
            let want = want.difference(already);
            if want.is_empty() {
                continue;
            }
            // Prefetching a handful of words from another line is not worth a
            // dedicated packet; real Flex folds them into the demanded line's
            // response, so small remote selections are simply skipped.
            if !is_demand && want.count() < 4 {
                continue;
            }
            let service = self.denovo_fetch_line(
                core,
                pl_line,
                want,
                region,
                is_demand,
                bypass,
                direct_to_mc && is_demand,
                t_start,
            );
            if is_demand {
                demand_service = Some(service);
            }
        }
        let service = demand_service.expect("plan always contains the demanded line");

        self.l1_prof[core].loaded(addr);
        self.mem_prof.loaded(addr);

        match (service.reached_mc, service.dram_done) {
            (Some(reached), Some(done)) => {
                self.time[core].add(TimeClass::ToMc, reached.since(now));
                self.time[core].add(TimeClass::Mem, done.since(reached));
                self.time[core].add(TimeClass::FromMc, service.arrival.since(done));
            }
            _ => {
                self.time[core].add(TimeClass::OnChipHit, service.arrival.since(now));
            }
        }
        service.arrival.max(now + 1)
    }

    /// Serves one cache line of a load's fetch plan.
    #[allow(clippy::too_many_arguments)]
    fn denovo_fetch_line(
        &mut self,
        core: usize,
        line: LineAddr,
        want: WordMask,
        region: RegionId,
        is_demand: bool,
        bypass: bool,
        direct_to_mc: bool,
        now: Stamp,
    ) -> LineService {
        let me = TileId(core);
        let home = self.home_of(line);
        let occupancy = self.system().timing.l2_occupancy_cycles;
        let l2_hit = self.system().timing.l2_hit_cycles;
        let mem_to_l1 = self.protocol().mem_to_l1();
        let flex_mem = self.protocol().flex_at_memory();

        // Request control: one message for the demanded line; Flex combines
        // the additional lines of the plan into the same request.
        let t_home = if direct_to_mc {
            now
        } else if is_demand {
            let rq = self.net.send(me, home, MessageKind::LoadReq, 0, now);
            rq.arrival + occupancy
        } else {
            now + occupancy
        };

        // Split the wanted words by who can supply them.
        let (at_l2, by_owner, missing) = if direct_to_mc {
            (WordMask::EMPTY, Vec::new(), want)
        } else {
            match self.denovo_l2_meta(home, line) {
                Some(meta) => {
                    let at_l2 = want.intersect(meta.valid_at_l2());
                    let mut by_owner: Vec<(CoreId, WordMask)> = Vec::new();
                    for w in want.difference(at_l2).iter() {
                        if let Some(owner) = meta.owner(w).registrant() {
                            if owner.0 == core {
                                continue;
                            }
                            match by_owner.iter_mut().find(|(c, _)| *c == owner) {
                                Some((_, m)) => m.insert(w),
                                None => by_owner.push((owner, WordMask::single(w))),
                            }
                        }
                    }
                    let owned: WordMask = by_owner
                        .iter()
                        .fold(WordMask::EMPTY, |acc, (_, m)| acc.union(*m));
                    (at_l2, by_owner, want.difference(at_l2).difference(owned))
                }
                None => (WordMask::EMPTY, Vec::new(), want),
            }
        };

        let mut arrival = t_home;
        let mut reached_mc = None;
        let mut dram_done = None;

        // Words the L2 itself holds.
        if !at_l2.is_empty() {
            self.tiles[home.0].l2.get(line);
            let d = self.net.send(
                home,
                me,
                MessageKind::DataToL1,
                at_l2.count(),
                t_home + l2_hit,
            );
            self.l2_prof.loaded_words(line.word_addr(WordIdx(0)), at_l2);
            self.denovo_fill_l1(
                core,
                line,
                region,
                at_l2,
                MessageClass::Load,
                d.per_word_hops,
                d.arrival,
            );
            arrival = arrival.max(d.arrival);
        }

        // Words registered to other cores: the L2 forwards the request and the
        // owner responds directly (no sharer list, no unblock).
        for (owner, mask) in by_owner {
            let fwd = self
                .net
                .send(home, owner.tile(), MessageKind::LoadReq, 0, t_home);
            let d = self.net.send(
                owner.tile(),
                me,
                MessageKind::DataToL1,
                mask.count(),
                fwd.arrival + 1,
            );
            self.denovo_fill_l1(
                core,
                line,
                region,
                mask,
                MessageClass::Load,
                d.per_word_hops,
                d.arrival,
            );
            arrival = arrival.max(d.arrival);
        }

        // Words nobody on chip has: fetch from memory. Non-demanded plan lines
        // are only fetched from memory when Flex extends to the memory
        // controller (DFlexL2 and later); otherwise the miss simply forgoes
        // the prefetch (DFlexL1 behaviour).
        if !missing.is_empty() && (is_demand || flex_mem) {
            let mc = self.mc_of(line);
            let reach = if direct_to_mc {
                let rq = self.net.send(me, mc, MessageKind::LoadReqToMc, 0, now);
                rq.arrival
            } else {
                let rq = self.net.send(home, mc, MessageKind::MemReadReq, 0, t_home);
                rq.arrival
            };
            let done = self.dram_access(mc, line, false, reach);
            reached_mc = Some(reach);
            dram_done = Some(done);

            // What the controller sends on chip: with memory-side Flex only
            // the wanted words, otherwise the whole line.
            let sent = if flex_mem { missing } else { WordMask::FULL };
            if flex_mem {
                for w in WordMask::FULL.difference(sent).iter() {
                    self.mem_prof.dropped_at_controller(line.word_addr(w));
                }
            }

            let fill_l2 = !bypass;
            let l2_present = self.tiles[home.0]
                .l2
                .peek(line)
                .map(|e| !e.valid.is_empty())
                .unwrap_or(false);

            if mem_to_l1 || direct_to_mc {
                let d = self
                    .net
                    .send(mc, me, MessageKind::MemDataToL1, sent.count(), done);
                self.mem_prof.fetched_words(
                    line.word_addr(WordIdx(0)),
                    sent,
                    l2_present,
                    d.per_word_hops,
                );
                self.denovo_fill_l1(
                    core,
                    line,
                    region,
                    sent,
                    MessageClass::Load,
                    d.per_word_hops,
                    d.arrival,
                );
                arrival = arrival.max(d.arrival);
                if fill_l2 {
                    let d2 = self
                        .net
                        .send(mc, home, MessageKind::DataToL2, sent.count(), done);
                    self.denovo_fill_l2(
                        home,
                        line,
                        sent,
                        MessageClass::Load,
                        d2.per_word_hops,
                        d2.arrival,
                    );
                }
            } else {
                let d2 = self
                    .net
                    .send(mc, home, MessageKind::DataToL2, sent.count(), done);
                self.mem_prof.fetched_words(
                    line.word_addr(WordIdx(0)),
                    sent,
                    l2_present,
                    d2.per_word_hops,
                );
                if fill_l2 {
                    self.denovo_fill_l2(
                        home,
                        line,
                        sent,
                        MessageClass::Load,
                        d2.per_word_hops,
                        d2.arrival,
                    );
                }
                let d1 = self.net.send(
                    home,
                    me,
                    MessageKind::DataToL1,
                    sent.count(),
                    d2.arrival + l2_hit,
                );
                self.denovo_fill_l1(
                    core,
                    line,
                    region,
                    sent,
                    MessageClass::Load,
                    d1.per_word_hops,
                    d1.arrival,
                );
                arrival = arrival.max(d1.arrival);
            }
        }

        LineService {
            arrival,
            reached_mc: if is_demand { reached_mc } else { None },
            dram_done: if is_demand { dram_done } else { None },
        }
    }

    /// Executes a store under any DeNovo configuration. Writes are
    /// write-validate at the L1: the word is written locally and a
    /// registration request is coalesced in the write-combining table.
    fn denovo_store(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let w = addr.word_in_line(lb);
        self.time[core].add(TimeClass::Compute, 1);

        if !self.tiles[core].l1.contains(line) {
            let victim = self.tiles[core]
                .l1
                .insert(line, L1Meta::Denovo(DenovoL1Line::new(region)))
                .1;
            if let Some(v) = victim {
                self.denovo_evict_l1(core, v, now);
            }
        }

        self.l1_prof[core].stored(addr);
        self.mem_prof.stored(addr);

        // Single lookup: read the prior registration state out of the same
        // `get` that applies the write (one tick bump, as before).
        let mut was_registered = false;
        if let Some(e) = self.tiles[core].l1.get(line) {
            if let L1Meta::Denovo(l) = &mut e.meta {
                was_registered = l.word(w).is_registered();
                l.set_word(w, DenovoWordState::Registered);
            }
            e.valid.insert(w);
            e.dirty.insert(w);
        }

        if !was_registered {
            let mut flushes = self.tiles[core]
                .write_combine
                .record_write(line, w, now.canon);
            flushes.extend(self.tiles[core].write_combine.expire(now.canon));
            for (entry, _reason) in flushes {
                self.denovo_send_registration(core, entry.line, entry.pending, now);
            }
        }
        now + 1
    }

    /// Sends one registration request for `words` of `line` (a flushed
    /// write-combining entry) and applies its effects at the home L2.
    fn denovo_send_registration(
        &mut self,
        core: usize,
        line: LineAddr,
        words: WordMask,
        now: Stamp,
    ) {
        if words.is_empty() {
            return;
        }
        let me = TileId(core);
        let home = self.home_of(line);
        let occupancy = self.system().timing.l2_occupancy_cycles;

        let rq = self.net.send(me, home, MessageKind::StoreReq, 0, now);
        let t_home = rq.arrival + occupancy;

        self.denovo_ensure_l2(home, line, true, t_home);

        // Register the words, invalidating any previous registrant.
        let displaced = {
            match self.tiles[home.0].l2.get(line).map(|e| &mut e.meta) {
                Some(L2Meta::Denovo(d)) => d.register(words, CoreId(core)),
                _ => Vec::new(),
            }
        };
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            e.valid = e.valid.difference(words);
        }
        for (word, prev) in displaced {
            self.net
                .send(home, prev.tile(), MessageKind::Invalidation, 0, t_home);
            let addr = line.word_addr(word);
            if let Some(e) = self.tiles[prev.0].l1.get(line) {
                if let L1Meta::Denovo(l) = &mut e.meta {
                    l.set_word(word, DenovoWordState::Invalid);
                }
                e.valid.remove(word);
                e.dirty.remove(word);
            }
            self.l1_prof[prev.0].invalidated(addr);
        }
        self.tiles[home.0].l2_bloom.insert(line);
        self.net
            .send(home, me, MessageKind::StoreAck, 0, t_home + 1);
    }

    /// Installs `words` of `line` into the requesting L1 as `Valid`.
    #[allow(clippy::too_many_arguments)]
    fn denovo_fill_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        region: RegionId,
        words: WordMask,
        class: MessageClass,
        per_word_hops: f64,
        at: Stamp,
    ) {
        if words.is_empty() {
            return;
        }
        if !self.tiles[core].l1.contains(line) {
            let victim = self.tiles[core]
                .l1
                .insert(line, L1Meta::Denovo(DenovoL1Line::new(region)))
                .1;
            if let Some(v) = victim {
                self.denovo_evict_l1(core, v, at);
            }
        }
        // Record arrivals (with present/absent status) before mutating state.
        let present = self
            .denovo_l1_line(core, line)
            .map(|l| l.readable_mask())
            .unwrap_or(WordMask::EMPTY);
        self.l1_prof[core].arrive_words(
            line.word_addr(WordIdx(0)),
            words,
            present,
            per_word_hops,
            class,
        );
        if let Some(e) = self.tiles[core].l1.get(line) {
            if let L1Meta::Denovo(l) = &mut e.meta {
                for w in words.iter() {
                    if !l.word(w).is_registered() {
                        l.set_word(w, DenovoWordState::Valid);
                    }
                }
            }
            e.valid = e.valid.union(words);
        }
    }

    /// Installs `words` of `line` into the home L2 slice as valid-at-L2.
    fn denovo_fill_l2(
        &mut self,
        home: TileId,
        line: LineAddr,
        words: WordMask,
        class: MessageClass,
        per_word_hops: f64,
        at: Stamp,
    ) {
        if words.is_empty() {
            return;
        }
        self.denovo_ensure_l2(home, line, false, at);
        let present = self
            .denovo_l2_meta(home, line)
            .map(|m| m.valid_at_l2())
            .unwrap_or(WordMask::EMPTY);
        self.l2_prof.arrive_words(
            line.word_addr(WordIdx(0)),
            words,
            present,
            per_word_hops,
            class,
        );
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            if let L2Meta::Denovo(d) = &mut e.meta {
                for w in words.iter() {
                    if d.owner(w).registrant().is_none() {
                        d.set_owner(w, tw_protocols::L2WordOwner::AtL2);
                    }
                }
            }
            e.valid = e.valid.union(words);
        }
    }

    /// Ensures an L2 entry exists for `line`. In store context under the
    /// baseline (fetch-on-write) L2 policy, a missing line is fetched from
    /// memory in full before the registration is applied.
    fn denovo_ensure_l2(&mut self, home: TileId, line: LineAddr, store_ctx: bool, at: Stamp) {
        if self.tiles[home.0].l2.contains(line) {
            return;
        }
        let victim = self.tiles[home.0]
            .l2
            .insert(line, L2Meta::Denovo(DenovoL2Line::default()))
            .1;
        if let Some(v) = victim {
            self.denovo_evict_l2(home, v, at);
        }

        if store_ctx && !self.protocol().l2_write_validate() {
            // Fetch-on-write at the L2: bring the whole line from memory.
            let lb = self.line_bytes();
            let wpl = self.wpl();
            let mc = self.mc_of(line);
            let rq = self.net.send(home, mc, MessageKind::MemReadReq, 0, at);
            let done = self.dram_access(mc, line, false, rq.arrival);
            let d = self.net.send(mc, home, MessageKind::DataToL2, wpl, done);
            let lw = WordMask::first_n((lb / tw_types::WORD_BYTES) as usize);
            self.mem_prof
                .fetched_words(line.word_addr(WordIdx(0)), lw, false, d.per_word_hops);
            self.l2_prof.arrive_words(
                line.word_addr(WordIdx(0)),
                lw,
                WordMask::EMPTY,
                d.per_word_hops,
                MessageClass::Store,
            );
            if let Some(e) = self.tiles[home.0].l2.get(line) {
                if let L2Meta::Denovo(dl) = &mut e.meta {
                    for w in WordMask::FULL.iter() {
                        dl.set_owner(w, tw_protocols::L2WordOwner::AtL2);
                    }
                }
                e.valid = WordMask::FULL;
            }
        }
    }

    /// Evicts an L1 line: registered (dirty) words are written back (and any
    /// still-pending registrations are folded into the same message); valid
    /// words are dropped silently.
    fn denovo_evict_l1(&mut self, core: usize, victim: LineEntry<L1Meta>, at: Stamp) {
        let L1Meta::Denovo(dl) = &victim.meta else {
            return;
        };
        let me = TileId(core);
        let home = self.home_of(victim.line);
        let registered = dl.mask_in(DenovoWordState::Registered);
        let valid = dl.mask_in(DenovoWordState::Valid);
        let pending = self.tiles[core].write_combine.evict_line(victim.line);

        if !registered.is_empty() {
            let kind = if pending.is_some() {
                MessageKind::WritebackAndRegister
            } else {
                MessageKind::L1Writeback
            };
            let wb = self.net.send(me, home, kind, registered.count(), at);
            self.charge_writeback_data(
                wb.per_word_hops,
                registered.count(),
                registered.count(),
                false,
            );
            self.denovo_ensure_l2(home, victim.line, false, at);
            if let Some(e) = self.tiles[home.0].l2.get(victim.line) {
                if let L2Meta::Denovo(d) = &mut e.meta {
                    d.accept_writeback(registered, CoreId(core));
                }
                e.valid = e.valid.union(registered);
                e.dirty = e.dirty.union(registered);
            }
            self.tiles[home.0].l2_bloom.insert(victim.line);
        }

        let line_in_l2 = self.tiles[home.0].l2.contains(victim.line);
        self.l1_prof[core].evicted_words(victim.line.word_addr(WordIdx(0)), valid);
        if !line_in_l2 {
            self.mem_prof
                .evicted_words(victim.line.word_addr(WordIdx(0)), valid);
        }
    }

    /// Evicts an L2 line: words registered to L1s are recalled (written back
    /// by their owners), then dirty words are written back to memory —
    /// dirty-words-only when the protocol supports it, whole line otherwise.
    fn denovo_evict_l2(&mut self, home: TileId, victim: LineEntry<L2Meta>, at: Stamp) {
        let L2Meta::Denovo(dl) = &victim.meta else {
            return;
        };
        let wpl = self.wpl();
        let mut dirty = victim.dirty;
        let mut valid = victim.valid;

        // Recall registered words from their owners.
        let owners: Vec<(CoreId, WordMask)> = (0..self.tiles.len())
            .map(|c| (CoreId(c), dl.registered_to(CoreId(c))))
            .filter(|(_, m)| !m.is_empty())
            .collect();
        for (owner, mask) in owners {
            self.net
                .send(home, owner.tile(), MessageKind::Invalidation, 0, at);
            let wb = self.net.send(
                owner.tile(),
                home,
                MessageKind::L1Writeback,
                mask.count(),
                at + 1,
            );
            self.charge_writeback_data(wb.per_word_hops, mask.count(), mask.count(), false);
            if let Some(e) = self.tiles[owner.0].l1.get(victim.line) {
                if let L1Meta::Denovo(l) = &mut e.meta {
                    for w in mask.iter() {
                        l.set_word(w, DenovoWordState::Invalid);
                    }
                }
                e.valid = e.valid.difference(mask);
                e.dirty = e.dirty.difference(mask);
            }
            dirty = dirty.union(mask);
            valid = valid.union(mask);
        }

        if !dirty.is_empty() {
            let carried = if self.protocol().dirty_words_only_writeback() {
                dirty.count()
            } else {
                wpl
            };
            let mc = self.mc_of(victim.line);
            let wb = self
                .net
                .send(home, mc, MessageKind::MemWriteback, carried, at + 2);
            self.charge_writeback_data(wb.per_word_hops, dirty.count(), carried, true);
            self.dram_access(mc, victim.line, true, wb.arrival);
        }

        self.l2_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), valid);
        self.mem_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), valid);
        self.tiles[home.0].l2_bloom.remove(victim.line);
    }

    /// Barrier-time protocol actions: drain the write-combining tables,
    /// self-invalidate stale valid words, and clear the L1 Bloom shadows.
    fn denovo_barrier_actions(&mut self, at: Stamp) {
        let cores = self.tiles.len();
        for core in 0..cores {
            let flushed = self.tiles[core].write_combine.release_all();
            for (entry, _) in flushed {
                self.denovo_send_registration(core, entry.line, entry.pending, at);
            }
        }

        for core in 0..cores {
            // Collect the self-invalidations first, then report them, to keep
            // the cache and profiler borrows apart. The per-region parallel
            // flag comes from the precomputed table — the old per-core
            // `RegionTable` clone allocated on every barrier.
            let mut invalidated: Vec<(LineAddr, WordMask)> = Vec::new();
            let geo = &self.geo;
            for entry in self.tiles[core].l1.iter_mut() {
                if let L1Meta::Denovo(l) = &mut entry.meta {
                    if geo.region_parallel(l.region) {
                        let inv = l.self_invalidate();
                        entry.valid = entry.valid.difference(inv);
                        if !inv.is_empty() {
                            invalidated.push((entry.line, inv));
                        }
                    }
                }
            }
            for (line, inv) in invalidated {
                self.l1_prof[core].invalidated_words(line.word_addr(WordIdx(0)), inv);
            }
            if self.protocol().l2_request_bypass() {
                for bank in self.tiles[core].l1_bloom.iter_mut() {
                    bank.clear();
                }
            }
        }
    }

    /// Copies the home slice's Bloom filter covering `line` into this core's
    /// shadow bank.
    fn install_bloom_copy(&mut self, core: usize, home: usize, line: LineAddr) {
        let src = self.tiles[home].l2_bloom.clone();
        self.tiles[core].l1_bloom[home].install_copy(line, &src);
    }
}
