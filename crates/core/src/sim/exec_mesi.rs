//! MESI transaction execution (baseline MESI and MMemL1), behind the
//! [`ProtocolExecutor`] trait. All machine state lives in the shared
//! [`Engine`]; this file contains only the MESI-family transaction logic.

use super::engine::{Engine, ProtocolExecutor};
use crate::machine::{L1Meta, L2Meta};
use crate::timing::TimeClass;
use tw_mem::LineEntry;
use tw_protocols::{DirectoryEntry, MesiState};
use tw_types::{
    Addr, CoreId, LineAddr, MessageClass, MessageKind, RegionId, Stamp, TileId, WordIdx, WordMask,
};

/// Executor for the MESI protocol family (`Mesi`, `MMemL1`).
pub(crate) struct MesiExecutor;

impl ProtocolExecutor for MesiExecutor {
    fn family(&self) -> &'static str {
        "MESI"
    }

    fn load(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.mesi_load(core, addr, region, now)
    }

    fn store(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.mesi_store(core, addr, region, now)
    }

    // MESI has no barrier-time or end-of-run protocol actions: the directory
    // is kept coherent transaction by transaction.
}

impl Engine<'_> {
    fn mesi_dir(&self, home: TileId, line: LineAddr) -> DirectoryEntry {
        match self.tiles[home.0].l2.peek(line).map(|e| &e.meta) {
            Some(L2Meta::Mesi(d)) => *d,
            _ => DirectoryEntry::default(),
        }
    }

    fn set_mesi_dir(&mut self, home: TileId, line: LineAddr, dir: DirectoryEntry) {
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            e.meta = L2Meta::Mesi(dir);
        }
    }

    fn l1_state(&self, core: usize, line: LineAddr) -> MesiState {
        match self.tiles[core].l1.peek(line).map(|e| &e.meta) {
            Some(L1Meta::Mesi { state, .. }) => *state,
            _ => MesiState::Invalid,
        }
    }

    /// Executes a load under MESI/MMemL1, returning the cycle at which the
    /// core may proceed.
    fn mesi_load(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let l1_hit_cycles = self.system().timing.l1_hit_cycles;

        if self.l1_load_hit(core, addr) {
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);
            self.time[core].add(TimeClass::Compute, l1_hit_cycles);
            return now + l1_hit_cycles;
        }

        let me = TileId(core);
        let home = self.home_of(line);
        let l2_hit = self.system().timing.l2_hit_cycles;
        let occupancy = self.system().timing.l2_occupancy_cycles;

        let req = self.net.send(me, home, MessageKind::LoadReq, 0, now);
        let t_home = req.arrival + occupancy;

        let l2_has_data = self.tiles[home.0]
            .l2
            .peek(line)
            .map(|e| !e.valid.is_empty())
            .unwrap_or(false);

        if l2_has_data {
            // ---- served on chip -------------------------------------------
            let mut dir = self.mesi_dir(home, line);
            let exclusive = dir.grants_exclusive(CoreId(core));
            let prev_owner = dir.record_read(CoreId(core));

            let delivery = if let Some(owner) = prev_owner {
                // Forward to the exclusive owner; it supplies the data and, if
                // dirty, writes back to the L2 while downgrading to Shared.
                let fwd = self
                    .net
                    .send(home, owner.tile(), MessageKind::Invalidation, 0, t_home);
                let t_owner = fwd.arrival + 1;
                let dirty = self.tiles[owner.0]
                    .l1
                    .peek(line)
                    .map(|e| e.dirty)
                    .unwrap_or(WordMask::EMPTY);
                if let Some(e) = self.tiles[owner.0].l1.get(line) {
                    if let L1Meta::Mesi { state, .. } = &mut e.meta {
                        *state = MesiState::Shared;
                    }
                    e.dirty = WordMask::EMPTY;
                }
                if !dirty.is_empty() {
                    let wpl = self.wpl();
                    let wb =
                        self.net
                            .send(owner.tile(), home, MessageKind::L1Writeback, wpl, t_owner);
                    self.charge_writeback_data(wb.per_word_hops, dirty.count(), wpl, false);
                    if let Some(le) = self.tiles[home.0].l2.get(line) {
                        le.dirty = le.dirty.union(dirty);
                        le.valid = WordMask::FULL;
                    }
                }
                self.net
                    .send(owner.tile(), me, MessageKind::DataToL1, self.wpl(), t_owner)
            } else {
                // Serve straight from the L2 slice.
                self.l2_prof
                    .loaded_words(line.word_addr(WordIdx(0)), self.line_words_mask());
                self.tiles[home.0].l2.get(line); // refresh LRU
                self.net
                    .send(home, me, MessageKind::DataToL1, self.wpl(), t_home + l2_hit)
            };

            self.set_mesi_dir(home, line, dir);
            self.net
                .send(me, home, MessageKind::DirUnblock, 0, delivery.arrival);

            let state = if exclusive {
                MesiState::Exclusive
            } else {
                MesiState::Shared
            };
            self.mesi_fill_l1(
                core,
                line,
                region,
                state,
                MessageClass::Load,
                delivery.per_word_hops,
                delivery.arrival,
            );
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);
            self.time[core].add(TimeClass::OnChipHit, delivery.arrival.since(now));
            delivery.arrival
        } else {
            // ---- L2 miss: fetch from memory --------------------------------
            let mc = self.mc_of(line);
            let wpl = self.wpl();
            let to_mc = self.net.send(home, mc, MessageKind::MemReadReq, 0, t_home);
            let dram_done = self.dram_access(mc, line, false, to_mc.arrival);

            let (arrival, per_word_to_l1) = if self.protocol().mem_to_l1() {
                // MMemL1: data goes straight to the L1, which forwards it to
                // the (inclusive) L2 as an unblock+data message.
                let d = self
                    .net
                    .send(mc, me, MessageKind::MemDataToL1, wpl, dram_done);
                let lw = self.line_words_mask();
                self.mem_prof
                    .fetched_words(line.word_addr(WordIdx(0)), lw, false, d.per_word_hops);
                let ub = self
                    .net
                    .send(me, home, MessageKind::DirUnblockWithData, wpl, d.arrival);
                self.l2_prof.arrive_words(
                    line.word_addr(WordIdx(0)),
                    self.line_words_mask(),
                    WordMask::EMPTY,
                    ub.per_word_hops,
                    MessageClass::Load,
                );
                (d.arrival, d.per_word_hops)
            } else {
                let d2 = self
                    .net
                    .send(mc, home, MessageKind::DataToL2, wpl, dram_done);
                let lw = self.line_words_mask();
                self.mem_prof.fetched_words(
                    line.word_addr(WordIdx(0)),
                    lw,
                    false,
                    d2.per_word_hops,
                );
                self.l2_prof.arrive_words(
                    line.word_addr(WordIdx(0)),
                    self.line_words_mask(),
                    WordMask::EMPTY,
                    d2.per_word_hops,
                    MessageClass::Load,
                );
                let d1 = self
                    .net
                    .send(home, me, MessageKind::DataToL1, wpl, d2.arrival + l2_hit);
                self.net
                    .send(me, home, MessageKind::DirUnblock, 0, d1.arrival);
                (d1.arrival, d1.per_word_hops)
            };

            let mut dir = DirectoryEntry::default();
            let exclusive = dir.grants_exclusive(CoreId(core));
            dir.record_read(CoreId(core));
            self.mesi_allocate_l2(home, line, dir, WordMask::FULL, now);

            let state = if exclusive {
                MesiState::Exclusive
            } else {
                MesiState::Shared
            };
            self.mesi_fill_l1(
                core,
                line,
                region,
                state,
                MessageClass::Load,
                per_word_to_l1,
                arrival,
            );
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);

            self.time[core].add(TimeClass::ToMc, to_mc.arrival.since(now));
            self.time[core].add(TimeClass::Mem, dram_done.since(to_mc.arrival));
            self.time[core].add(TimeClass::FromMc, arrival.since(dram_done));
            arrival
        }
    }

    /// Executes a store under MESI/MMemL1. Stores retire into the
    /// non-blocking write buffer, so the core is charged only one busy cycle.
    fn mesi_store(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let w = addr.word_in_line(lb);
        let me = TileId(core);
        let home = self.home_of(line);
        let occupancy = self.system().timing.l2_occupancy_cycles;
        let wpl = self.wpl();
        let busy = now + 1;
        self.time[core].add(TimeClass::Compute, 1);

        match self.l1_state(core, line) {
            MesiState::Modified | MesiState::Exclusive => {
                if let Some(e) = self.tiles[core].l1.get(line) {
                    if let L1Meta::Mesi { state, .. } = &mut e.meta {
                        *state = MesiState::Modified;
                    }
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
            MesiState::Shared => {
                // Upgrade: invalidate the other sharers, no data transfer.
                let req = self.net.send(me, home, MessageKind::UpgradeReq, 0, now);
                let t_home = req.arrival + occupancy;
                let mut dir = self.mesi_dir(home, line);
                let (_prev_owner, invalidated) = dir.record_write(CoreId(core));
                self.mesi_invalidate_sharers(home, line, &invalidated, t_home);
                self.set_mesi_dir(home, line, dir);
                self.net
                    .send(home, me, MessageKind::StoreAck, 0, t_home + 1);
                self.net
                    .send(me, home, MessageKind::DirUnblock, 0, t_home + 2);
                if let Some(e) = self.tiles[core].l1.get(line) {
                    if let L1Meta::Mesi { state, .. } = &mut e.meta {
                        *state = MesiState::Modified;
                    }
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
            MesiState::Invalid => {
                // GetM with a full-line data response (fetch-on-write).
                let req = self.net.send(me, home, MessageKind::StoreReq, 0, now);
                let t_home = req.arrival + occupancy;
                let l2_has_data = self.tiles[home.0]
                    .l2
                    .peek(line)
                    .map(|e| !e.valid.is_empty())
                    .unwrap_or(false);

                if l2_has_data {
                    let mut dir = self.mesi_dir(home, line);
                    let (prev_owner, invalidated) = dir.record_write(CoreId(core));
                    self.mesi_invalidate_sharers(home, line, &invalidated, t_home);

                    let delivery = if let Some(owner) = prev_owner {
                        // Owner transfers the (possibly dirty) line directly.
                        let fwd =
                            self.net
                                .send(home, owner.tile(), MessageKind::Invalidation, 0, t_home);
                        let t_owner = fwd.arrival + 1;
                        let removed = self.tiles[owner.0].l1.remove(line);
                        if let Some(victim) = &removed {
                            self.l1_prof[owner.0]
                                .invalidated_words(line.word_addr(WordIdx(0)), victim.valid);
                        }
                        self.net
                            .send(owner.tile(), me, MessageKind::DataToL1, wpl, t_owner)
                    } else {
                        self.l2_prof
                            .loaded_words(line.word_addr(WordIdx(0)), self.line_words_mask());
                        self.tiles[home.0].l2.get(line);
                        self.net
                            .send(home, me, MessageKind::DataToL1, wpl, t_home + 1)
                    };
                    self.set_mesi_dir(home, line, dir);
                    self.net
                        .send(me, home, MessageKind::DirUnblock, 0, delivery.arrival);
                    self.mesi_fill_l1(
                        core,
                        line,
                        region,
                        MesiState::Modified,
                        MessageClass::Store,
                        delivery.per_word_hops,
                        delivery.arrival,
                    );
                } else {
                    // Write miss that also misses the L2.
                    let mc = self.mc_of(line);
                    let to_mc = self.net.send(home, mc, MessageKind::MemReadReq, 0, t_home);
                    let dram_done = self.dram_access(mc, line, false, to_mc.arrival);
                    let mut dir = DirectoryEntry::default();
                    dir.record_write(CoreId(core));

                    if self.protocol().mem_to_l1() {
                        // MMemL1: the line goes only to the L1 — the eventual
                        // writeback will overwrite whatever the L2 would have
                        // cached, so nothing is forwarded there.
                        let d = self
                            .net
                            .send(mc, me, MessageKind::MemDataToL1, wpl, dram_done);
                        let lw = self.line_words_mask();
                        self.mem_prof.fetched_words(
                            line.word_addr(WordIdx(0)),
                            lw,
                            false,
                            d.per_word_hops,
                        );
                        self.net
                            .send(me, home, MessageKind::DirUnblock, 0, d.arrival);
                        self.mesi_allocate_l2(home, line, dir, WordMask::EMPTY, now);
                        self.mesi_fill_l1(
                            core,
                            line,
                            region,
                            MesiState::Modified,
                            MessageClass::Store,
                            d.per_word_hops,
                            d.arrival,
                        );
                    } else {
                        let d2 = self
                            .net
                            .send(mc, home, MessageKind::DataToL2, wpl, dram_done);
                        let lw = self.line_words_mask();
                        self.mem_prof.fetched_words(
                            line.word_addr(WordIdx(0)),
                            lw,
                            false,
                            d2.per_word_hops,
                        );
                        self.l2_prof.arrive_words(
                            line.word_addr(WordIdx(0)),
                            self.line_words_mask(),
                            WordMask::EMPTY,
                            d2.per_word_hops,
                            MessageClass::Store,
                        );
                        let d1 =
                            self.net
                                .send(home, me, MessageKind::DataToL1, wpl, d2.arrival + 1);
                        self.net
                            .send(me, home, MessageKind::DirUnblock, 0, d1.arrival);
                        self.mesi_allocate_l2(home, line, dir, WordMask::FULL, now);
                        self.mesi_fill_l1(
                            core,
                            line,
                            region,
                            MesiState::Modified,
                            MessageClass::Store,
                            d1.per_word_hops,
                            d1.arrival,
                        );
                    }
                }

                if let Some(e) = self.tiles[core].l1.get(line) {
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
        }
    }

    /// Sends invalidations (and collects acks) for a set of sharers, removing
    /// their copies.
    fn mesi_invalidate_sharers(
        &mut self,
        home: TileId,
        line: LineAddr,
        sharers: &[CoreId],
        at: Stamp,
    ) {
        for s in sharers {
            self.net
                .send(home, s.tile(), MessageKind::Invalidation, 0, at);
            self.net
                .send(s.tile(), home, MessageKind::InvAck, 0, at + 1);
            if let Some(victim) = self.tiles[s.0].l1.remove(line) {
                self.l1_prof[s.0].invalidated_words(line.word_addr(WordIdx(0)), victim.valid);
            }
        }
    }

    /// Installs a full line into an L1, handling the eviction of the victim.
    #[allow(clippy::too_many_arguments)]
    fn mesi_fill_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        region: RegionId,
        state: MesiState,
        class: MessageClass,
        per_word_hops: f64,
        at: Stamp,
    ) {
        let line_words = self.line_words_mask();
        let already = self.tiles[core]
            .l1
            .peek(line)
            .filter(|e| matches!(&e.meta, L1Meta::Mesi { state, .. } if state.can_read()))
            .map(|e| e.valid)
            .unwrap_or(WordMask::EMPTY);

        let meta = L1Meta::Mesi { state, region };
        let victim = self.tiles[core].l1.insert(line, meta).1;
        if let Some(v) = victim {
            self.mesi_evict_l1(core, v, at);
        }
        if let Some(e) = self.tiles[core].l1.get(line) {
            e.meta = L1Meta::Mesi { state, region };
            e.valid = WordMask::FULL;
        }
        self.l1_prof[core].arrive_words(
            line.word_addr(WordIdx(0)),
            line_words,
            already,
            per_word_hops,
            class,
        );
    }

    /// Handles the eviction of an L1 line: dirty lines write back data, clean
    /// lines notify the directory with a control message.
    fn mesi_evict_l1(&mut self, core: usize, victim: LineEntry<L1Meta>, at: Stamp) {
        let L1Meta::Mesi { state, .. } = victim.meta else {
            return;
        };
        let me = TileId(core);
        let home = self.home_of(victim.line);
        let wpl = self.wpl();

        match state {
            MesiState::Modified => {
                let wb = self.net.send(me, home, MessageKind::L1Writeback, wpl, at);
                self.charge_writeback_data(wb.per_word_hops, victim.dirty.count(), wpl, false);
                if let Some(le) = self.tiles[home.0].l2.get(victim.line) {
                    le.dirty = le.dirty.union(victim.dirty);
                    le.valid = WordMask::FULL;
                }
            }
            MesiState::Exclusive | MesiState::Shared => {
                self.net
                    .send(me, home, MessageKind::CleanWritebackCtl, 0, at);
            }
            MesiState::Invalid => {}
        }
        let mut dir = self.mesi_dir(home, victim.line);
        dir.record_eviction(CoreId(core));
        self.set_mesi_dir(home, victim.line, dir);

        self.l1_prof[core].evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
    }

    /// Ensures an L2 entry exists for `line`, evicting (and recalling) a
    /// victim if needed.
    fn mesi_allocate_l2(
        &mut self,
        home: TileId,
        line: LineAddr,
        dir: DirectoryEntry,
        valid: WordMask,
        at: Stamp,
    ) {
        if !self.tiles[home.0].l2.contains(line) {
            let victim = self.tiles[home.0].l2.insert(line, L2Meta::Mesi(dir)).1;
            if let Some(v) = victim {
                self.mesi_evict_l2(home, v, at);
            }
        }
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            e.meta = L2Meta::Mesi(dir);
            e.valid = e.valid.union(valid);
        }
    }

    /// Evicts an L2 line: recalls every L1 copy (inclusive hierarchy) and
    /// writes dirty data back to memory.
    fn mesi_evict_l2(&mut self, home: TileId, victim: LineEntry<L2Meta>, at: Stamp) {
        let L2Meta::Mesi(dir) = victim.meta else {
            return;
        };
        let wpl = self.wpl();
        let mut dirty = victim.dirty;

        for holder in dir.holders() {
            self.net
                .send(home, holder.tile(), MessageKind::Invalidation, 0, at);
            self.net
                .send(holder.tile(), home, MessageKind::InvAck, 0, at + 1);
            if let Some(l1v) = self.tiles[holder.0].l1.remove(victim.line) {
                self.l1_prof[holder.0]
                    .invalidated_words(victim.line.word_addr(WordIdx(0)), l1v.valid);
                if !l1v.dirty.is_empty() {
                    let wb =
                        self.net
                            .send(holder.tile(), home, MessageKind::L1Writeback, wpl, at + 1);
                    self.charge_writeback_data(wb.per_word_hops, l1v.dirty.count(), wpl, false);
                    dirty = dirty.union(l1v.dirty);
                }
            }
        }

        if !dirty.is_empty() {
            let mc = self.mc_of(victim.line);
            let wb = self
                .net
                .send(home, mc, MessageKind::MemWriteback, wpl, at + 2);
            self.charge_writeback_data(wb.per_word_hops, dirty.count(), wpl, true);
            self.dram_access(mc, victim.line, true, wb.arrival);
        }

        self.l2_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
        self.mem_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
    }
}
