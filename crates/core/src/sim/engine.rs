//! The protocol-agnostic simulation engine.
//!
//! [`Engine`] owns every piece of machine state a coherence transaction
//! touches — tiles (caches, write-combining tables, Bloom banks, memory
//! controllers), the mesh with its flit-hop ledger, the waste profilers and
//! the per-core time attribution — plus the shared accounting helpers both
//! protocol families use. Protocol behavior lives entirely behind the
//! [`ProtocolExecutor`] trait: the scheduler in `sim.rs` resolves the
//! configured [`ProtocolKind`] to an executor through [`executor_for`] once,
//! then drives every load, store, barrier and end-of-run drain through the
//! trait without knowing which family it is talking to. Adding a protocol
//! family means implementing the trait and adding one registry row — the
//! simulator loop does not change.

use crate::machine::{L1Meta, Tile};
use crate::sim::SimConfig;
use crate::timing::ExecutionBreakdown;
use tw_noc::{model_for, Mesh, NetworkModel, PacketSize};
use tw_profiler::{CacheWasteProfiler, MemoryWasteProfiler, TrafficBreakdown};
use tw_types::{
    Addr, LineAddr, MessageClass, MessageKind, NetworkModelKind, NocConfig, ProtocolKind, RegionId,
    Stamp, SystemConfig, TileId, TraceOp, TrafficBucket,
};
use tw_workloads::Workload;

/// Recorder for the serviced reference stream of one run.
///
/// When a capture is armed, the scheduler appends every trace record it
/// services — in per-core service order, barriers included — so any run can
/// be persisted as a trace file and replayed as a first-class workload
/// (`Simulator::run_captured`). With the in-order core model each core's
/// serviced stream equals its input stream, which is exactly what makes a
/// captured trace a bit-exact replay artifact.
#[derive(Debug)]
pub(crate) struct TraceCapture {
    streams: Vec<Vec<TraceOp>>,
}

impl TraceCapture {
    /// An empty capture for `cores` cores.
    pub(crate) fn new(cores: usize) -> Self {
        TraceCapture {
            streams: vec![Vec::new(); cores],
        }
    }

    /// The recorded per-core streams.
    pub(crate) fn into_streams(self) -> Vec<Vec<TraceOp>> {
        self.streams
    }
}

/// The network: the canonical mesh, an optional flit-level timing overlay,
/// and the flit-hop ledger.
///
/// The canonical [`Mesh`] is always maintained — it advances the canonical
/// lane of every [`Stamp`] and owns the flit-hop ledger, so routes, traffic
/// and all state-ordering decisions are identical no matter which
/// [`NetworkModelKind`] the run configured. The overlay, resolved once at
/// construction through the [`NetworkModel`] registry (`model_for`),
/// advances only the timed lane: under the default analytic model the two
/// lanes coincide and the overlay is elided entirely (the canonical mesh
/// *is* the analytic model), keeping the fast path exactly as fast.
#[derive(Debug)]
pub(crate) struct Net {
    mesh: Mesh,
    timed: Option<Box<dyn NetworkModel>>,
    pub(crate) traffic: TrafficBreakdown,
    noc: NocConfig,
}

/// Outcome of sending one message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Delivery {
    /// Cycle the tail of the message arrives at its destination.
    pub arrival: Stamp,
    /// Flit-hops attributable to each data word carried (0 for local hops).
    pub per_word_hops: f64,
}

impl Net {
    pub(crate) fn new(noc: NocConfig, network: NetworkModelKind) -> Self {
        let timed = match network {
            // The canonical mesh already is the analytic model; a second
            // copy would only burn cycles producing identical numbers.
            NetworkModelKind::Analytic => None,
            kind => Some(model_for(kind, noc.clone())),
        };
        Net {
            mesh: Mesh::new(noc.clone()),
            timed,
            traffic: TrafficBreakdown::new(),
            noc,
        }
    }

    /// Sends a message, charging its control (and unfilled-data) flit-hops to
    /// the appropriate bucket. Data-word flit-hops are returned for the
    /// caller to attribute (to the waste profilers for responses, or directly
    /// to used/waste buckets for writebacks).
    pub(crate) fn send(
        &mut self,
        from: TileId,
        to: TileId,
        kind: MessageKind,
        data_words: usize,
        now: Stamp,
    ) -> Delivery {
        debug_assert!(
            data_words <= self.noc.max_data_words(),
            "oversized payload must be split by the caller"
        );
        let size = if data_words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&self.noc, data_words)
        };
        let hops = self.mesh.hops(from, to) as f64;
        let canon = self.mesh.send(from, to, size, now.canon);
        let timed = match &mut self.timed {
            None => now.timed + (canon - now.canon),
            Some(model) => {
                // The analytic reservation is the congestion lower bound
                // (DESIGN.md §11): the flit-level model may stall a message
                // further, never deliver it faster, so the timed lane runs
                // at or behind the canonical lane everywhere.
                let raw = model.send(from, to, size, now.timed);
                raw.max(now.timed + (canon - now.canon))
            }
        };
        let arrival = Stamp { canon, timed };

        let class = kind.class();
        let ctl_bucket = match kind {
            MessageKind::L1Writeback
            | MessageKind::MemWriteback
            | MessageKind::WritebackAndRegister => TrafficBucket::WbControl,
            _ if class == MessageClass::Overhead => TrafficBucket::Overhead,
            _ if kind.is_request() => TrafficBucket::ReqCtl,
            _ => TrafficBucket::RespCtl,
        };
        // Control flit(s) plus the unfilled fraction of the last data flit.
        let ctl_hops = hops * (size.control_flits as f64 + size.unfilled_data_flits(&self.noc));
        self.traffic.add(class, ctl_bucket, ctl_hops);

        let per_word_hops = if data_words == 0 {
            0.0
        } else {
            hops / self.noc.words_per_flit() as f64
        };
        // Data carried by overhead messages (Bloom-filter copies) is charged
        // directly; nobody profiles those words.
        if class == MessageClass::Overhead && data_words > 0 {
            self.traffic.add(
                class,
                TrafficBucket::Overhead,
                per_word_hops * data_words as f64,
            );
        }
        Delivery {
            arrival,
            per_word_hops,
        }
    }

    /// Total flit-hops so far.
    pub(crate) fn total_flit_hops(&self) -> f64 {
        self.mesh.total_flit_hops()
    }
}

/// All protocol-agnostic machine state one simulation run mutates.
///
/// The scheduler in `sim.rs` owns the per-core clocks and program counters;
/// everything a coherence transaction touches lives here so that a
/// [`ProtocolExecutor`] can be handed one `&mut Engine` and service a memory
/// reference end to end.
#[derive(Debug)]
pub(crate) struct Engine<'wl> {
    pub(crate) cfg: SimConfig,
    pub(crate) workload: &'wl Workload,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) net: Net,
    pub(crate) l1_prof: Vec<CacheWasteProfiler>,
    pub(crate) l2_prof: CacheWasteProfiler,
    pub(crate) mem_prof: MemoryWasteProfiler,
    pub(crate) time: Vec<ExecutionBreakdown>,
    /// Armed by `Simulator::run_captured`; `None` costs nothing on the
    /// normal path.
    pub(crate) capture: Option<TraceCapture>,
}

impl<'wl> Engine<'wl> {
    /// The protocol configuration being simulated.
    pub(crate) fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    /// Records one serviced trace record of `core` into the armed capture
    /// (no-op when no capture is armed).
    pub(crate) fn record_serviced(&mut self, core: usize, op: TraceOp) {
        if let Some(capture) = &mut self.capture {
            capture.streams[core].push(op);
        }
    }

    /// The simulated system parameters.
    pub(crate) fn system(&self) -> &SystemConfig {
        &self.cfg.system
    }

    /// Cache line size in bytes.
    pub(crate) fn line_bytes(&self) -> u64 {
        self.cfg.system.cache.line_bytes
    }

    /// Home L2 slice of a line.
    pub(crate) fn home_of(&self, line: LineAddr) -> TileId {
        self.cfg.system.home_tile(line.byte())
    }

    /// Memory controller responsible for a line.
    pub(crate) fn mc_of(&self, line: LineAddr) -> TileId {
        self.cfg.system.mc_tile(line.byte())
    }

    /// Performs a DRAM access at controller `mc` and returns its completion
    /// cycle.
    ///
    /// Row-buffer and queue state evolve on the canonical lane only, so
    /// DRAM behavior (access counts, row-hit rate) is identical across
    /// network models; the timed lane inherits the same service duration.
    pub(crate) fn dram_access(
        &mut self,
        mc: TileId,
        line: LineAddr,
        write: bool,
        at: Stamp,
    ) -> Stamp {
        let done = self.tiles[mc.0]
            .mc
            .as_mut()
            .expect("tile has a memory controller")
            .access(line, write, at.canon);
        Stamp {
            canon: done,
            timed: at.timed + (done - at.canon),
        }
    }

    /// Whether the L1 of `core` currently holds readable data for `addr`.
    pub(crate) fn l1_word_present(&self, core: usize, addr: Addr) -> bool {
        let line = LineAddr::containing(addr, self.cfg.system.cache.line_bytes);
        let w = addr.word_in_line(self.cfg.system.cache.line_bytes);
        match self.tiles[core].l1.peek(line) {
            Some(entry) => match &entry.meta {
                L1Meta::Mesi { state, .. } => state.can_read() && entry.valid.contains(w),
                L1Meta::Denovo(l) => l.word(w).can_read(),
            },
            None => false,
        }
    }

    /// Charges the data flit-hops of a writeback message: `used` words of the
    /// `carried` payload were dirty (useful), the rest is waste. `to_memory`
    /// selects the memory-side bucket pair over the L2-side pair.
    pub(crate) fn charge_writeback_data(
        &mut self,
        per_word_hops: f64,
        used: usize,
        carried: usize,
        to_memory: bool,
    ) {
        debug_assert!(used <= carried);
        let (used_bucket, waste_bucket) = if to_memory {
            (TrafficBucket::WbMemUsed, TrafficBucket::WbMemWaste)
        } else {
            (TrafficBucket::WbL2Used, TrafficBucket::WbL2Waste)
        };
        self.net.traffic.add(
            MessageClass::Writeback,
            used_bucket,
            per_word_hops * used as f64,
        );
        self.net.traffic.add(
            MessageClass::Writeback,
            waste_bucket,
            per_word_hops * (carried - used) as f64,
        );
    }
}

/// One protocol family's transaction behavior.
///
/// Executors are stateless (all mutable state lives in the [`Engine`]), so a
/// single `&'static` instance serves every concurrent simulation. The
/// [`ProtocolKind`] carried by the engine's config selects the per-variant
/// feature predicates inside a family; the registry maps every variant to
/// its family executor.
pub(crate) trait ProtocolExecutor: Sync {
    /// The family name (stable, used by the registry round-trip).
    fn family(&self) -> &'static str;

    /// Services one load, returning the timestamp the core may proceed at.
    fn load(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp;

    /// Services one store, returning the timestamp the core may proceed at.
    fn store(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp;

    /// Protocol actions at a barrier release (self-invalidation, table
    /// drains, ...). The default is no action.
    fn barrier_released(&self, eng: &mut Engine<'_>, at: Stamp) {
        let _ = (eng, at);
    }

    /// Protocol actions at the end of the run, before profilers are drained.
    /// The default is no action.
    fn finish(&self, eng: &mut Engine<'_>, at: Stamp) {
        let _ = (eng, at);
    }
}

impl std::fmt::Debug for dyn ProtocolExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProtocolExecutor({})", self.family())
    }
}

/// One row of the protocol registry.
pub(crate) struct RegistryEntry {
    /// The protocol variant.
    pub(crate) kind: ProtocolKind,
    /// The executor servicing it.
    pub(crate) executor: &'static dyn ProtocolExecutor,
}

static MESI_EXECUTOR: super::exec_mesi::MesiExecutor = super::exec_mesi::MesiExecutor;
static DENOVO_EXECUTOR: super::exec_denovo::DenovoExecutor = super::exec_denovo::DenovoExecutor;

/// Every protocol variant of the paper mapped to its executor, in figure
/// order. This is the single place protocol dispatch is decided; `sim.rs`
/// never branches on the protocol family.
pub(crate) static REGISTRY: [RegistryEntry; 9] = [
    RegistryEntry {
        kind: ProtocolKind::Mesi,
        executor: &MESI_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::MMemL1,
        executor: &MESI_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DeNovo,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DFlexL1,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DValidateL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DMemL1,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DFlexL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DBypL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DBypFull,
        executor: &DENOVO_EXECUTOR,
    },
];

/// Resolves a protocol variant to its executor.
///
/// # Panics
///
/// Panics if `kind` has no registry row — adding a [`ProtocolKind`] variant
/// without registering an executor is a bug the registry unit test catches.
pub(crate) fn executor_for(kind: ProtocolKind) -> &'static dyn ProtocolExecutor {
    REGISTRY
        .iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("no executor registered for {kind}"))
        .executor
}

/// Resolves a protocol by its figure name (`ProtocolKind::name`), the
/// inverse direction of the registry.
pub(crate) fn kind_by_name(name: &str) -> Option<ProtocolKind> {
    REGISTRY
        .iter()
        .map(|e| e.kind)
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_resolves_to_an_executor() {
        for &kind in &ProtocolKind::ALL {
            let exec = executor_for(kind);
            let family = exec.family();
            if kind.is_mesi() {
                assert_eq!(family, "MESI", "{kind} must resolve to the MESI family");
            } else {
                assert_eq!(family, "DeNovo", "{kind} must resolve to the DeNovo family");
            }
        }
    }

    #[test]
    fn registry_round_trips_every_name() {
        for &kind in &ProtocolKind::ALL {
            assert_eq!(
                kind_by_name(kind.name()),
                Some(kind),
                "{kind} must be recoverable from its name"
            );
            // Case-insensitive, matching the CLI parsers.
            assert_eq!(kind_by_name(&kind.name().to_lowercase()), Some(kind));
        }
        assert_eq!(kind_by_name("NotAProtocol"), None);
    }

    #[test]
    fn registry_covers_all_variants_exactly_once() {
        assert_eq!(REGISTRY.len(), ProtocolKind::ALL.len());
        for &kind in &ProtocolKind::ALL {
            assert_eq!(
                REGISTRY.iter().filter(|e| e.kind == kind).count(),
                1,
                "{kind} must appear exactly once in the registry"
            );
        }
    }
}
