//! The protocol-agnostic simulation engine.
//!
//! [`Engine`] owns every piece of machine state a coherence transaction
//! touches — tiles (caches, write-combining tables, Bloom banks, memory
//! controllers), the mesh with its flit-hop ledger, the waste profilers and
//! the per-core time attribution — plus the shared accounting helpers both
//! protocol families use. Protocol behavior lives entirely behind the
//! [`ProtocolExecutor`] trait: the scheduler in `sim.rs` resolves the
//! configured [`ProtocolKind`] to an executor through [`executor_for`] once,
//! then drives every load, store, barrier and end-of-run drain through the
//! trait without knowing which family it is talking to. Adding a protocol
//! family means implementing the trait and adding one registry row — the
//! simulator loop does not change.

use crate::machine::{L1Meta, Tile};
use crate::sim::SimConfig;
use crate::timing::ExecutionBreakdown;
use tw_noc::{model_for, Mesh, NetworkModel, PacketSize};
use tw_profiler::{CacheWasteProfiler, MemoryWasteProfiler, TrafficBreakdown};
use tw_types::{
    Addr, LineAddr, MessageClass, MessageKind, NetworkModelKind, NocConfig, ProtocolKind, RegionId,
    RegionTable, Stamp, SystemConfig, TileId, TraceOp, TrafficBucket, WordMask,
};
use tw_workloads::Workload;

/// Recorder for the serviced reference stream of one run.
///
/// When a capture is armed, the scheduler appends every trace record it
/// services — in per-core service order, barriers included — so any run can
/// be persisted as a trace file and replayed as a first-class workload
/// (`Simulator::run_captured`). With the in-order core model each core's
/// serviced stream equals its input stream, which is exactly what makes a
/// captured trace a bit-exact replay artifact.
#[derive(Debug)]
pub(crate) struct TraceCapture {
    streams: Vec<Vec<TraceOp>>,
}

impl TraceCapture {
    /// An empty capture for `cores` cores.
    pub(crate) fn new(cores: usize) -> Self {
        TraceCapture {
            streams: vec![Vec::new(); cores],
        }
    }

    /// The recorded per-core streams.
    pub(crate) fn into_streams(self) -> Vec<Vec<TraceOp>> {
        self.streams
    }
}

/// The network: the canonical mesh, an optional flit-level timing overlay,
/// and the flit-hop ledger.
///
/// The canonical [`Mesh`] is always maintained — it advances the canonical
/// lane of every [`Stamp`] and owns the flit-hop ledger, so routes, traffic
/// and all state-ordering decisions are identical no matter which
/// [`NetworkModelKind`] the run configured. The overlay, resolved once at
/// construction through the [`NetworkModel`] registry (`model_for`),
/// advances only the timed lane: under the default analytic model the two
/// lanes coincide and the overlay is elided entirely (the canonical mesh
/// *is* the analytic model), keeping the fast path exactly as fast.
#[derive(Debug)]
pub(crate) struct Net {
    mesh: Mesh,
    timed: Option<Box<dyn NetworkModel>>,
    pub(crate) traffic: TrafficBreakdown,
    noc: NocConfig,
    /// `noc.words_per_flit()` as an `f64`, cached off the per-message path.
    words_per_flit: f64,
    /// Messages sent, for flight-recorder spans. Observer lane only.
    pub(crate) sends: u64,
}

/// Outcome of sending one message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Delivery {
    /// Cycle the tail of the message arrives at its destination.
    pub arrival: Stamp,
    /// Flit-hops attributable to each data word carried (0 for local hops).
    pub per_word_hops: f64,
}

impl Net {
    pub(crate) fn new(noc: NocConfig, network: NetworkModelKind) -> Self {
        let timed = match network {
            // The canonical mesh already is the analytic model; a second
            // copy would only burn cycles producing identical numbers.
            NetworkModelKind::Analytic => None,
            kind => Some(model_for(kind, noc.clone())),
        };
        Net {
            mesh: Mesh::new(noc.clone()),
            timed,
            traffic: TrafficBreakdown::new(),
            words_per_flit: noc.words_per_flit() as f64,
            noc,
            sends: 0,
        }
    }

    /// Sends a message, charging its control (and unfilled-data) flit-hops to
    /// the appropriate bucket. Data-word flit-hops are returned for the
    /// caller to attribute (to the waste profilers for responses, or directly
    /// to used/waste buckets for writebacks).
    pub(crate) fn send(
        &mut self,
        from: TileId,
        to: TileId,
        kind: MessageKind,
        data_words: usize,
        now: Stamp,
    ) -> Delivery {
        debug_assert!(
            data_words <= self.noc.max_data_words(),
            "oversized payload must be split by the caller"
        );
        self.sends += 1;
        let size = if data_words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&self.noc, data_words)
        };
        let (canon, hops) = self.mesh.send_counted(from, to, size, now.canon);
        let hops = hops as f64;
        let timed = match &mut self.timed {
            None => now.timed + (canon - now.canon),
            Some(model) => {
                // The analytic reservation is the congestion lower bound
                // (DESIGN.md §11): the flit-level model may stall a message
                // further, never deliver it faster, so the timed lane runs
                // at or behind the canonical lane everywhere.
                let raw = model.send(from, to, size, now.timed);
                raw.max(now.timed + (canon - now.canon))
            }
        };
        let arrival = Stamp { canon, timed };

        let class = kind.class();
        let ctl_bucket = match kind {
            MessageKind::L1Writeback
            | MessageKind::MemWriteback
            | MessageKind::WritebackAndRegister => TrafficBucket::WbControl,
            _ if class == MessageClass::Overhead => TrafficBucket::Overhead,
            _ if kind.is_request() => TrafficBucket::ReqCtl,
            _ => TrafficBucket::RespCtl,
        };
        // Control flit(s) plus the unfilled fraction of the last data flit.
        let ctl_hops = hops * (size.control_flits as f64 + size.unfilled_data_flits(&self.noc));
        self.traffic.add(class, ctl_bucket, ctl_hops);

        let per_word_hops = if data_words == 0 {
            0.0
        } else {
            hops / self.words_per_flit
        };
        // Data carried by overhead messages (Bloom-filter copies) is charged
        // directly; nobody profiles those words.
        if class == MessageClass::Overhead && data_words > 0 {
            self.traffic.add(
                class,
                TrafficBucket::Overhead,
                per_word_hops * data_words as f64,
            );
        }
        Delivery {
            arrival,
            per_word_hops,
        }
    }

    /// Total flit-hops so far.
    pub(crate) fn total_flit_hops(&self) -> f64 {
        self.mesh.total_flit_hops()
    }

    /// Peak event-queue depth of the timed overlay (0 for the analytic
    /// model, which has no event loop).
    pub(crate) fn queue_high_water(&self) -> usize {
        self.timed.as_ref().map_or(0, |m| m.queue_high_water())
    }
}

/// Geometry and region facts resolved once at construction so the per-op
/// hot path never divides by runtime configuration values, allocates the
/// memory-controller list, or linearly scans the region table.
///
/// Every accessor computes exactly the value its `SystemConfig` /
/// `RegionTable` counterpart would — power-of-two strength reductions only,
/// verified by the `geom_cache_matches_config` test — so caching here cannot
/// move a single message or waste classification.
#[derive(Debug)]
pub(crate) struct GeomCache {
    tiles: usize,
    tiles_pow2: bool,
    tiles_mask: usize,
    /// `log2(line_bytes)`; line size is validated to be a power of two.
    line_shift: u32,
    row_bytes: u64,
    row_pow2: bool,
    row_shift: u32,
    /// The four corner memory controllers, in `memory_controller_tiles`
    /// order (row index modulo 4 picks the controller, exactly as
    /// `SystemConfig::mc_tile` does).
    mcs: [TileId; 4],
    /// `cache.words_per_line()`.
    pub(crate) words_per_line: usize,
    /// Per-region `written_in_parallel_phases`, indexed by `RegionId`
    /// (`true` for ids absent from the table, matching `RegionTable::get`'s
    /// `unwrap_or(true)` call sites).
    region_parallel: Vec<bool>,
    /// Per-region L2-bypass annotation, indexed by `RegionId` (`false` for
    /// absent ids, matching `RegionTable::bypasses_l2`).
    region_bypass: Vec<bool>,
}

impl GeomCache {
    pub(crate) fn new(system: &SystemConfig, regions: &RegionTable) -> Self {
        let tiles = system.tiles();
        let row_bytes = system.dram.row_bytes;
        let mcs_v = system.memory_controller_tiles();
        debug_assert_eq!(mcs_v.len(), 4, "controllers sit on the four corners");

        let slots = regions
            .iter()
            .map(|r| r.id.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut region_parallel = vec![true; slots];
        let mut region_bypass = vec![false; slots];
        let mut seen = vec![false; slots];
        for r in regions.iter() {
            let i = r.id.0 as usize;
            if seen[i] {
                continue; // `RegionTable::get` returns the first match
            }
            seen[i] = true;
            region_parallel[i] = r.written_in_parallel_phases;
            region_bypass[i] = r.bypass.bypasses_l2();
        }

        GeomCache {
            tiles,
            tiles_pow2: tiles.is_power_of_two(),
            tiles_mask: tiles.wrapping_sub(1),
            line_shift: system.cache.line_bytes.trailing_zeros(),
            row_bytes,
            row_pow2: row_bytes.is_power_of_two(),
            row_shift: row_bytes.trailing_zeros(),
            mcs: [mcs_v[0], mcs_v[1], mcs_v[2], mcs_v[3]],
            words_per_line: system.cache.words_per_line(),
            region_parallel,
            region_bypass,
        }
    }

    /// Same mapping as [`SystemConfig::home_tile`].
    #[inline(always)]
    fn home_of(&self, line: LineAddr) -> TileId {
        let line_no = (line.byte() >> self.line_shift) as usize;
        TileId(if self.tiles_pow2 {
            line_no & self.tiles_mask
        } else {
            line_no % self.tiles
        })
    }

    /// Same mapping as [`SystemConfig::mc_tile`].
    #[inline(always)]
    fn mc_of(&self, line: LineAddr) -> TileId {
        let row = if self.row_pow2 {
            line.byte() >> self.row_shift
        } else {
            line.byte() / self.row_bytes
        };
        self.mcs[(row as usize) & 3]
    }

    /// Whether `region` may be written during parallel phases (`true` for
    /// ids the table does not describe).
    #[inline(always)]
    pub(crate) fn region_parallel(&self, region: RegionId) -> bool {
        self.region_parallel
            .get(region.0 as usize)
            .copied()
            .unwrap_or(true)
    }

    /// Same answer as [`RegionTable::bypasses_l2`].
    #[inline(always)]
    pub(crate) fn region_bypasses_l2(&self, region: RegionId) -> bool {
        self.region_bypass
            .get(region.0 as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// All protocol-agnostic machine state one simulation run mutates.
///
/// The scheduler in `sim.rs` owns the per-core clocks and program counters;
/// everything a coherence transaction touches lives here so that a
/// [`ProtocolExecutor`] can be handed one `&mut Engine` and service a memory
/// reference end to end.
#[derive(Debug)]
pub(crate) struct Engine<'wl> {
    pub(crate) cfg: SimConfig,
    pub(crate) workload: &'wl Workload,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) net: Net,
    pub(crate) l1_prof: Vec<CacheWasteProfiler>,
    pub(crate) l2_prof: CacheWasteProfiler,
    pub(crate) mem_prof: MemoryWasteProfiler,
    pub(crate) time: Vec<ExecutionBreakdown>,
    /// Geometry and region facts resolved once at construction.
    pub(crate) geo: GeomCache,
    /// Armed by `Simulator::run_captured`; `None` costs nothing on the
    /// normal path.
    pub(crate) capture: Option<TraceCapture>,
}

impl<'wl> Engine<'wl> {
    /// The protocol configuration being simulated.
    pub(crate) fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    /// Records one serviced trace record of `core` into the armed capture
    /// (no-op when no capture is armed).
    pub(crate) fn record_serviced(&mut self, core: usize, op: TraceOp) {
        if let Some(capture) = &mut self.capture {
            capture.streams[core].push(op);
        }
    }

    /// The simulated system parameters.
    pub(crate) fn system(&self) -> &SystemConfig {
        &self.cfg.system
    }

    /// Cache line size in bytes.
    pub(crate) fn line_bytes(&self) -> u64 {
        self.cfg.system.cache.line_bytes
    }

    /// Words per cache line.
    #[inline(always)]
    pub(crate) fn wpl(&self) -> usize {
        self.geo.words_per_line
    }

    /// Mask of every word in a line (`first_n(wpl)`), for the batched
    /// profiler entry points.
    #[inline(always)]
    pub(crate) fn line_words_mask(&self) -> WordMask {
        WordMask::first_n(self.geo.words_per_line)
    }

    /// Home L2 slice of a line (cached [`SystemConfig::home_tile`]).
    #[inline(always)]
    pub(crate) fn home_of(&self, line: LineAddr) -> TileId {
        self.geo.home_of(line)
    }

    /// Memory controller responsible for a line (cached
    /// [`SystemConfig::mc_tile`]).
    #[inline(always)]
    pub(crate) fn mc_of(&self, line: LineAddr) -> TileId {
        self.geo.mc_of(line)
    }

    /// Performs a DRAM access at controller `mc` and returns its completion
    /// cycle.
    ///
    /// Row-buffer and queue state evolve on the canonical lane only, so
    /// DRAM behavior (access counts, row-hit rate) is identical across
    /// network models; the timed lane inherits the same service duration.
    pub(crate) fn dram_access(
        &mut self,
        mc: TileId,
        line: LineAddr,
        write: bool,
        at: Stamp,
    ) -> Stamp {
        let done = self.tiles[mc.0]
            .mc
            .as_mut()
            .expect("tile has a memory controller")
            .access(line, write, at.canon);
        Stamp {
            canon: done,
            timed: at.timed + (done - at.canon),
        }
    }

    /// Whether the L1 of `core` holds readable data for `addr`, refreshing
    /// the line's LRU position on a hit (single tag scan: equivalent to the
    /// old presence `peek` followed by a `get` on the hit path).
    pub(crate) fn l1_load_hit(&mut self, core: usize, addr: Addr) -> bool {
        let lb = self.cfg.system.cache.line_bytes;
        let line = LineAddr::containing(addr, lb);
        let w = addr.word_in_line(lb);
        self.tiles[core]
            .l1
            .get_where(line, |entry| match &entry.meta {
                L1Meta::Mesi { state, .. } => state.can_read() && entry.valid.contains(w),
                L1Meta::Denovo(l) => l.word(w).can_read(),
                L1Meta::Dragon { state, .. } => state.can_read() && entry.valid.contains(w),
            })
            .is_some()
    }

    /// Charges the data flit-hops of a writeback message: `used` words of the
    /// `carried` payload were dirty (useful), the rest is waste. `to_memory`
    /// selects the memory-side bucket pair over the L2-side pair.
    pub(crate) fn charge_writeback_data(
        &mut self,
        per_word_hops: f64,
        used: usize,
        carried: usize,
        to_memory: bool,
    ) {
        debug_assert!(used <= carried);
        let (used_bucket, waste_bucket) = if to_memory {
            (TrafficBucket::WbMemUsed, TrafficBucket::WbMemWaste)
        } else {
            (TrafficBucket::WbL2Used, TrafficBucket::WbL2Waste)
        };
        self.net.traffic.add(
            MessageClass::Writeback,
            used_bucket,
            per_word_hops * used as f64,
        );
        self.net.traffic.add(
            MessageClass::Writeback,
            waste_bucket,
            per_word_hops * (carried - used) as f64,
        );
    }
}

/// One protocol family's transaction behavior.
///
/// Executors are stateless (all mutable state lives in the [`Engine`]), so a
/// single `&'static` instance serves every concurrent simulation. The
/// [`ProtocolKind`] carried by the engine's config selects the per-variant
/// feature predicates inside a family; the registry maps every variant to
/// its family executor.
pub(crate) trait ProtocolExecutor: Sync {
    /// The family name (stable, used by the registry round-trip).
    fn family(&self) -> &'static str;

    /// Services one load, returning the timestamp the core may proceed at.
    fn load(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp;

    /// Services one store, returning the timestamp the core may proceed at.
    fn store(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp;

    /// Protocol actions at a barrier release (self-invalidation, table
    /// drains, ...). The default is no action.
    fn barrier_released(&self, eng: &mut Engine<'_>, at: Stamp) {
        let _ = (eng, at);
    }

    /// Protocol actions at the end of the run, before profilers are drained.
    /// The default is no action.
    fn finish(&self, eng: &mut Engine<'_>, at: Stamp) {
        let _ = (eng, at);
    }
}

impl std::fmt::Debug for dyn ProtocolExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProtocolExecutor({})", self.family())
    }
}

/// One row of the protocol registry.
pub(crate) struct RegistryEntry {
    /// The protocol variant.
    pub(crate) kind: ProtocolKind,
    /// The executor servicing it.
    pub(crate) executor: &'static dyn ProtocolExecutor,
}

static MESI_EXECUTOR: super::exec_mesi::MesiExecutor = super::exec_mesi::MesiExecutor;
static DENOVO_EXECUTOR: super::exec_denovo::DenovoExecutor = super::exec_denovo::DenovoExecutor;
static DRAGON_EXECUTOR: super::exec_dragon::DragonExecutor = super::exec_dragon::DragonExecutor;

/// Every registered protocol variant mapped to its executor, in figure
/// order (the paper's nine plus the Dragon write-update extension). This is
/// the single place protocol dispatch is decided; `sim.rs` never branches on
/// the protocol family.
pub(crate) static REGISTRY: [RegistryEntry; 10] = [
    RegistryEntry {
        kind: ProtocolKind::Mesi,
        executor: &MESI_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::MMemL1,
        executor: &MESI_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DeNovo,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DFlexL1,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DValidateL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DMemL1,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DFlexL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DBypL2,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::DBypFull,
        executor: &DENOVO_EXECUTOR,
    },
    RegistryEntry {
        kind: ProtocolKind::Dragon,
        executor: &DRAGON_EXECUTOR,
    },
];

/// Resolves a protocol variant to its executor.
///
/// # Panics
///
/// Panics if `kind` has no registry row — adding a [`ProtocolKind`] variant
/// without registering an executor is a bug the registry unit test catches.
pub(crate) fn executor_for(kind: ProtocolKind) -> &'static dyn ProtocolExecutor {
    REGISTRY
        .iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("no executor registered for {kind}"))
        .executor
}

/// Resolves a protocol by its figure name (`ProtocolKind::name`), the
/// inverse direction of the registry.
pub(crate) fn kind_by_name(name: &str) -> Option<ProtocolKind> {
    REGISTRY
        .iter()
        .map(|e| e.kind)
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_resolves_to_an_executor() {
        for &kind in &ProtocolKind::ALL {
            let exec = executor_for(kind);
            let family = exec.family();
            if kind.is_mesi() {
                assert_eq!(family, "MESI", "{kind} must resolve to the MESI family");
            } else if kind.is_update_based() {
                assert_eq!(family, "Dragon", "{kind} must resolve to the Dragon family");
            } else {
                assert_eq!(family, "DeNovo", "{kind} must resolve to the DeNovo family");
            }
        }
    }

    #[test]
    fn registry_round_trips_every_name() {
        for &kind in &ProtocolKind::ALL {
            assert_eq!(
                kind_by_name(kind.name()),
                Some(kind),
                "{kind} must be recoverable from its name"
            );
            // Case-insensitive, matching the CLI parsers.
            assert_eq!(kind_by_name(&kind.name().to_lowercase()), Some(kind));
        }
        assert_eq!(kind_by_name("NotAProtocol"), None);
    }

    #[test]
    fn geom_cache_matches_config() {
        let system = SystemConfig::default();
        let regions = RegionTable::new();
        let geo = GeomCache::new(&system, &regions);
        let lb = system.cache.line_bytes;
        for n in (0..4096u64).chain([1 << 20, (1 << 20) + 7 * 64]) {
            let line = LineAddr::from_aligned(n * lb);
            assert_eq!(geo.home_of(line), system.home_tile(line.byte()), "{line}");
            assert_eq!(geo.mc_of(line), system.mc_tile(line.byte()), "{line}");
        }
        assert_eq!(geo.words_per_line, system.cache.words_per_line());
        // Region defaults for ids the table does not describe.
        assert!(geo.region_parallel(RegionId(3)));
        assert!(!geo.region_bypasses_l2(RegionId(3)));
    }

    #[test]
    fn geom_cache_mirrors_region_annotations() {
        use tw_types::{BypassKind, RegionInfo};
        let mut regions = RegionTable::new();
        let mut streamed = RegionInfo::plain(RegionId(2), "edges", Addr::new(0), 4096);
        streamed.bypass = BypassKind::StreamingOncePerPhase;
        streamed.written_in_parallel_phases = false;
        regions.insert(streamed);
        regions.insert(RegionInfo::plain(
            RegionId(5),
            "nodes",
            Addr::new(8192),
            4096,
        ));
        let geo = GeomCache::new(&SystemConfig::default(), &regions);
        for id in [RegionId(0), RegionId(2), RegionId(5), RegionId(9)] {
            assert_eq!(
                geo.region_bypasses_l2(id),
                regions.bypasses_l2(id),
                "bypass {id:?}"
            );
            assert_eq!(
                geo.region_parallel(id),
                regions
                    .get(id)
                    .map(|r| r.written_in_parallel_phases)
                    .unwrap_or(true),
                "parallel {id:?}"
            );
        }
    }

    #[test]
    fn registry_covers_all_variants_exactly_once() {
        assert_eq!(REGISTRY.len(), ProtocolKind::ALL.len());
        for &kind in &ProtocolKind::ALL {
            assert_eq!(
                REGISTRY.iter().filter(|e| e.kind == kind).count(),
                1,
                "{kind} must appear exactly once in the registry"
            );
        }
    }
}
