//! Dragon write-update transaction execution, behind the
//! [`ProtocolExecutor`] trait. All machine state lives in the shared
//! [`Engine`]; this file contains only the Dragon transaction logic.
//!
//! Dragon runs on the same inclusive-L2 directory substrate as MESI — the
//! home slice serializes transactions and tracks copies — but a store to a
//! shared line *updates* the sharers instead of invalidating them: the
//! written word is announced to the home ([`MessageKind::UpdateReq`],
//! control-only; at word granularity the value rides the request flit, like
//! an upgrade), and the home multicasts it to every other sharer as an
//! [`MessageKind::UpdateData`] message carrying one data word. Sharers keep
//! their copies forever — the sharer set never shrinks on a write — so
//! read-after-remote-write never re-fetches, at the price of pushing words
//! to cores that may never read them. Those pushed-but-unread words are the
//! *update waste* class the profilers report
//! (`tw_profiler::WasteCategory::Update`).
//!
//! Dirty-ownership choreography: the last writer holds the line in `Sm`/`M`
//! and owes the writeback. When ownership transfers (another core writes, or
//! another core's miss is serviced while an owner exists), the previous
//! owner first flushes its dirty words to the home L2 — the same
//! downgrade-flush MESI performs — so exactly one L1 copy is ever dirty and
//! eviction accounting stays identical in shape to MESI's.

use super::engine::{Engine, ProtocolExecutor};
use crate::machine::{L1Meta, L2Meta};
use crate::timing::TimeClass;
use tw_mem::LineEntry;
use tw_protocols::{DragonDirectory, DragonState};
use tw_types::{
    Addr, CoreId, LineAddr, MessageClass, MessageKind, RegionId, Stamp, TileId, WordIdx, WordMask,
};

/// Executor for the Dragon write-update protocol.
pub(crate) struct DragonExecutor;

impl ProtocolExecutor for DragonExecutor {
    fn family(&self) -> &'static str {
        "Dragon"
    }

    fn load(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.dragon_load(core, addr, region, now)
    }

    fn store(
        &self,
        eng: &mut Engine<'_>,
        core: usize,
        addr: Addr,
        region: RegionId,
        now: Stamp,
    ) -> Stamp {
        eng.dragon_store(core, addr, region, now)
    }

    // Like MESI, Dragon has no barrier-time or end-of-run protocol actions:
    // the directory is kept coherent transaction by transaction (updates
    // replace the self-invalidations DeNovo performs at barriers).
}

impl Engine<'_> {
    fn dragon_dir(&self, home: TileId, line: LineAddr) -> DragonDirectory {
        match self.tiles[home.0].l2.peek(line).map(|e| &e.meta) {
            Some(L2Meta::Dragon(d)) => *d,
            _ => DragonDirectory::default(),
        }
    }

    fn set_dragon_dir(&mut self, home: TileId, line: LineAddr, dir: DragonDirectory) {
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            e.meta = L2Meta::Dragon(dir);
        }
    }

    fn dragon_l1_state(&self, core: usize, line: LineAddr) -> DragonState {
        match self.tiles[core].l1.peek(line).map(|e| &e.meta) {
            Some(L1Meta::Dragon { state, .. }) => *state,
            _ => DragonState::Invalid,
        }
    }

    /// Executes a load under Dragon, returning the cycle at which the core
    /// may proceed.
    fn dragon_load(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let l1_hit_cycles = self.system().timing.l1_hit_cycles;

        if self.l1_load_hit(core, addr) {
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);
            self.time[core].add(TimeClass::Compute, l1_hit_cycles);
            return now + l1_hit_cycles;
        }

        let me = TileId(core);
        let home = self.home_of(line);
        let l2_hit = self.system().timing.l2_hit_cycles;
        let occupancy = self.system().timing.l2_occupancy_cycles;

        let req = self.net.send(me, home, MessageKind::LoadReq, 0, now);
        let t_home = req.arrival + occupancy;

        let l2_has_data = self.tiles[home.0]
            .l2
            .peek(line)
            .map(|e| !e.valid.is_empty())
            .unwrap_or(false);

        if l2_has_data {
            // ---- served on chip -------------------------------------------
            let mut dir = self.dragon_dir(home, line);
            let exclusive = dir.grants_exclusive(CoreId(core));
            let supplier = dir.record_read(CoreId(core));

            let delivery = if let Some(owner) = supplier {
                // Forward the read to the dirty holder; it supplies the line
                // cache-to-cache and *keeps* its dirty copy (M demotes to Sm
                // — still the owner, still owing the writeback; no flush, no
                // invalidation).
                let fwd = self
                    .net
                    .send(home, owner.tile(), MessageKind::LoadReq, 0, t_home);
                let t_owner = fwd.arrival + 1;
                if let Some(e) = self.tiles[owner.0].l1.get(line) {
                    if let L1Meta::Dragon { state, .. } = &mut e.meta {
                        if *state == DragonState::Modified {
                            *state = DragonState::SharedModified;
                        }
                    }
                }
                self.net
                    .send(owner.tile(), me, MessageKind::DataToL1, self.wpl(), t_owner)
            } else {
                // Serve straight from the L2 slice.
                self.l2_prof
                    .loaded_words(line.word_addr(WordIdx(0)), self.line_words_mask());
                self.tiles[home.0].l2.get(line); // refresh LRU
                self.net
                    .send(home, me, MessageKind::DataToL1, self.wpl(), t_home + l2_hit)
            };

            self.set_dragon_dir(home, line, dir);
            self.net
                .send(me, home, MessageKind::DirUnblock, 0, delivery.arrival);

            self.dragon_fill_l1(
                core,
                line,
                region,
                DragonState::fill_for_read(exclusive),
                MessageClass::Load,
                delivery.per_word_hops,
                delivery.arrival,
            );
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);
            self.time[core].add(TimeClass::OnChipHit, delivery.arrival.since(now));
            delivery.arrival
        } else {
            // ---- L2 miss: fetch from memory --------------------------------
            let mc = self.mc_of(line);
            let wpl = self.wpl();
            let to_mc = self.net.send(home, mc, MessageKind::MemReadReq, 0, t_home);
            let dram_done = self.dram_access(mc, line, false, to_mc.arrival);

            let d2 = self
                .net
                .send(mc, home, MessageKind::DataToL2, wpl, dram_done);
            let lw = self.line_words_mask();
            self.mem_prof
                .fetched_words(line.word_addr(WordIdx(0)), lw, false, d2.per_word_hops);
            self.l2_prof.arrive_words(
                line.word_addr(WordIdx(0)),
                lw,
                WordMask::EMPTY,
                d2.per_word_hops,
                MessageClass::Load,
            );
            let d1 = self
                .net
                .send(home, me, MessageKind::DataToL1, wpl, d2.arrival + l2_hit);
            self.net
                .send(me, home, MessageKind::DirUnblock, 0, d1.arrival);

            let mut dir = DragonDirectory::default();
            let exclusive = dir.grants_exclusive(CoreId(core));
            dir.record_read(CoreId(core));
            self.dragon_allocate_l2(home, line, dir, WordMask::FULL, now);

            self.dragon_fill_l1(
                core,
                line,
                region,
                DragonState::fill_for_read(exclusive),
                MessageClass::Load,
                d1.per_word_hops,
                d1.arrival,
            );
            self.l1_prof[core].loaded(addr);
            self.mem_prof.loaded(addr);

            self.time[core].add(TimeClass::ToMc, to_mc.arrival.since(now));
            self.time[core].add(TimeClass::Mem, dram_done.since(to_mc.arrival));
            self.time[core].add(TimeClass::FromMc, d1.arrival.since(dram_done));
            d1.arrival
        }
    }

    /// Executes a store under Dragon. Stores retire into the non-blocking
    /// write buffer, so the core is charged only one busy cycle.
    fn dragon_store(&mut self, core: usize, addr: Addr, region: RegionId, now: Stamp) -> Stamp {
        let lb = self.line_bytes();
        let line = LineAddr::containing(addr, lb);
        let w = addr.word_in_line(lb);
        let me = TileId(core);
        let home = self.home_of(line);
        let occupancy = self.system().timing.l2_occupancy_cycles;
        let wpl = self.wpl();
        let busy = now + 1;
        self.time[core].add(TimeClass::Compute, 1);

        match self.dragon_l1_state(core, line) {
            DragonState::Modified | DragonState::Exclusive => {
                // Sole copy: silent E→M upgrade, exactly as under MESI.
                if let Some(e) = self.tiles[core].l1.get(line) {
                    if let L1Meta::Dragon { state, .. } = &mut e.meta {
                        *state = DragonState::Modified;
                    }
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
            DragonState::SharedClean | DragonState::SharedModified => {
                // The update transaction — where Dragon diverges from MESI's
                // invalidating upgrade. Announce the write to the home; the
                // home pushes the written word to every other sharer.
                let req = self.net.send(me, home, MessageKind::UpdateReq, 0, now);
                let t_home = req.arrival + occupancy;
                let mut dir = self.dragon_dir(home, line);
                let (prev_owner, updated) = dir.record_write(CoreId(core));
                if let Some(o) = prev_owner {
                    self.dragon_flush_owner(o, line, t_home);
                }
                self.dragon_push_update(home, line, addr, &updated, t_home + 1);
                // The home's inclusive copy absorbs the word too (the writer
                // still owes the writeback; the L2 copy stays clean).
                if let Some(le) = self.tiles[home.0].l2.get(line) {
                    le.valid.insert(w);
                }
                self.set_dragon_dir(home, line, dir);
                self.net
                    .send(home, me, MessageKind::StoreAck, 0, t_home + 1);
                self.net
                    .send(me, home, MessageKind::DirUnblock, 0, t_home + 2);
                if let Some(e) = self.tiles[core].l1.get(line) {
                    if let L1Meta::Dragon { state, .. } = &mut e.meta {
                        *state = DragonState::after_local_write(!updated.is_empty());
                    }
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
            DragonState::Invalid => {
                // Write miss: fetch the line (fetch-on-write, like MESI) —
                // but existing sharers are updated, never invalidated.
                let req = self.net.send(me, home, MessageKind::StoreReq, 0, now);
                let t_home = req.arrival + occupancy;
                let l2_has_data = self.tiles[home.0]
                    .l2
                    .peek(line)
                    .map(|e| !e.valid.is_empty())
                    .unwrap_or(false);

                if l2_has_data {
                    let mut dir = self.dragon_dir(home, line);
                    let (prev_owner, updated) = dir.record_write(CoreId(core));

                    let delivery = if let Some(owner) = prev_owner {
                        // The dirty holder flushes to the L2 (ownership is
                        // transferring) and supplies the line cache-to-cache;
                        // it keeps its copy as a sharer.
                        let fwd =
                            self.net
                                .send(home, owner.tile(), MessageKind::StoreReq, 0, t_home);
                        let t_owner = fwd.arrival + 1;
                        self.dragon_flush_owner(owner, line, t_owner);
                        self.net
                            .send(owner.tile(), me, MessageKind::DataToL1, wpl, t_owner)
                    } else {
                        self.l2_prof
                            .loaded_words(line.word_addr(WordIdx(0)), self.line_words_mask());
                        self.tiles[home.0].l2.get(line);
                        self.net
                            .send(home, me, MessageKind::DataToL1, wpl, t_home + 1)
                    };
                    self.dragon_push_update(home, line, addr, &updated, delivery.arrival);
                    if let Some(le) = self.tiles[home.0].l2.get(line) {
                        le.valid.insert(w);
                    }
                    self.set_dragon_dir(home, line, dir);
                    self.net
                        .send(me, home, MessageKind::DirUnblock, 0, delivery.arrival);
                    self.dragon_fill_l1(
                        core,
                        line,
                        region,
                        DragonState::after_local_write(!updated.is_empty()),
                        MessageClass::Store,
                        delivery.per_word_hops,
                        delivery.arrival,
                    );
                } else {
                    // Write miss that also misses the L2: nobody shares the
                    // line, so this is exactly MESI's memory-fetch path.
                    let mc = self.mc_of(line);
                    let to_mc = self.net.send(home, mc, MessageKind::MemReadReq, 0, t_home);
                    let dram_done = self.dram_access(mc, line, false, to_mc.arrival);
                    let mut dir = DragonDirectory::default();
                    dir.record_write(CoreId(core));

                    let d2 = self
                        .net
                        .send(mc, home, MessageKind::DataToL2, wpl, dram_done);
                    let lw = self.line_words_mask();
                    self.mem_prof.fetched_words(
                        line.word_addr(WordIdx(0)),
                        lw,
                        false,
                        d2.per_word_hops,
                    );
                    self.l2_prof.arrive_words(
                        line.word_addr(WordIdx(0)),
                        lw,
                        WordMask::EMPTY,
                        d2.per_word_hops,
                        MessageClass::Store,
                    );
                    let d1 = self
                        .net
                        .send(home, me, MessageKind::DataToL1, wpl, d2.arrival + 1);
                    self.net
                        .send(me, home, MessageKind::DirUnblock, 0, d1.arrival);
                    self.dragon_allocate_l2(home, line, dir, WordMask::FULL, now);
                    self.dragon_fill_l1(
                        core,
                        line,
                        region,
                        DragonState::Modified,
                        MessageClass::Store,
                        d1.per_word_hops,
                        d1.arrival,
                    );
                }

                if let Some(e) = self.tiles[core].l1.get(line) {
                    e.dirty.insert(w);
                    e.valid.insert(w);
                }
                self.l1_prof[core].stored(addr);
                self.mem_prof.stored(addr);
                busy
            }
        }
    }

    /// Multicasts the written word at `addr` to `sharers` as `UpdateData`
    /// messages, applying it to their L1 copies (state demotion to `Sc`,
    /// word valid and clean) and booking the pushed word with each sharer's
    /// waste profiler as *update-born*.
    fn dragon_push_update(
        &mut self,
        home: TileId,
        line: LineAddr,
        addr: Addr,
        sharers: &[CoreId],
        at: Stamp,
    ) {
        let lb = self.line_bytes();
        let w = addr.word_in_line(lb);
        for s in sharers {
            let d = self
                .net
                .send(home, s.tile(), MessageKind::UpdateData, 1, at);
            if let Some(e) = self.tiles[s.0].l1.get(line) {
                if let L1Meta::Dragon { state, .. } = &mut e.meta {
                    *state = state.after_remote_update();
                }
                e.valid.insert(w);
                e.dirty.remove(w);
                self.l1_prof[s.0].updated(addr, d.per_word_hops);
            }
        }
    }

    /// Flushes a dirty owner's words to the home L2 as part of a
    /// dirty-ownership transfer (another core's write or write-miss). The
    /// owner keeps its copy and demotes to `Sc`; the L2 absorbs the dirty
    /// words, mirroring MESI's downgrade-flush accounting.
    fn dragon_flush_owner(&mut self, owner: CoreId, line: LineAddr, at: Stamp) {
        let home = self.home_of(line);
        let wpl = self.wpl();
        let dirty = self.tiles[owner.0]
            .l1
            .peek(line)
            .map(|e| e.dirty)
            .unwrap_or(WordMask::EMPTY);
        if let Some(e) = self.tiles[owner.0].l1.get(line) {
            if let L1Meta::Dragon { state, .. } = &mut e.meta {
                *state = DragonState::SharedClean;
            }
            e.dirty = WordMask::EMPTY;
        }
        if !dirty.is_empty() {
            let wb = self
                .net
                .send(owner.tile(), home, MessageKind::L1Writeback, wpl, at);
            self.charge_writeback_data(wb.per_word_hops, dirty.count(), wpl, false);
            if let Some(le) = self.tiles[home.0].l2.get(line) {
                le.dirty = le.dirty.union(dirty);
                le.valid = WordMask::FULL;
            }
        }
    }

    /// Installs a full line into an L1, handling the eviction of the victim.
    #[allow(clippy::too_many_arguments)]
    fn dragon_fill_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        region: RegionId,
        state: DragonState,
        class: MessageClass,
        per_word_hops: f64,
        at: Stamp,
    ) {
        let line_words = self.line_words_mask();
        let already = self.tiles[core]
            .l1
            .peek(line)
            .filter(|e| matches!(&e.meta, L1Meta::Dragon { state, .. } if state.can_read()))
            .map(|e| e.valid)
            .unwrap_or(WordMask::EMPTY);

        let meta = L1Meta::Dragon { state, region };
        let victim = self.tiles[core].l1.insert(line, meta).1;
        if let Some(v) = victim {
            self.dragon_evict_l1(core, v, at);
        }
        if let Some(e) = self.tiles[core].l1.get(line) {
            e.meta = L1Meta::Dragon { state, region };
            e.valid = WordMask::FULL;
        }
        self.l1_prof[core].arrive_words(
            line.word_addr(WordIdx(0)),
            line_words,
            already,
            per_word_hops,
            class,
        );
    }

    /// Handles the eviction of an L1 line: dirty states (`M`, `Sm`) write
    /// back data, clean states notify the directory with a control message.
    fn dragon_evict_l1(&mut self, core: usize, victim: LineEntry<L1Meta>, at: Stamp) {
        let L1Meta::Dragon { state, .. } = victim.meta else {
            return;
        };
        let me = TileId(core);
        let home = self.home_of(victim.line);
        let wpl = self.wpl();

        match state {
            DragonState::Modified | DragonState::SharedModified => {
                let wb = self.net.send(me, home, MessageKind::L1Writeback, wpl, at);
                self.charge_writeback_data(wb.per_word_hops, victim.dirty.count(), wpl, false);
                if let Some(le) = self.tiles[home.0].l2.get(victim.line) {
                    le.dirty = le.dirty.union(victim.dirty);
                    le.valid = WordMask::FULL;
                }
            }
            DragonState::Exclusive | DragonState::SharedClean => {
                self.net
                    .send(me, home, MessageKind::CleanWritebackCtl, 0, at);
            }
            DragonState::Invalid => {}
        }
        let mut dir = self.dragon_dir(home, victim.line);
        dir.record_eviction(CoreId(core));
        self.set_dragon_dir(home, victim.line, dir);

        self.l1_prof[core].evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
    }

    /// Ensures an L2 entry exists for `line`, evicting (and recalling) a
    /// victim if needed.
    fn dragon_allocate_l2(
        &mut self,
        home: TileId,
        line: LineAddr,
        dir: DragonDirectory,
        valid: WordMask,
        at: Stamp,
    ) {
        if !self.tiles[home.0].l2.contains(line) {
            let victim = self.tiles[home.0].l2.insert(line, L2Meta::Dragon(dir)).1;
            if let Some(v) = victim {
                self.dragon_evict_l2(home, v, at);
            }
        }
        if let Some(e) = self.tiles[home.0].l2.get(line) {
            e.meta = L2Meta::Dragon(dir);
            e.valid = e.valid.union(valid);
        }
    }

    /// Evicts an L2 line: recalls every L1 copy (inclusive hierarchy — the
    /// one place Dragon *does* invalidate) and writes dirty data back to
    /// memory.
    fn dragon_evict_l2(&mut self, home: TileId, victim: LineEntry<L2Meta>, at: Stamp) {
        let L2Meta::Dragon(dir) = victim.meta else {
            return;
        };
        let wpl = self.wpl();
        let mut dirty = victim.dirty;

        for holder in dir.holders() {
            self.net
                .send(home, holder.tile(), MessageKind::Invalidation, 0, at);
            self.net
                .send(holder.tile(), home, MessageKind::InvAck, 0, at + 1);
            if let Some(l1v) = self.tiles[holder.0].l1.remove(victim.line) {
                self.l1_prof[holder.0]
                    .invalidated_words(victim.line.word_addr(WordIdx(0)), l1v.valid);
                if !l1v.dirty.is_empty() {
                    let wb =
                        self.net
                            .send(holder.tile(), home, MessageKind::L1Writeback, wpl, at + 1);
                    self.charge_writeback_data(wb.per_word_hops, l1v.dirty.count(), wpl, false);
                    dirty = dirty.union(l1v.dirty);
                }
            }
        }

        if !dirty.is_empty() {
            let mc = self.mc_of(victim.line);
            let wb = self
                .net
                .send(home, mc, MessageKind::MemWriteback, wpl, at + 2);
            self.charge_writeback_data(wb.per_word_hops, dirty.count(), wpl, true);
            self.dram_access(mc, victim.line, true, wb.arrival);
        }

        self.l2_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
        self.mem_prof
            .evicted_words(victim.line.word_addr(WordIdx(0)), victim.valid);
    }
}
