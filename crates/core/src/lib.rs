//! `denovo-waste`: a tiled-multicore memory-hierarchy simulator and traffic-
//! waste characterization framework.
//!
//! This crate is the primary contribution of the reproduction: it wires the
//! substrate crates (caches, mesh NoC, DRAM, Bloom filters, waste profilers,
//! protocol state machines, workload generators) into a 16-tile machine and
//! runs each benchmark trace under any of the nine protocol configurations of
//! the paper, producing:
//!
//! * network traffic in flit-hops, broken down by load / store / writeback /
//!   overhead and by control vs. used vs. wasted data (Figures 5.1a–5.1d);
//! * an execution-time breakdown into compute, on-chip stall, to-memory-
//!   controller, DRAM, from-memory-controller and synchronization components
//!   (Figure 5.2);
//! * the number of words fetched into the L1s, the L2 and from memory,
//!   classified by the waste taxonomy of §4.1 (Figures 5.3a–5.3c).
//!
//! # Quick start
//!
//! ```
//! use denovo_waste::{Simulator, SimConfig};
//! use tw_types::ProtocolKind;
//! use tw_workloads::{build_tiny, BenchmarkKind};
//!
//! let workload = build_tiny(BenchmarkKind::Fft, 16).unwrap();
//! let config = SimConfig::new(ProtocolKind::DBypFull);
//! let report = Simulator::new(config, &workload).run();
//! assert!(report.traffic.total() > 0.0);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod machine;
pub mod report;
pub mod sim;
pub mod timing;

pub use experiment::{
    cache_key, sweep_temp_files, Baseline, CacheStats, CompiledPlan, ExperimentError,
    ExperimentMatrix, ExperimentSpec, HeadlineSummary, Json, PlanOutcome, PlannedCell, RowKey,
    RunOutcome, ScaleProfile, Session, SystemVariant, WorkloadRef, WorkloadSet, WorkloadSource,
    WorkloadSpec, ENGINE_VERSION, SPEC_SCHEMA, TEMP_SWEEP_AGE,
};
pub use figures::FigureTable;
pub use report::SimReport;
pub use sim::{protocol_by_name, SimConfig, Simulator};
pub use timing::{ExecutionBreakdown, TimeClass};
