//! The result of one simulation run.

use crate::timing::ExecutionBreakdown;
use tw_profiler::{TrafficBreakdown, WasteReport};
use tw_types::{Cycle, ProtocolKind};
use tw_workloads::BenchmarkKind;

/// Everything one simulation run produces: the inputs it was run with plus
/// the three result families of the paper (traffic, execution time, fetched
/// words by waste category).
///
/// Equality is exact (including the `f64` fields): two reports compare equal
/// only when bit-identical, which is precisely the determinism oracle the
/// trace record→replay CI check asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Protocol configuration simulated.
    pub protocol: ProtocolKind,
    /// Benchmark simulated.
    pub benchmark: BenchmarkKind,
    /// Workload input description.
    pub input: String,
    /// Total execution time (cycle at which the last core finished).
    pub total_cycles: Cycle,
    /// Execution-time breakdown summed over all cores (Figure 5.2).
    pub time: ExecutionBreakdown,
    /// Flit-hop breakdown (Figures 5.1a–5.1d).
    pub traffic: TrafficBreakdown,
    /// Raw whole-flit hop count from the mesh, before the bucketed ledger's
    /// fractional attribution — a cross-check on `traffic` (the two agree to
    /// within a few percent).
    pub mesh_flit_hops: f64,
    /// Words fetched into the L1s, by waste category (Figure 5.3a).
    pub l1_waste: WasteReport,
    /// Words fetched into the L2 from memory, by waste category (Figure 5.3b).
    pub l2_waste: WasteReport,
    /// Words fetched from memory, by waste category (Figure 5.3c).
    pub mem_waste: WasteReport,
    /// Total DRAM accesses (reads + writes) across all controllers.
    pub dram_accesses: u64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
}

impl SimReport {
    /// Total network traffic in flit-hops.
    pub fn total_flit_hops(&self) -> f64 {
        self.traffic.total()
    }

    /// Fraction of all traffic spent moving data that was classified as
    /// waste (the paper's "8.8% of the remaining traffic" style metric).
    pub fn waste_traffic_fraction(&self) -> f64 {
        self.traffic.waste_fraction()
    }

    /// Ratio of this run's total traffic to a baseline run's.
    pub fn traffic_relative_to(&self, baseline: &SimReport) -> f64 {
        if baseline.total_flit_hops() == 0.0 {
            return 1.0;
        }
        self.total_flit_hops() / baseline.total_flit_hops()
    }

    /// Ratio of this run's execution time to a baseline run's.
    pub fn time_relative_to(&self, baseline: &SimReport) -> f64 {
        if baseline.total_cycles == 0 {
            return 1.0;
        }
        self.total_cycles as f64 / baseline.total_cycles as f64
    }

    /// Ratio of this run's words fetched from memory to a baseline run's.
    pub fn memory_words_relative_to(&self, baseline: &SimReport) -> f64 {
        let b = baseline.mem_waste.total_words();
        if b == 0 {
            return 1.0;
        }
        self.mem_waste.total_words() as f64 / b as f64
    }
}
