//! Experiment matrices and figure-data extraction.
//!
//! [`ExperimentMatrix`] runs a set of protocols against a set of benchmarks
//! and [`RunOutcome`] turns the collected [`SimReport`]s into the tables and
//! figures of the paper's evaluation section (see the experiment index in
//! `DESIGN.md`). Every figure normalizes its bars to the MESI run of the same
//! benchmark, exactly as the paper does.

use crate::figures::FigureTable;
use crate::report::SimReport;
use crate::sim::{SimConfig, Simulator};
use crate::timing::TimeClass;
use rayon::prelude::*;
use std::collections::BTreeMap;
use tw_profiler::WasteCategory;
use tw_types::{MessageClass, ProtocolKind, SystemConfig, TrafficBucket};
use tw_workloads::{build_scaled, build_tiny, BenchmarkKind, Workload};

/// Which input scale to run (see DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProfile {
    /// The paper's input sizes on the Table 4.1 system. Slow; intended for
    /// full reproduction runs.
    Paper,
    /// Scaled-down inputs with the L2 shrunk proportionally so every
    /// working-set-to-cache relationship of the paper is preserved. This is
    /// the default for `EXPERIMENTS.md`.
    Scaled,
    /// Miniature inputs for tests and Criterion benches.
    Tiny,
}

impl ScaleProfile {
    /// The system configuration this profile simulates.
    pub fn system(self) -> SystemConfig {
        let mut sys = SystemConfig::default();
        match self {
            ScaleProfile::Paper => {}
            ScaleProfile::Scaled => {
                // 64 KB slices (1 MB total): keeps "working set >> L2" true
                // for fluidanimate/FFT/radix/kD-tree and "working set << L2"
                // true for LU/Barnes at the scaled input sizes.
                sys.cache.l2_slice_bytes = 64 * 1024;
            }
            ScaleProfile::Tiny => {
                sys.cache.l1_bytes = 16 * 1024;
                sys.cache.l2_slice_bytes = 32 * 1024;
            }
        }
        sys
    }

    /// Builds the workload for one benchmark at this scale. The trace-only
    /// kinds (`Custom`, `Synthesized`) have no fixed-input generator and are
    /// reported as an error — feed those through
    /// [`ExperimentMatrix::run_on`] instead.
    pub fn try_workload(self, bench: BenchmarkKind, cores: usize) -> Result<Workload, String> {
        match self {
            ScaleProfile::Paper => Ok(match bench {
                BenchmarkKind::Fluidanimate => {
                    tw_workloads::fluidanimate::FluidanimateConfig::paper().build(cores)
                }
                BenchmarkKind::Lu => tw_workloads::lu::LuConfig::paper().build(cores),
                BenchmarkKind::Fft => tw_workloads::fft::FftConfig::paper().build(cores),
                BenchmarkKind::Radix => tw_workloads::radix::RadixConfig::paper().build(cores),
                BenchmarkKind::Barnes => tw_workloads::barnes::BarnesConfig::paper().build(cores),
                BenchmarkKind::KdTree => tw_workloads::kdtree::KdTreeConfig::paper().build(cores),
                BenchmarkKind::Custom | BenchmarkKind::Synthesized => {
                    // Route through the scaled builder purely for its error
                    // message, which names the replacement workflow.
                    return build_scaled(bench, cores);
                }
            }),
            ScaleProfile::Scaled => build_scaled(bench, cores),
            ScaleProfile::Tiny => build_tiny(bench, cores),
        }
    }

    /// Builds the workload for one benchmark at this scale.
    ///
    /// # Panics
    ///
    /// Panics for the trace-only kinds (see [`ScaleProfile::try_workload`]);
    /// the matrix only ever calls this for [`BenchmarkKind::ALL`] entries.
    pub fn workload(self, bench: BenchmarkKind, cores: usize) -> Workload {
        self.try_workload(bench, cores)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A set of (protocol × benchmark) runs.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    /// Protocols to simulate (figure order).
    pub protocols: Vec<ProtocolKind>,
    /// Benchmarks to simulate (figure order).
    pub benchmarks: Vec<BenchmarkKind>,
    /// Input/system scale.
    pub scale: ScaleProfile,
}

impl ExperimentMatrix {
    /// The full matrix of the paper: all nine protocols on all six benchmarks.
    pub fn full(scale: ScaleProfile) -> Self {
        ExperimentMatrix {
            protocols: ProtocolKind::ALL.to_vec(),
            benchmarks: BenchmarkKind::ALL.to_vec(),
            scale,
        }
    }

    /// A reduced matrix (useful for tests): the given protocols on the given
    /// benchmarks.
    pub fn subset(
        protocols: Vec<ProtocolKind>,
        benchmarks: Vec<BenchmarkKind>,
        scale: ScaleProfile,
    ) -> Self {
        ExperimentMatrix {
            protocols,
            benchmarks,
            scale,
        }
    }

    /// Runs every (protocol, benchmark) pair.
    ///
    /// Every cell of the matrix is an independent simulation, so the cells
    /// are executed in parallel with `rayon`: workload generation fans out
    /// per benchmark first (traces are shared across the protocols of a
    /// row), then the full cell list is mapped on the pool. Per-cell cost is
    /// very uneven (MESI cells move far more messages than optimized DeNovo
    /// cells), which the work-stealing distribution absorbs.
    pub fn run(&self) -> RunOutcome {
        let system = self.scale.system();
        let workloads: Vec<(BenchmarkKind, Workload)> = self
            .benchmarks
            .par_iter()
            .map(|&bench| (bench, self.scale.workload(bench, system.tiles())))
            .collect();
        self.run_cells(workloads)
    }

    /// Runs every protocol of the matrix over externally supplied workloads
    /// (replayed traces, hand-written scenarios) instead of the generated
    /// benchmarks — the trace-driven intake path. The `benchmarks` field of
    /// the matrix is ignored; the outcome's benchmark axis is the kinds of
    /// the given workloads, so MESI-normalized figures work as long as the
    /// protocol list includes `ProtocolKind::Mesi`.
    ///
    /// # Panics
    ///
    /// Panics if two workloads share a [`BenchmarkKind`] (reports are keyed
    /// by it) or a workload's core count does not match the scale's system.
    pub fn run_on(&self, workloads: Vec<Workload>) -> RunOutcome {
        let system = self.scale.system();
        let pairs: Vec<(BenchmarkKind, Workload)> =
            workloads.into_iter().map(|w| (w.kind, w)).collect();
        for (i, (kind, wl)) in pairs.iter().enumerate() {
            assert!(
                pairs[..i].iter().all(|(k, _)| k != kind),
                "two workloads share the benchmark kind {kind}"
            );
            assert_eq!(
                wl.cores(),
                system.tiles(),
                "workload {kind} was recorded for {} cores but the system has {} tiles",
                wl.cores(),
                system.tiles()
            );
        }
        self.run_cells(pairs)
    }

    /// Shared cell fan-out of [`run`](Self::run) and [`run_on`](Self::run_on).
    fn run_cells(&self, workloads: Vec<(BenchmarkKind, Workload)>) -> RunOutcome {
        let system = self.scale.system();
        let benchmarks: Vec<BenchmarkKind> = workloads.iter().map(|(b, _)| *b).collect();
        let cells: Vec<(BenchmarkKind, ProtocolKind)> = benchmarks
            .iter()
            .flat_map(|&b| self.protocols.iter().map(move |&p| (b, p)))
            .collect();
        let reports: BTreeMap<(BenchmarkKind, ProtocolKind), SimReport> = cells
            .par_iter()
            .map(|&(bench, protocol)| {
                let workload = &workloads
                    .iter()
                    .find(|(b, _)| *b == bench)
                    .expect("workload built for every benchmark in the matrix")
                    .1;
                let cfg = SimConfig::new(protocol).with_system(system.clone());
                ((bench, protocol), Simulator::new(cfg, workload).run())
            })
            .collect();

        RunOutcome {
            protocols: self.protocols.clone(),
            benchmarks,
            reports,
        }
    }
}

/// Headline cross-benchmark averages (abstract / §5.1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineSummary {
    /// Mean traffic of DBypFull relative to MESI (paper: ≈ 0.605).
    pub dbypfull_traffic_vs_mesi: f64,
    /// Mean traffic of DBypFull relative to MMemL1 (paper: ≈ 0.648).
    pub dbypfull_traffic_vs_mmeml1: f64,
    /// Mean traffic of DBypFull relative to DFlexL1 (paper: ≈ 0.811).
    pub dbypfull_traffic_vs_dflexl1: f64,
    /// Mean traffic of baseline DeNovo relative to MESI (paper: ≈ 0.861).
    pub denovo_traffic_vs_mesi: f64,
    /// Mean execution time of DBypFull relative to MESI (paper: ≈ 0.895).
    pub dbypfull_time_vs_mesi: f64,
    /// Mean execution time of MMemL1 relative to MESI (paper: ≈ 0.962).
    pub mmeml1_time_vs_mesi: f64,
    /// Mean fraction of DBypFull's data traffic classified as waste
    /// (paper: ≈ 0.088).
    pub dbypfull_waste_fraction: f64,
    /// Mean fraction of MESI traffic that is protocol overhead (paper: ≈ 0.136).
    pub mesi_overhead_fraction: f64,
}

/// The collected reports of one experiment run plus figure extraction.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Protocols, in figure order.
    pub protocols: Vec<ProtocolKind>,
    /// Benchmarks, in figure order.
    pub benchmarks: Vec<BenchmarkKind>,
    /// One report per (benchmark, protocol) pair.
    pub reports: BTreeMap<(BenchmarkKind, ProtocolKind), SimReport>,
}

impl RunOutcome {
    /// The report for one (benchmark, protocol) pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the matrix.
    pub fn report(&self, bench: BenchmarkKind, protocol: ProtocolKind) -> &SimReport {
        self.reports
            .get(&(bench, protocol))
            .unwrap_or_else(|| panic!("no report for {bench} / {protocol}"))
    }

    fn baseline(&self, bench: BenchmarkKind) -> &SimReport {
        self.report(bench, ProtocolKind::Mesi)
    }

    fn row_label(bench: BenchmarkKind, protocol: ProtocolKind) -> String {
        format!("{bench}/{protocol}")
    }

    /// Geometric-free arithmetic mean over benchmarks of `f(report,
    /// baseline)`, matching the paper's "average of X%" statements.
    fn mean_over_benchmarks<F: Fn(&SimReport, &SimReport) -> f64>(
        &self,
        protocol: ProtocolKind,
        f: F,
    ) -> f64 {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|&b| f(self.report(b, protocol), self.baseline(b)))
            .collect();
        values.iter().sum::<f64>() / values.len().max(1) as f64
    }

    /// Table 4.1: simulated system parameters.
    pub fn table_4_1(&self, scale: ScaleProfile) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 4.1: Simulated system parameters",
            vec!["Component".into(), "".into()],
        );
        // Parameters are textual; encode them as rows with no numeric columns
        // and describe them in the title instead.
        let sys = scale.system();
        t.columns = vec!["Component".into(), "Value".into()];
        for (component, value) in sys.table_rows() {
            t.push_row(format!("{component}: {value}"), vec![0.0]);
        }
        t
    }

    /// Table 4.2: application input sizes (paper input and the one actually
    /// simulated at this scale).
    pub fn table_4_2(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 4.2: Application input sizes (paper input -> simulated input)",
            vec!["Application".into(), "Value".into()],
        );
        for &b in &self.benchmarks {
            let input = self
                .reports
                .iter()
                .find(|((bench, _), _)| *bench == b)
                .map(|(_, r)| r.input.clone())
                .unwrap_or_default();
            t.push_row(format!("{b}: {} -> {input}", b.paper_input()), vec![0.0]);
        }
        t
    }

    /// Figure 5.1a: overall network traffic normalized to MESI, stacked by
    /// LD/ST/WB/Overhead.
    pub fn fig_5_1a(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Figure 5.1a: Overall network traffic (flit-hops, normalized to MESI)",
            vec![
                "bench/protocol".into(),
                "LD".into(),
                "ST".into(),
                "WB".into(),
                "Overhead".into(),
                "Total".into(),
            ],
        );
        for &b in &self.benchmarks {
            let base = self.baseline(b).traffic.total();
            for &p in &self.protocols {
                let r = self.report(b, p);
                let v = |c: MessageClass| r.traffic.class_total(c) / base;
                t.push_row(
                    Self::row_label(b, p),
                    vec![
                        v(MessageClass::Load),
                        v(MessageClass::Store),
                        v(MessageClass::Writeback),
                        v(MessageClass::Overhead),
                        r.traffic.total() / base,
                    ],
                );
            }
        }
        t
    }

    fn request_response_figure(&self, title: &str, class: MessageClass) -> FigureTable {
        let buckets = TrafficBucket::REQUEST_RESPONSE;
        let mut columns = vec!["bench/protocol".into()];
        columns.extend(buckets.iter().map(|b| b.label().to_string()));
        let mut t = FigureTable::new(title, columns);
        for &b in &self.benchmarks {
            let base = self.baseline(b).traffic.class_total(class);
            for &p in &self.protocols {
                let r = self.report(b, p);
                let values = buckets
                    .iter()
                    .map(|bucket| {
                        if base == 0.0 {
                            0.0
                        } else {
                            r.traffic.get(class, *bucket) / base
                        }
                    })
                    .collect();
                t.push_row(Self::row_label(b, p), values);
            }
        }
        t
    }

    /// Figure 5.1b: load-traffic breakdown normalized to MESI's load traffic.
    pub fn fig_5_1b(&self) -> FigureTable {
        self.request_response_figure(
            "Figure 5.1b: LD network traffic breakdown (normalized to MESI LD traffic)",
            MessageClass::Load,
        )
    }

    /// Figure 5.1c: store-traffic breakdown normalized to MESI's store traffic.
    pub fn fig_5_1c(&self) -> FigureTable {
        self.request_response_figure(
            "Figure 5.1c: ST network traffic breakdown (normalized to MESI ST traffic)",
            MessageClass::Store,
        )
    }

    /// Figure 5.1d: writeback-traffic breakdown normalized to MESI's
    /// writeback traffic.
    pub fn fig_5_1d(&self) -> FigureTable {
        let buckets = TrafficBucket::WRITEBACK;
        let mut columns = vec!["bench/protocol".into()];
        columns.extend(buckets.iter().map(|b| b.label().to_string()));
        let mut t = FigureTable::new(
            "Figure 5.1d: WB network traffic breakdown (normalized to MESI WB traffic)",
            columns,
        );
        for &b in &self.benchmarks {
            let base = self
                .baseline(b)
                .traffic
                .class_total(MessageClass::Writeback);
            for &p in &self.protocols {
                let r = self.report(b, p);
                let values = buckets
                    .iter()
                    .map(|bucket| {
                        if base == 0.0 {
                            0.0
                        } else {
                            r.traffic.get(MessageClass::Writeback, *bucket) / base
                        }
                    })
                    .collect();
                t.push_row(Self::row_label(b, p), values);
            }
        }
        t
    }

    /// Figure 5.2: execution time normalized to MESI, stacked by component.
    pub fn fig_5_2(&self) -> FigureTable {
        let mut columns = vec!["bench/protocol".into()];
        columns.extend(TimeClass::ALL.iter().map(|c| c.label().to_string()));
        columns.push("Total".into());
        let mut t = FigureTable::new("Figure 5.2: Execution time (normalized to MESI)", columns);
        for &b in &self.benchmarks {
            let base = self.baseline(b).time.total().max(1) as f64;
            for &p in &self.protocols {
                let r = self.report(b, p);
                let mut values: Vec<f64> = TimeClass::ALL
                    .iter()
                    .map(|c| r.time.get(*c) as f64 / base)
                    .collect();
                values.push(r.time.total() as f64 / base);
                t.push_row(Self::row_label(b, p), values);
            }
        }
        t
    }

    fn waste_figure<F: Fn(&SimReport) -> &tw_profiler::WasteReport>(
        &self,
        title: &str,
        select: F,
    ) -> FigureTable {
        let cats = WasteCategory::ALL;
        let mut columns = vec!["bench/protocol".into()];
        columns.extend(cats.iter().map(|c| c.label().to_string()));
        let mut t = FigureTable::new(title, columns);
        for &b in &self.benchmarks {
            let base = select(self.baseline(b)).total_words().max(1) as f64;
            for &p in &self.protocols {
                let r = select(self.report(b, p));
                let values = cats.iter().map(|c| r.words(*c) as f64 / base).collect();
                t.push_row(Self::row_label(b, p), values);
            }
        }
        t
    }

    /// Figure 5.3a: words fetched into the L1s by waste category.
    pub fn fig_5_3a(&self) -> FigureTable {
        self.waste_figure(
            "Figure 5.3a: L1 fetch waste (words fetched into L1, normalized to MESI)",
            |r| &r.l1_waste,
        )
    }

    /// Figure 5.3b: words fetched into the L2 by waste category.
    pub fn fig_5_3b(&self) -> FigureTable {
        self.waste_figure(
            "Figure 5.3b: L2 fetch waste (words fetched into L2, normalized to MESI)",
            |r| &r.l2_waste,
        )
    }

    /// Figure 5.3c: words fetched from memory by waste category.
    pub fn fig_5_3c(&self) -> FigureTable {
        self.waste_figure(
            "Figure 5.3c: Memory fetch waste (words fetched from memory, normalized to MESI)",
            |r| &r.mem_waste,
        )
    }

    /// The headline cross-benchmark averages quoted in the abstract and §5.1.
    ///
    /// # Panics
    ///
    /// Panics if the matrix did not include the protocols the headline quotes
    /// (MESI, MMemL1, DeNovo, DFlexL1, DBypFull).
    pub fn headline(&self) -> HeadlineSummary {
        let rel_traffic = |p: ProtocolKind, q: ProtocolKind| {
            self.benchmarks
                .iter()
                .map(|&b| self.report(b, p).total_flit_hops() / self.report(b, q).total_flit_hops())
                .sum::<f64>()
                / self.benchmarks.len() as f64
        };
        let rel_time = |p: ProtocolKind, q: ProtocolKind| {
            self.benchmarks
                .iter()
                .map(|&b| {
                    self.report(b, p).total_cycles as f64 / self.report(b, q).total_cycles as f64
                })
                .sum::<f64>()
                / self.benchmarks.len() as f64
        };
        HeadlineSummary {
            dbypfull_traffic_vs_mesi: rel_traffic(ProtocolKind::DBypFull, ProtocolKind::Mesi),
            dbypfull_traffic_vs_mmeml1: rel_traffic(ProtocolKind::DBypFull, ProtocolKind::MMemL1),
            dbypfull_traffic_vs_dflexl1: rel_traffic(ProtocolKind::DBypFull, ProtocolKind::DFlexL1),
            denovo_traffic_vs_mesi: rel_traffic(ProtocolKind::DeNovo, ProtocolKind::Mesi),
            dbypfull_time_vs_mesi: rel_time(ProtocolKind::DBypFull, ProtocolKind::Mesi),
            mmeml1_time_vs_mesi: rel_time(ProtocolKind::MMemL1, ProtocolKind::Mesi),
            dbypfull_waste_fraction: self
                .mean_over_benchmarks(ProtocolKind::DBypFull, |r, _| r.waste_traffic_fraction()),
            mesi_overhead_fraction: self.mean_over_benchmarks(ProtocolKind::Mesi, |r, _| {
                r.traffic.class_total(MessageClass::Overhead) / r.traffic.total()
            }),
        }
    }

    /// Every figure of the evaluation section, in order.
    pub fn all_figures(&self, scale: ScaleProfile) -> Vec<FigureTable> {
        vec![
            self.table_4_1(scale),
            self.table_4_2(),
            self.fig_5_1a(),
            self.fig_5_1b(),
            self.fig_5_1c(),
            self.fig_5_1d(),
            self.fig_5_2(),
            self.fig_5_3a(),
            self.fig_5_3b(),
            self.fig_5_3c(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_outcome() -> RunOutcome {
        ExperimentMatrix::subset(
            vec![
                ProtocolKind::Mesi,
                ProtocolKind::DeNovo,
                ProtocolKind::DBypFull,
            ],
            vec![BenchmarkKind::Fft, BenchmarkKind::Radix],
            ScaleProfile::Tiny,
        )
        .run()
    }

    #[test]
    fn matrix_runs_all_pairs() {
        let out = tiny_outcome();
        assert_eq!(out.reports.len(), 6);
        assert!(
            out.report(BenchmarkKind::Fft, ProtocolKind::Mesi)
                .total_cycles
                > 0
        );
    }

    #[test]
    fn fig_5_1a_is_normalized_to_mesi() {
        let out = tiny_outcome();
        let fig = out.fig_5_1a();
        let mesi_total = fig.value("FFT/MESI", "Total").unwrap();
        assert!(
            (mesi_total - 1.0).abs() < 1e-9,
            "MESI bar must be exactly 1.0"
        );
        let opt_total = fig.value("FFT/DBypFull", "Total").unwrap();
        assert!(opt_total < 1.0, "optimized protocol must reduce traffic");
    }

    #[test]
    fn fig_5_2_mesi_components_sum_to_one() {
        let out = tiny_outcome();
        let fig = out.fig_5_2();
        let total = fig.value("radix/MESI", "Total").unwrap();
        assert!((total - 1.0).abs() < 1e-9);
        let parts: f64 = TimeClass::ALL
            .iter()
            .map(|c| fig.value("radix/MESI", c.label()).unwrap())
            .sum();
        assert!((parts - total).abs() < 1e-6);
    }

    #[test]
    fn waste_figures_have_mesi_used_below_one() {
        let out = tiny_outcome();
        for fig in [out.fig_5_3a(), out.fig_5_3b(), out.fig_5_3c()] {
            let used = fig.value("FFT/MESI", "Used Words").unwrap();
            assert!(used > 0.0 && used <= 1.0, "{}: used={used}", fig.title);
        }
    }

    #[test]
    fn full_figure_set_has_ten_entries() {
        let out = tiny_outcome();
        assert_eq!(out.all_figures(ScaleProfile::Tiny).len(), 10);
        assert!(out.table_4_2().rows.len() >= 2);
    }

    #[test]
    fn custom_workloads_run_through_the_matrix() {
        // A captured FFT trace re-labelled as a custom workload must run
        // under every protocol of a matrix and normalize against its own
        // MESI cell.
        let mut wl = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        wl.kind = BenchmarkKind::Custom;
        let matrix = ExperimentMatrix::subset(
            vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
            vec![],
            ScaleProfile::Tiny,
        );
        let out = matrix.run_on(vec![wl]);
        assert_eq!(out.benchmarks, vec![BenchmarkKind::Custom]);
        assert_eq!(out.reports.len(), 2);
        let fig = out.fig_5_1a();
        let mesi = fig.value("custom/MESI", "Total").unwrap();
        assert!((mesi - 1.0).abs() < 1e-9);
        assert!(fig.value("custom/DBypFull", "Total").unwrap() > 0.0);
    }

    #[test]
    fn run_on_rejects_duplicate_kinds() {
        let wl = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        let matrix = ExperimentMatrix::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
        let result = std::panic::catch_unwind(|| matrix.run_on(vec![wl.clone(), wl.clone()]));
        assert!(result.is_err());
    }

    #[test]
    fn scale_profiles_produce_distinct_systems() {
        assert_eq!(
            ScaleProfile::Paper.system().cache.l2_slice_bytes,
            256 * 1024
        );
        assert_eq!(
            ScaleProfile::Scaled.system().cache.l2_slice_bytes,
            64 * 1024
        );
        assert!(ScaleProfile::Tiny.system().cache.l1_bytes < 32 * 1024);
        assert!(ScaleProfile::Paper.system().validate().is_ok());
        assert!(ScaleProfile::Scaled.system().validate().is_ok());
        assert!(ScaleProfile::Tiny.system().validate().is_ok());
    }
}
