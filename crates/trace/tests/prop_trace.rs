//! Property-based round-trip guarantees of the trace codecs: any op
//! sequence — including degenerate phases with zero memory operations —
//! encodes and decodes identically through both the binary and the text
//! format.

use proptest::prelude::*;
use tw_trace::{diff, TraceDocument};
use tw_types::{Addr, MemKind, RegionId, RegionInfo, RegionTable, TraceOp};

/// Decodes one generated 4-tuple into a trace op. Addresses are arbitrary
/// word indices (not confined to the declared regions — the codec must not
/// care), regions arbitrary small ids, and kind 3 produces barriers so
/// phases of every length (including zero mem ops) arise naturally.
fn op_from(kind: u8, payload: u64, region: u64, cycles: u64) -> TraceOp {
    match kind {
        0 => TraceOp::Mem {
            kind: MemKind::Load,
            addr: Addr::new(payload * 4),
            region: RegionId(region as u16),
        },
        1 => TraceOp::Mem {
            kind: MemKind::Store,
            addr: Addr::new(payload * 4),
            region: RegionId(region as u16),
        },
        2 => TraceOp::Compute {
            cycles: cycles as u32,
        },
        _ => TraceOp::Barrier {
            id: (payload % 100) as u32,
        },
    }
}

fn doc_with_streams(streams: Vec<Vec<TraceOp>>) -> TraceDocument {
    let mut regions = RegionTable::new();
    regions.insert(RegionInfo::plain(
        RegionId(0),
        "anything",
        Addr::new(0),
        1 << 40,
    ));
    TraceDocument {
        benchmark: "custom".into(),
        input: "proptest".into(),
        regions,
        streams,
    }
}

proptest! {
    /// Binary encode -> decode is the identity for arbitrary op sequences
    /// across multiple cores.
    #[test]
    fn binary_codec_round_trips_arbitrary_streams(
        raw_a in prop::collection::vec((0u8..4, 0u64..1_000_000, 0u64..64, 0u64..10_000), 0..300),
        raw_b in prop::collection::vec((0u8..4, 0u64..1_000_000, 0u64..64, 0u64..10_000), 0..300),
    ) {
        let streams = vec![
            raw_a.into_iter().map(|(k, p, r, c)| op_from(k, p, r, c)).collect(),
            raw_b.into_iter().map(|(k, p, r, c)| op_from(k, p, r, c)).collect(),
        ];
        let doc = doc_with_streams(streams);
        let bytes = doc.to_binary_bytes().unwrap();
        let back = TraceDocument::from_bytes(&bytes).unwrap();
        prop_assert!(diff(&doc, &back).is_none(), "binary round trip diverged");
        prop_assert_eq!(&doc, &back);
    }

    /// The text format round-trips the same arbitrary sequences.
    #[test]
    fn text_codec_round_trips_arbitrary_streams(
        raw in prop::collection::vec((0u8..4, 0u64..1_000_000, 0u64..64, 0u64..10_000), 0..200),
    ) {
        let doc = doc_with_streams(vec![
            raw.into_iter().map(|(k, p, r, c)| op_from(k, p, r, c)).collect(),
        ]);
        let back = TraceDocument::from_text(&doc.to_text()).unwrap();
        prop_assert_eq!(&doc, &back);
    }

    /// Degenerate phase structure: streams that are nothing but barriers
    /// (every phase has zero memory operations) survive both codecs.
    #[test]
    fn degenerate_zero_mem_phases_round_trip(
        barrier_count in 0usize..50,
        cores in 1usize..8,
    ) {
        let stream: Vec<TraceOp> = (0..barrier_count as u32).map(TraceOp::barrier).collect();
        let doc = doc_with_streams(vec![stream; cores]);
        let bytes = doc.to_binary_bytes().unwrap();
        let back = TraceDocument::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&doc, &back);
        let text_back = TraceDocument::from_text(&doc.to_text()).unwrap();
        prop_assert_eq!(&doc, &text_back);
    }

    /// Truncating the binary encoding anywhere strictly inside the payload
    /// never yields a silently valid trace: the reader either errors or (on
    /// header-only truncations that keep the byte sequence self-delimiting)
    /// reports a different document, never the original one with ops lost.
    #[test]
    fn truncation_is_never_a_silent_success(
        raw in prop::collection::vec((0u8..4, 0u64..1_000_000, 0u64..64, 0u64..10_000), 1..100),
        cut_fraction in 1u64..100,
    ) {
        let doc = doc_with_streams(vec![
            raw.into_iter().map(|(k, p, r, c)| op_from(k, p, r, c)).collect(),
        ]);
        let bytes = doc.to_binary_bytes().unwrap();
        let cut = (bytes.len() as u64 * cut_fraction / 100) as usize;
        prop_assert!(cut < bytes.len());
        match TraceDocument::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                diff(&doc, &decoded).is_some(),
                "truncated to {cut}/{} bytes yet decoded identically",
                bytes.len()
            ),
        }
    }
}
