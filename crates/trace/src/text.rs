//! The human-readable text trace format, for hand-written scenarios.
//!
//! ```text
//! denovo-waste-trace v1
//! bench FFT
//! input 64 points
//! cores 2
//! region 1 "a" base=0x0 bytes=4096 wip=1 bypass=none
//! region 2 "dest array" base=0x1000 bytes=8192 wip=0 bypass=stream comm=96:0,8,16,80
//! core 0
//!   LD 0x0 R1
//!   C 12
//!   ST 0x1000 R2
//!   B 0
//! end
//! core 1
//!   B 0
//! end
//! ```
//!
//! Blank lines and `#` comments are ignored. Region names are quoted (with
//! `\"` and `\\` escapes) because generator names contain spaces. `wip`
//! marks regions written in parallel phases; `bypass` is one of
//! `none`/`rto`/`stream`; `comm=OBJ:o1,o2,...` gives the Flex communication
//! region (object size and useful byte offsets). Core sections must appear
//! in core order and each closes with `end`.

use crate::{TraceDocument, TraceError};
use std::fmt::Write as _;
use tw_types::{Addr, BypassKind, CommRegion, MemKind, RegionId, RegionInfo, RegionTable, TraceOp};

const HEADER_LINE: &str = "denovo-waste-trace v1";

fn quote(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a document in the text format.
pub fn emit(doc: &TraceDocument) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER_LINE}");
    let _ = writeln!(out, "bench {}", doc.benchmark);
    let _ = writeln!(out, "input {}", doc.input);
    let _ = writeln!(out, "cores {}", doc.streams.len());
    for r in doc.regions.iter() {
        let bypass = match r.bypass {
            BypassKind::None => "none",
            BypassKind::ReadThenOverwritten => "rto",
            BypassKind::StreamingOncePerPhase => "stream",
        };
        let _ = write!(
            out,
            "region {} {} base={:#x} bytes={} wip={} bypass={bypass}",
            r.id.0,
            quote(&r.name),
            r.base.byte(),
            r.bytes,
            r.written_in_parallel_phases as u8,
        );
        if let Some(comm) = &r.comm {
            let offs: Vec<String> = comm.useful_offsets.iter().map(|o| o.to_string()).collect();
            let _ = write!(out, " comm={}:{}", comm.object_bytes, offs.join(","));
        }
        out.push('\n');
    }
    for (core, stream) in doc.streams.iter().enumerate() {
        let _ = writeln!(out, "core {core}");
        for op in stream {
            match *op {
                TraceOp::Mem { kind, addr, region } => {
                    let _ = writeln!(out, "  {kind} {:#x} {region}", addr.byte());
                }
                TraceOp::Compute { cycles } => {
                    let _ = writeln!(out, "  C {cycles}");
                }
                TraceOp::Barrier { id } => {
                    let _ = writeln!(out, "  B {id}");
                }
            }
        }
        let _ = writeln!(out, "end");
    }
    out
}

fn err(line_no: usize, msg: impl Into<String>) -> TraceError {
    TraceError::Malformed(format!("line {line_no}: {}", msg.into()))
}

fn parse_u64(s: &str, line_no: usize, what: &str) -> Result<u64, TraceError> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
    .map_err(|_| err(line_no, format!("bad {what} `{s}`")))
}

/// Splits `region 3 "dest array" base=...` into the quoted name and the
/// rest, handling escapes.
fn parse_quoted(s: &str, line_no: usize) -> Result<(String, &str), TraceError> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line_no, "region name must be quoted"))?;
    let mut name = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, e @ ('"' | '\\'))) => name.push(e),
                _ => return Err(err(line_no, "bad escape in region name")),
            },
            '"' => return Ok((name, rest[i + 1..].trim_start())),
            c => name.push(c),
        }
    }
    Err(err(line_no, "unterminated region name"))
}

fn parse_region(args: &str, line_no: usize) -> Result<RegionInfo, TraceError> {
    let (id_str, rest) = args
        .split_once(' ')
        .ok_or_else(|| err(line_no, "region needs an id and a name"))?;
    let id = parse_u64(id_str, line_no, "region id")?;
    if id > u16::MAX as u64 {
        return Err(err(line_no, format!("region id {id} exceeds u16")));
    }
    let (name, rest) = parse_quoted(rest.trim_start(), line_no)?;
    let mut info = RegionInfo::plain(RegionId(id as u16), name, Addr::new(0), 0);
    let (mut saw_base, mut saw_bytes) = (false, false);
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("bad region field `{field}`")))?;
        match key {
            "base" => {
                info.base = Addr::new(parse_u64(value, line_no, "base")?);
                saw_base = true;
            }
            "bytes" => {
                info.bytes = parse_u64(value, line_no, "bytes")?;
                saw_bytes = true;
            }
            "wip" => {
                info.written_in_parallel_phases = match value {
                    "0" => false,
                    "1" => true,
                    v => return Err(err(line_no, format!("bad wip value `{v}`"))),
                }
            }
            "bypass" => {
                info.bypass = match value {
                    "none" => BypassKind::None,
                    "rto" => BypassKind::ReadThenOverwritten,
                    "stream" => BypassKind::StreamingOncePerPhase,
                    v => return Err(err(line_no, format!("unknown bypass kind `{v}`"))),
                }
            }
            "comm" => {
                let (obj, offs) = value
                    .split_once(':')
                    .ok_or_else(|| err(line_no, "comm needs OBJ:offsets"))?;
                let object_bytes = parse_u64(obj, line_no, "comm object size")?;
                let useful_offsets = offs
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_u64(s, line_no, "comm offset"))
                    .collect::<Result<Vec<_>, _>>()?;
                info.comm = Some(CommRegion {
                    object_bytes,
                    useful_offsets,
                });
            }
            k => return Err(err(line_no, format!("unknown region field `{k}`"))),
        }
    }
    if !saw_base || !saw_bytes {
        return Err(err(line_no, "region needs base= and bytes="));
    }
    Ok(info)
}

fn parse_op(line: &str, line_no: usize) -> Result<TraceOp, TraceError> {
    let mut parts = line.split_whitespace();
    let mnemonic = parts.next().unwrap_or_default();
    let op = match mnemonic {
        "LD" | "ST" => {
            let addr = parse_u64(
                parts
                    .next()
                    .ok_or_else(|| err(line_no, "missing address"))?,
                line_no,
                "address",
            )?;
            let region_str = parts.next().ok_or_else(|| err(line_no, "missing region"))?;
            let region = parse_u64(
                region_str.strip_prefix('R').unwrap_or(region_str),
                line_no,
                "region",
            )?;
            if region > u16::MAX as u64 {
                return Err(err(line_no, format!("region id {region} exceeds u16")));
            }
            TraceOp::Mem {
                kind: if mnemonic == "LD" {
                    MemKind::Load
                } else {
                    MemKind::Store
                },
                addr: Addr::new(addr),
                region: RegionId(region as u16),
            }
        }
        "C" => {
            let cycles = parse_u64(
                parts.next().ok_or_else(|| err(line_no, "missing cycles"))?,
                line_no,
                "cycles",
            )?;
            if cycles > u32::MAX as u64 {
                return Err(err(line_no, format!("cycles {cycles} exceed u32")));
            }
            TraceOp::Compute {
                cycles: cycles as u32,
            }
        }
        "B" => {
            let id = parse_u64(
                parts
                    .next()
                    .ok_or_else(|| err(line_no, "missing barrier id"))?,
                line_no,
                "barrier id",
            )?;
            if id > u32::MAX as u64 {
                return Err(err(line_no, format!("barrier id {id} exceeds u32")));
            }
            TraceOp::Barrier { id: id as u32 }
        }
        m => return Err(err(line_no, format!("unknown op mnemonic `{m}`"))),
    };
    if parts.next().is_some() {
        return Err(err(line_no, "trailing tokens after op"));
    }
    Ok(op)
}

/// Parses the text format.
pub fn parse(s: &str) -> Result<TraceDocument, TraceError> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (first_no, first) = lines
        .next()
        .ok_or_else(|| TraceError::Malformed("empty trace text".to_string()))?;
    if first != HEADER_LINE {
        return Err(err(first_no, format!("expected `{HEADER_LINE}`")));
    }

    let mut benchmark = None;
    let mut input = None;
    let mut cores: Option<usize> = None;
    let mut regions = RegionTable::new();
    let mut streams: Vec<Vec<TraceOp>> = Vec::new();
    let mut current: Option<Vec<TraceOp>> = None;

    for (line_no, line) in lines {
        let (keyword, args) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "bench" if current.is_none() => benchmark = Some(args.to_string()),
            "input" if current.is_none() => input = Some(args.to_string()),
            "cores" if current.is_none() => {
                cores = Some(parse_u64(args, line_no, "core count")? as usize);
            }
            "region" if current.is_none() => {
                let info = parse_region(args, line_no)?;
                if regions.get(info.id).is_some() {
                    return Err(err(line_no, format!("duplicate region id {}", info.id.0)));
                }
                regions.insert(info);
            }
            "core" => {
                if current.is_some() {
                    return Err(err(line_no, "previous core section not closed with `end`"));
                }
                let idx = parse_u64(args, line_no, "core index")? as usize;
                if idx != streams.len() {
                    return Err(err(
                        line_no,
                        format!("core sections must be in order; expected {}", streams.len()),
                    ));
                }
                current = Some(Vec::new());
            }
            "end" => match current.take() {
                Some(stream) => streams.push(stream),
                None => return Err(err(line_no, "`end` outside a core section")),
            },
            _ => match current.as_mut() {
                Some(stream) => stream.push(parse_op(line, line_no)?),
                None => return Err(err(line_no, format!("unexpected line `{line}`"))),
            },
        }
    }
    if current.is_some() {
        return Err(TraceError::Malformed(
            "last core section not closed with `end`".to_string(),
        ));
    }
    let declared =
        cores.ok_or_else(|| TraceError::Malformed("missing `cores` line".to_string()))?;
    if declared == 0 {
        return Err(TraceError::Malformed(
            "trace declares zero cores".to_string(),
        ));
    }
    if declared != streams.len() {
        return Err(TraceError::Malformed(format!(
            "header declares {declared} cores but {} core sections follow",
            streams.len()
        )));
    }
    Ok(TraceDocument {
        benchmark: benchmark.unwrap_or_default(),
        input: input.unwrap_or_default(),
        regions,
        streams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HAND_WRITTEN: &str = r#"
# A two-core ping-pong scenario.
denovo-waste-trace v1
bench custom
input ping-pong
cores 2
region 1 "shared \"flag\"" base=0x0 bytes=4096 wip=1 bypass=none
core 0
  ST 0x0 R1
  B 0
  LD 0x40 R1
end
core 1
  B 0
  ST 0x40 R1
end
"#;

    #[test]
    fn hand_written_scenario_parses() {
        let doc = parse(HAND_WRITTEN).unwrap();
        assert_eq!(doc.cores(), 2);
        assert_eq!(doc.benchmark, "custom");
        assert_eq!(doc.regions.len(), 1);
        assert_eq!(
            doc.regions.get(RegionId(1)).unwrap().name,
            "shared \"flag\""
        );
        assert_eq!(doc.streams[0].len(), 3);
        // Emit -> parse is the identity.
        assert_eq!(parse(&emit(&doc)).unwrap(), doc);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "denovo-waste-trace v1\nbench x\ninput y\ncores 1\ncore 0\n  XX 0x0 R1\nend\n";
        let e = parse(bad).err().unwrap().to_string();
        assert!(e.contains("line 6"), "{e}");
        assert!(e.contains("XX"), "{e}");
    }

    #[test]
    fn core_count_mismatch_is_rejected() {
        let bad = "denovo-waste-trace v1\ncores 2\ncore 0\nend\n";
        let e = parse(bad).err().unwrap().to_string();
        assert!(e.contains("declares 2 cores"), "{e}");
    }

    #[test]
    fn out_of_order_core_sections_are_rejected() {
        let bad = "denovo-waste-trace v1\ncores 1\ncore 1\nend\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn missing_header_line_is_rejected() {
        assert!(parse("bench x\ncores 0\n").is_err());
        assert!(parse("").is_err());
    }
}
