//! Structural comparison of two traces: the first divergence, precisely
//! located, for the `trace diff` CLI and the CI determinism oracle.

use crate::TraceDocument;
use std::fmt;
use tw_types::TraceOp;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDivergence {
    /// Different benchmark names.
    Benchmark(String, String),
    /// Different input descriptions.
    Input(String, String),
    /// Different core counts.
    Cores(usize, usize),
    /// The region tables differ (described textually).
    Regions(String),
    /// The streams of one core diverge at an op index. `None` means the
    /// stream ended while the other continued.
    Stream {
        /// Core whose streams diverge.
        core: usize,
        /// Index of the first differing op.
        index: usize,
        /// The op in the first trace, if any.
        a: Option<TraceOp>,
        /// The op in the second trace, if any.
        b: Option<TraceOp>,
    },
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDivergence::Benchmark(a, b) => write!(f, "benchmark: `{a}` vs `{b}`"),
            TraceDivergence::Input(a, b) => write!(f, "input: `{a}` vs `{b}`"),
            TraceDivergence::Cores(a, b) => write!(f, "core count: {a} vs {b}"),
            TraceDivergence::Regions(d) => write!(f, "region tables differ: {d}"),
            TraceDivergence::Stream { core, index, a, b } => {
                write!(f, "core {core}, op {index}: {} vs {}", fmt_op(a), fmt_op(b))
            }
        }
    }
}

fn fmt_op(op: &Option<TraceOp>) -> String {
    match op {
        Some(op) => format!("{op:?}"),
        None => "<end of stream>".to_string(),
    }
}

/// Compares two traces, returning the first divergence (`None` = identical).
pub fn diff(a: &TraceDocument, b: &TraceDocument) -> Option<TraceDivergence> {
    if a.benchmark != b.benchmark {
        return Some(TraceDivergence::Benchmark(
            a.benchmark.clone(),
            b.benchmark.clone(),
        ));
    }
    if a.input != b.input {
        return Some(TraceDivergence::Input(a.input.clone(), b.input.clone()));
    }
    if a.cores() != b.cores() {
        return Some(TraceDivergence::Cores(a.cores(), b.cores()));
    }
    if a.regions.len() != b.regions.len() {
        return Some(TraceDivergence::Regions(format!(
            "{} vs {} regions",
            a.regions.len(),
            b.regions.len()
        )));
    }
    for (ra, rb) in a.regions.iter().zip(b.regions.iter()) {
        if ra != rb {
            return Some(TraceDivergence::Regions(format!(
                "region {} (`{}`) differs",
                ra.id, ra.name
            )));
        }
    }
    for (core, (sa, sb)) in a.streams.iter().zip(b.streams.iter()).enumerate() {
        let n = sa.len().max(sb.len());
        for index in 0..n {
            let (oa, ob) = (sa.get(index).copied(), sb.get(index).copied());
            if oa != ob {
                return Some(TraceDivergence::Stream {
                    core,
                    index,
                    a: oa,
                    b: ob,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, RegionId, RegionInfo, RegionTable, TraceOp};

    fn doc() -> TraceDocument {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        TraceDocument {
            benchmark: "custom".into(),
            input: "x".into(),
            regions,
            streams: vec![vec![
                TraceOp::load(Addr::new(0), RegionId(1)),
                TraceOp::barrier(0),
            ]],
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        assert_eq!(diff(&doc(), &doc()), None);
    }

    #[test]
    fn first_stream_divergence_is_located() {
        let a = doc();
        let mut b = doc();
        b.streams[0][1] = TraceOp::barrier(1);
        match diff(&a, &b) {
            Some(TraceDivergence::Stream {
                core: 0, index: 1, ..
            }) => {}
            d => panic!("unexpected divergence {d:?}"),
        }
    }

    #[test]
    fn length_mismatch_reports_end_of_stream() {
        let a = doc();
        let mut b = doc();
        b.streams[0].push(TraceOp::compute(3));
        let d = diff(&a, &b).unwrap();
        assert!(d.to_string().contains("<end of stream>"), "{d}");
    }

    #[test]
    fn metadata_divergences_are_reported_in_order() {
        let a = doc();
        let mut b = doc();
        b.benchmark = "other".into();
        assert!(matches!(diff(&a, &b), Some(TraceDivergence::Benchmark(..))));
        let mut c = doc();
        c.regions = {
            let mut t = RegionTable::new();
            t.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 8192));
            t
        };
        assert!(matches!(diff(&a, &c), Some(TraceDivergence::Regions(_))));
    }
}
