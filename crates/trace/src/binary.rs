//! The compact, versioned binary trace format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic      b"DNVT"                          (4 raw bytes)
//! version    u8 = 1
//! benchmark  string (varint length + UTF-8)
//! input      string
//! cores      varint
//! regions    varint count, then per region:
//!              id, name (string), base, bytes,
//!              flags u8 (bit 0: written-in-parallel-phases,
//!                        bits 1-2: bypass kind 0/1/2),
//!              comm u8 (0/1); if 1: object_bytes, offset count, offsets
//! streams    one per core, in core order; each is a sequence of ops
//!            terminated by the end-of-stream tag:
//!              0x00 load   zigzag-varint addr delta, region id
//!              0x01 store  zigzag-varint addr delta, region id
//!              0x02 compute  varint cycles
//!              0x03 barrier  varint id
//!              0xFF end of stream
//! ```
//!
//! Memory addresses are delta-encoded per core: each load/store stores the
//! zigzag of the wrapping byte-difference from the previous memory access of
//! the *same core* (initially 0), so the short strides of real reference
//! streams encode in one or two bytes while arbitrary 64-bit addresses
//! remain representable. Barrier records frame the phases: everything
//! between two barriers is one phase, and a phase may legally contain zero
//! memory operations.

use crate::varint::{read_u64, unzigzag, write_u64, zigzag};
use crate::TraceError;
use std::io::{Read, Write};
use tw_types::{Addr, BypassKind, CommRegion, MemKind, RegionId, RegionInfo, RegionTable, TraceOp};

/// Leading magic of the binary format.
pub const BINARY_MAGIC: &[u8; 4] = b"DNVT";

/// Current (and only) format version.
pub const FORMAT_VERSION: u8 = 1;

const TAG_LOAD: u8 = 0x00;
const TAG_STORE: u8 = 0x01;
const TAG_COMPUTE: u8 = 0x02;
const TAG_BARRIER: u8 = 0x03;
const TAG_END: u8 = 0xFF;

fn write_string<W: Write>(w: &mut W, s: &str) -> std::io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_string<R: Read>(r: &mut R) -> Result<String, TraceError> {
    let len = read_u64(r)? as usize;
    // A length prefix beyond any plausible metadata string means a corrupt
    // or adversarial header; refuse before allocating.
    if len > 1 << 20 {
        return Err(TraceError::Malformed(format!(
            "string length {len} exceeds the 1 MiB header limit"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|_| TraceError::Malformed("truncated string".to_string()))?;
    String::from_utf8(buf).map_err(|_| TraceError::Malformed("string is not UTF-8".to_string()))
}

fn write_region<W: Write>(w: &mut W, r: &RegionInfo) -> std::io::Result<()> {
    write_u64(w, r.id.0 as u64)?;
    write_string(w, &r.name)?;
    write_u64(w, r.base.byte())?;
    write_u64(w, r.bytes)?;
    let bypass = match r.bypass {
        BypassKind::None => 0u8,
        BypassKind::ReadThenOverwritten => 1,
        BypassKind::StreamingOncePerPhase => 2,
    };
    let flags = (r.written_in_parallel_phases as u8) | (bypass << 1);
    w.write_all(&[flags, r.comm.is_some() as u8])?;
    if let Some(comm) = &r.comm {
        write_u64(w, comm.object_bytes)?;
        write_u64(w, comm.useful_offsets.len() as u64)?;
        for &off in &comm.useful_offsets {
            write_u64(w, off)?;
        }
    }
    Ok(())
}

fn read_region<R: Read>(r: &mut R) -> Result<RegionInfo, TraceError> {
    let id = read_u64(r)?;
    if id > u16::MAX as u64 {
        return Err(TraceError::Malformed(format!("region id {id} exceeds u16")));
    }
    let name = read_string(r)?;
    let base = read_u64(r)?;
    let bytes = read_u64(r)?;
    let mut two = [0u8; 2];
    r.read_exact(&mut two)
        .map_err(|_| TraceError::Malformed("truncated region flags".to_string()))?;
    let [flags, has_comm] = two;
    let bypass = match (flags >> 1) & 0x3 {
        0 => BypassKind::None,
        1 => BypassKind::ReadThenOverwritten,
        2 => BypassKind::StreamingOncePerPhase,
        k => return Err(TraceError::Malformed(format!("unknown bypass kind {k}"))),
    };
    let comm = match has_comm {
        0 => None,
        1 => {
            let object_bytes = read_u64(r)?;
            let n = read_u64(r)? as usize;
            if n > 1 << 20 {
                return Err(TraceError::Malformed(format!(
                    "comm region with {n} offsets exceeds the sanity limit"
                )));
            }
            let mut useful_offsets = Vec::with_capacity(n);
            for _ in 0..n {
                useful_offsets.push(read_u64(r)?);
            }
            Some(CommRegion {
                object_bytes,
                useful_offsets,
            })
        }
        k => return Err(TraceError::Malformed(format!("bad comm marker {k}"))),
    };
    Ok(RegionInfo {
        id: RegionId(id as u16),
        name,
        base: Addr::new(base),
        bytes,
        comm,
        bypass,
        written_in_parallel_phases: flags & 1 != 0,
    })
}

/// Streaming encoder: header up front, then ops appended one at a time,
/// core by core. The writer never buffers a stream, so arbitrarily long
/// captures encode in constant memory.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    cores_declared: usize,
    cores_done: usize,
    prev_addr: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and readies the writer for core 0's stream.
    pub fn new(
        mut w: W,
        benchmark: &str,
        input: &str,
        cores: usize,
        regions: &RegionTable,
    ) -> Result<Self, TraceError> {
        w.write_all(BINARY_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        write_string(&mut w, benchmark)?;
        write_string(&mut w, input)?;
        write_u64(&mut w, cores as u64)?;
        write_u64(&mut w, regions.len() as u64)?;
        for r in regions.iter() {
            write_region(&mut w, r)?;
        }
        Ok(TraceWriter {
            w,
            cores_declared: cores,
            cores_done: 0,
            prev_addr: 0,
        })
    }

    /// Appends one op to the current core's stream.
    pub fn op(&mut self, op: &TraceOp) -> Result<(), TraceError> {
        if self.cores_done >= self.cores_declared {
            return Err(TraceError::Malformed(
                "op written after the last declared core stream".to_string(),
            ));
        }
        match *op {
            TraceOp::Mem { kind, addr, region } => {
                let tag = match kind {
                    MemKind::Load => TAG_LOAD,
                    MemKind::Store => TAG_STORE,
                };
                self.w.write_all(&[tag])?;
                let delta = addr.byte().wrapping_sub(self.prev_addr) as i64;
                write_u64(&mut self.w, zigzag(delta))?;
                write_u64(&mut self.w, region.0 as u64)?;
                self.prev_addr = addr.byte();
            }
            TraceOp::Compute { cycles } => {
                self.w.write_all(&[TAG_COMPUTE])?;
                write_u64(&mut self.w, cycles as u64)?;
            }
            TraceOp::Barrier { id } => {
                self.w.write_all(&[TAG_BARRIER])?;
                write_u64(&mut self.w, id as u64)?;
            }
        }
        Ok(())
    }

    /// Terminates the current core's stream and readies the next.
    pub fn end_stream(&mut self) -> Result<(), TraceError> {
        if self.cores_done >= self.cores_declared {
            return Err(TraceError::Malformed(
                "more streams ended than cores declared".to_string(),
            ));
        }
        self.w.write_all(&[TAG_END])?;
        self.cores_done += 1;
        self.prev_addr = 0;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// Fails if fewer streams were ended than cores declared in the header —
    /// a truncated file would otherwise be undetectable.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.cores_done != self.cores_declared {
            return Err(TraceError::Malformed(format!(
                "only {} of {} core streams written",
                self.cores_done, self.cores_declared
            )));
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming decoder: parses the header eagerly, then yields one core's
/// stream at a time.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    benchmark: String,
    input: String,
    cores: usize,
    cores_read: usize,
    regions: RegionTable,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| TraceError::Malformed("file shorter than the magic".to_string()))?;
        if &magic != BINARY_MAGIC {
            return Err(TraceError::Malformed(format!(
                "bad magic {magic:02x?}; expected {BINARY_MAGIC:02x?}"
            )));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)
            .map_err(|_| TraceError::Malformed("missing version byte".to_string()))?;
        if version[0] != FORMAT_VERSION {
            return Err(TraceError::Malformed(format!(
                "unsupported format version {} (this build reads version {FORMAT_VERSION})",
                version[0]
            )));
        }
        let benchmark = read_string(&mut r)?;
        let input = read_string(&mut r)?;
        let cores = read_u64(&mut r)? as usize;
        if cores == 0 || cores > 4096 {
            return Err(TraceError::Malformed(format!(
                "implausible core count {cores}"
            )));
        }
        let n_regions = read_u64(&mut r)? as usize;
        if n_regions > 1 << 16 {
            return Err(TraceError::Malformed(format!(
                "implausible region count {n_regions}"
            )));
        }
        let mut regions = RegionTable::new();
        for _ in 0..n_regions {
            let info = read_region(&mut r)?;
            // Guard before insert: RegionTable::insert panics on duplicates,
            // and untrusted bytes must never abort the process.
            if regions.get(info.id).is_some() {
                return Err(TraceError::Malformed(format!(
                    "duplicate region id {}",
                    info.id
                )));
            }
            regions.insert(info);
        }
        Ok(TraceReader {
            r,
            benchmark,
            input,
            cores,
            cores_read: 0,
            regions,
        })
    }

    /// Benchmark name from the header.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// Input description from the header.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Core count from the header.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Takes ownership of the parsed region table.
    pub fn take_regions(&mut self) -> RegionTable {
        std::mem::take(&mut self.regions)
    }

    /// Asserts the input is exhausted. Call after the last stream: trailing
    /// bytes mean a concatenated or partially overwritten file, which must
    /// not silently parse as the leading document — that would blind the
    /// determinism oracle built on `trace diff`.
    pub fn expect_eof(&mut self) -> Result<(), TraceError> {
        let mut byte = [0u8; 1];
        match self.r.read_exact(&mut byte) {
            Err(_) => Ok(()),
            Ok(()) => Err(TraceError::Malformed(
                "trailing bytes after the last declared core stream".to_string(),
            )),
        }
    }

    /// Parses the next core's stream, or `None` when all declared streams
    /// have been read.
    pub fn next_stream(&mut self) -> Result<Option<Vec<TraceOp>>, TraceError> {
        if self.cores_read == self.cores {
            return Ok(None);
        }
        let mut ops = Vec::new();
        let mut prev_addr: u64 = 0;
        loop {
            let mut tag = [0u8; 1];
            self.r.read_exact(&mut tag).map_err(|_| {
                TraceError::Malformed(format!(
                    "core {} stream truncated before its end marker",
                    self.cores_read
                ))
            })?;
            match tag[0] {
                TAG_LOAD | TAG_STORE => {
                    let delta = unzigzag(read_u64(&mut self.r)?);
                    let addr = prev_addr.wrapping_add(delta as u64);
                    prev_addr = addr;
                    let region = read_u64(&mut self.r)?;
                    if region > u16::MAX as u64 {
                        return Err(TraceError::Malformed(format!(
                            "region id {region} exceeds u16"
                        )));
                    }
                    let kind = if tag[0] == TAG_LOAD {
                        MemKind::Load
                    } else {
                        MemKind::Store
                    };
                    ops.push(TraceOp::Mem {
                        kind,
                        addr: Addr::new(addr),
                        region: RegionId(region as u16),
                    });
                }
                TAG_COMPUTE => {
                    let cycles = read_u64(&mut self.r)?;
                    if cycles > u32::MAX as u64 {
                        return Err(TraceError::Malformed(format!(
                            "compute cycles {cycles} exceed u32"
                        )));
                    }
                    ops.push(TraceOp::Compute {
                        cycles: cycles as u32,
                    });
                }
                TAG_BARRIER => {
                    let id = read_u64(&mut self.r)?;
                    if id > u32::MAX as u64 {
                        return Err(TraceError::Malformed(format!(
                            "barrier id {id} exceeds u32"
                        )));
                    }
                    ops.push(TraceOp::Barrier { id: id as u32 });
                }
                TAG_END => {
                    self.cores_read += 1;
                    return Ok(Some(ops));
                }
                t => {
                    return Err(TraceError::Malformed(format!(
                        "unknown op tag {t:#04x} in core {} stream",
                        self.cores_read
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions_one() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 1 << 20));
        t
    }

    #[test]
    fn sequential_addresses_encode_compactly() {
        // 1000 sequential word accesses: ~3 bytes per op (tag + 1-byte
        // delta + 1-byte region), far below the 13+ bytes of a naive fixed
        // encoding.
        let regions = regions_one();
        let mut w = TraceWriter::new(Vec::new(), "custom", "seq", 1, &regions).unwrap();
        for i in 0..1000u64 {
            w.op(&TraceOp::load(Addr::new(i * 4), RegionId(1))).unwrap();
        }
        w.end_stream().unwrap();
        let bytes = w.finish().unwrap();
        let header_overhead = 64; // generous bound for magic + strings + region
        assert!(
            bytes.len() < header_overhead + 1000 * 4,
            "encoding is not compact: {} bytes for 1000 ops",
            bytes.len()
        );
    }

    #[test]
    fn writer_enforces_stream_accounting() {
        let regions = regions_one();
        let w = TraceWriter::new(Vec::new(), "x", "y", 2, &regions).unwrap();
        // Finishing with only the header written must fail.
        assert!(matches!(w.finish(), Err(TraceError::Malformed(_))));

        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        w.end_stream().unwrap();
        assert!(w.end_stream().is_err());
        assert!(w.op(&TraceOp::compute(1)).is_err());
    }

    #[test]
    fn reader_rejects_future_versions_and_bad_tags() {
        let regions = regions_one();
        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        w.end_stream().unwrap();
        let mut bytes = w.finish().unwrap();

        let mut future = bytes.clone();
        future[4] = FORMAT_VERSION + 1;
        let err = TraceReader::new(future.as_slice()).err().unwrap();
        assert!(err.to_string().contains("version"), "{err}");

        // Corrupt the end-of-stream tag into an unknown op tag.
        *bytes.last_mut().unwrap() = 0x7E;
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_stream().is_err());
    }

    #[test]
    fn truncated_stream_is_detected() {
        let regions = regions_one();
        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        w.op(&TraceOp::load(Addr::new(64), RegionId(1))).unwrap();
        w.end_stream().unwrap();
        let bytes = w.finish().unwrap();
        // Drop the end marker: the reader must not silently return a stream.
        let mut r = TraceReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(r.next_stream().is_err());
    }

    #[test]
    fn duplicate_region_ids_are_a_parse_error_not_a_panic() {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 64));
        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        w.end_stream().unwrap();
        let mut bytes = w.finish().unwrap();
        // Append a second copy of the (sole) region record and bump the
        // region count from 1 to 2. The region record starts right after
        // magic(4) + version(1) + "x"(2) + "y"(2) + cores(1) + count(1).
        let region_start = 11;
        let region_end = bytes.len() - 1; // strip the end-of-stream tag
        let copy = bytes[region_start..region_end].to_vec();
        bytes[region_start - 1] = 2;
        bytes.splice(region_end..region_end, copy);
        let err = TraceReader::new(bytes.as_slice()).err().unwrap();
        assert!(err.to_string().contains("duplicate region"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_the_last_stream_are_rejected() {
        use crate::TraceDocument;
        let regions = regions_one();
        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        w.op(&TraceOp::load(Addr::new(64), RegionId(1))).unwrap();
        w.end_stream().unwrap();
        let mut bytes = w.finish().unwrap();
        assert!(TraceDocument::from_bytes(&bytes).is_ok());
        // A concatenated or partially overwritten file must not silently
        // parse as the leading document.
        bytes.push(0x00);
        let err = TraceDocument::from_bytes(&bytes).err().unwrap();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn extreme_address_jumps_round_trip() {
        let regions = regions_one();
        let addrs = [0u64, !3u64, 4, 1 << 40, 0];
        let mut w = TraceWriter::new(Vec::new(), "x", "y", 1, &regions).unwrap();
        for &a in &addrs {
            w.op(&TraceOp::store(Addr::new(a), RegionId(1))).unwrap();
        }
        w.end_stream().unwrap();
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let ops = r.next_stream().unwrap().unwrap();
        let got: Vec<u64> = ops
            .iter()
            .map(|op| match op {
                TraceOp::Mem { addr, .. } => addr.byte(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, addrs);
    }
}
