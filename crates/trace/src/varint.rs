//! LEB128 varints and zigzag mapping, the primitives of the binary format.
//!
//! Unsigned quantities (counts, region ids, cycle counts) are LEB128
//! varints; address deltas are zigzag-mapped first so that the small
//! positive *and* negative strides of real reference streams both encode in
//! one or two bytes.

use crate::TraceError;
use std::io::{Read, Write};

/// Maximum encoded length of a `u64` varint (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Writes `v` as a LEB128 varint, returning the encoded length.
pub fn write_u64<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<usize> {
    let mut n = 0;
    loop {
        n += 1;
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(n);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one LEB128 varint.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT_BYTES {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)
            .map_err(|_| TraceError::Malformed("truncated varint".to_string()))?;
        let payload = (byte[0] & 0x7f) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == MAX_VARINT_BYTES - 1 && payload > 1 {
            return Err(TraceError::Malformed("varint overflows u64".to_string()));
        }
        v |= payload << (7 * i);
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceError::Malformed(
        "varint longer than 10 bytes".to_string(),
    ))
}

/// Maps a signed value to an unsigned one with small magnitudes staying
/// small (0, -1, 1, -2 → 0, 1, 2, 3).
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v).unwrap();
            assert_eq!(n, buf.len());
            assert!(n <= MAX_VARINT_BYTES);
            assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn small_values_encode_in_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_is_rejected() {
        // Continuation bit set but no following byte.
        assert!(read_u64(&mut [0x80u8].as_slice()).is_err());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xffu8; 11];
        assert!(read_u64(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn zigzag_round_trips_and_keeps_small_magnitudes_small() {
        for v in [0i64, -1, 1, -2, 2, 1000, -1000, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
