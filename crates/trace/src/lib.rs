//! Trace capture/replay formats for per-core memory-reference streams.
//!
//! The simulator drives every protocol configuration with per-core
//! [`tw_types::TraceOp`] streams. This crate makes those streams a durable,
//! exchangeable artifact — the universal workload interface of classic
//! trace-driven cache simulators — in two encodings:
//!
//! * a **compact, versioned binary format** (`DNVT` magic + version byte)
//!   with varint/zigzag-delta-encoded addresses, explicit barrier framing of
//!   phases, per-core streams and the full region-annotation table
//!   ([`binary`]); and
//! * a **human-readable text format** for hand-written scenarios and code
//!   review ([`text`]).
//!
//! Both encodings round-trip a [`TraceDocument`] exactly; [`diff`] reports
//! the first divergence between two documents, which CI uses as a byte-exact
//! determinism oracle (see `DESIGN.md` §8).
//!
//! # Example
//!
//! ```
//! use tw_trace::TraceDocument;
//! use tw_types::{Addr, RegionId, RegionInfo, RegionTable, TraceOp};
//!
//! let mut regions = RegionTable::new();
//! regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
//! let doc = TraceDocument {
//!     benchmark: "custom".into(),
//!     input: "hand-written".into(),
//!     regions,
//!     streams: vec![vec![
//!         TraceOp::load(Addr::new(0), RegionId(1)),
//!         TraceOp::barrier(0),
//!     ]],
//! };
//! let bytes = doc.to_binary_bytes().unwrap();
//! let back = TraceDocument::from_bytes(&bytes).unwrap();
//! assert!(tw_trace::diff(&doc, &back).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod diff;
pub mod text;
pub mod varint;

pub use binary::{TraceReader, TraceWriter, BINARY_MAGIC, FORMAT_VERSION};
pub use diff::{diff, TraceDivergence};

use std::fmt;
use std::io;
use std::path::Path;
use tw_types::{RegionTable, TraceOp, TraceStats};

/// Errors reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input is not a valid trace (bad magic, truncated stream,
    /// unsupported version, unparsable text, ...). The string names the
    /// offending construct.
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A complete trace: workload metadata, region annotations and one
/// [`TraceOp`] stream per core.
///
/// This is the in-memory form both encodings serialize; `tw-workloads`
/// bridges it to and from a first-class `Workload`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDocument {
    /// Benchmark name (a paper benchmark's figure label, or anything else
    /// for external/hand-written traces — replay maps unknown names to the
    /// `Custom` benchmark kind).
    pub benchmark: String,
    /// Human-readable input description.
    pub input: String,
    /// Software-supplied region / Flex / bypass annotations.
    pub regions: RegionTable,
    /// Per-core reference streams (index = core id).
    pub streams: Vec<Vec<TraceOp>>,
}

impl TraceDocument {
    /// Number of cores the trace was recorded for.
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// Per-core summary statistics.
    pub fn stats(&self) -> Vec<TraceStats> {
        self.streams
            .iter()
            .map(|s| TraceStats::from_stream(s))
            .collect()
    }

    /// Summary statistics aggregated over all cores.
    pub fn total_stats(&self) -> TraceStats {
        let mut total = TraceStats::default();
        for s in self.stats() {
            total.merge(&s);
        }
        total
    }

    /// Serializes the document in the binary format.
    pub fn write_binary<W: io::Write>(&self, w: W) -> Result<(), TraceError> {
        let mut writer =
            TraceWriter::new(w, &self.benchmark, &self.input, self.cores(), &self.regions)?;
        for stream in &self.streams {
            for op in stream {
                writer.op(op)?;
            }
            writer.end_stream()?;
        }
        writer.finish()?;
        Ok(())
    }

    /// Parses the binary format.
    pub fn read_binary<R: io::Read>(r: R) -> Result<Self, TraceError> {
        let mut reader = TraceReader::new(r)?;
        let mut streams = Vec::with_capacity(reader.cores());
        while let Some(stream) = reader.next_stream()? {
            streams.push(stream);
        }
        reader.expect_eof()?;
        Ok(TraceDocument {
            benchmark: reader.benchmark().to_string(),
            input: reader.input().to_string(),
            regions: reader.take_regions(),
            streams,
        })
    }

    /// The binary encoding as a byte vector.
    pub fn to_binary_bytes(&self) -> Result<Vec<u8>, TraceError> {
        let mut buf = Vec::new();
        self.write_binary(&mut buf)?;
        Ok(buf)
    }

    /// The canonical content digest of this trace: the digest of its binary
    /// encoding, streamed without materializing the bytes. Two documents
    /// share a digest exactly when their binary encodings are identical,
    /// which (by the round-trip property) means they are structurally equal
    /// — this is the workload identity the experiment layer's cell identity
    /// and result-cache keys are built from.
    pub fn digest(&self) -> Result<tw_types::Digest, TraceError> {
        let mut w = tw_types::DigestWriter::new();
        self.write_binary(&mut w)?;
        Ok(w.finish())
    }

    /// The text encoding as a string.
    pub fn to_text(&self) -> String {
        text::emit(self)
    }

    /// Parses the text format.
    pub fn from_text(s: &str) -> Result<Self, TraceError> {
        text::parse(s)
    }

    /// Parses a trace in either encoding, detected by the leading magic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.starts_with(BINARY_MAGIC) {
            TraceDocument::read_binary(bytes)
        } else {
            let s = std::str::from_utf8(bytes).map_err(|_| {
                TraceError::Malformed("neither the binary magic nor valid UTF-8 text".to_string())
            })?;
            TraceDocument::from_text(s)
        }
    }

    /// Writes the trace to `path` (binary unless `as_text`).
    pub fn save(&self, path: &Path, as_text: bool) -> Result<(), TraceError> {
        if as_text {
            std::fs::write(path, self.to_text())?;
        } else {
            let file = std::fs::File::create(path)?;
            self.write_binary(io::BufWriter::new(file))?;
        }
        Ok(())
    }

    /// Reads a trace from `path` in either encoding.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path)?;
        TraceDocument::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, RegionId, RegionInfo};

    pub(crate) fn sample_doc() -> TraceDocument {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        let mut shared = RegionInfo::plain(RegionId(2), "dest array", Addr::new(4096), 8192);
        shared.bypass = tw_types::BypassKind::StreamingOncePerPhase;
        shared.written_in_parallel_phases = false;
        shared.comm = Some(tw_types::CommRegion {
            object_bytes: 96,
            useful_offsets: vec![0, 8, 16, 80],
        });
        regions.insert(shared);
        TraceDocument {
            benchmark: "FFT".into(),
            input: "64 points".into(),
            regions,
            streams: vec![
                vec![
                    TraceOp::load(Addr::new(0), RegionId(1)),
                    TraceOp::compute(12),
                    TraceOp::store(Addr::new(4096), RegionId(2)),
                    TraceOp::barrier(0),
                    TraceOp::barrier(1),
                ],
                vec![
                    TraceOp::store(Addr::new(64), RegionId(1)),
                    TraceOp::barrier(0),
                    TraceOp::load(Addr::new(4160), RegionId(2)),
                    TraceOp::barrier(1),
                ],
            ],
        }
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let doc = sample_doc();
        let bytes = doc.to_binary_bytes().unwrap();
        assert_eq!(&bytes[..4], BINARY_MAGIC);
        let back = TraceDocument::from_bytes(&bytes).unwrap();
        assert_eq!(doc, back);
        assert!(diff(&doc, &back).is_none());
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let doc = sample_doc();
        let text = doc.to_text();
        let back = TraceDocument::from_bytes(text.as_bytes()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn stats_summarize_streams() {
        let doc = sample_doc();
        let total = doc.total_stats();
        assert_eq!(total.loads, 2);
        assert_eq!(total.stores, 2);
        assert_eq!(total.compute_cycles, 12);
        assert_eq!(total.barriers, 4);
        assert_eq!(doc.stats().len(), 2);
    }

    #[test]
    fn digest_matches_binary_bytes_and_tracks_content() {
        let doc = sample_doc();
        let streamed = doc.digest().unwrap();
        let materialized = tw_types::Digest::of_bytes(&doc.to_binary_bytes().unwrap());
        assert_eq!(streamed, materialized);

        // Any content change — op stream, metadata, region annotations —
        // must move the digest.
        let mut other = sample_doc();
        other.streams[0][0] = TraceOp::load(Addr::new(8), RegionId(1));
        assert_ne!(other.digest().unwrap(), streamed);
        let mut other = sample_doc();
        other.input = "65 points".into();
        assert_ne!(other.digest().unwrap(), streamed);
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(matches!(
            TraceDocument::from_bytes(&[0xde, 0xad, 0xbe, 0xef]),
            Err(TraceError::Malformed(_))
        ));
        assert!(TraceDocument::from_bytes(b"not a trace").is_err());
    }

    #[test]
    fn save_and_load_both_encodings() {
        let dir = std::env::temp_dir().join("tw-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let doc = sample_doc();
        for (name, as_text) in [("t.trace", false), ("t.txt", true)] {
            let path = dir.join(name);
            doc.save(&path, as_text).unwrap();
            assert_eq!(TraceDocument::load(&path).unwrap(), doc);
            std::fs::remove_file(&path).ok();
        }
    }
}
