//! Coherence-protocol state machines: directory-based MESI, DeNovo, and the
//! Dragon write-update extension.
//!
//! The protocol families keep very different state:
//!
//! * **MESI** tracks a line-granularity state (`I`/`S`/`E`/`M`) in each L1
//!   and a directory entry (owner + sharer set) alongside the inclusive L2.
//!   Stores to `S` lines need an Upgrade, stores to `I` lines a GetM with a
//!   full-line data response (fetch-on-write), and the blocking directory
//!   produces unblock messages, invalidations and acknowledgements.
//! * **DeNovo** tracks word-granularity state (`Invalid`/`Valid`/`Registered`)
//!   in the L1s, and the shared L2 doubles as the registry: each word is
//!   either valid at the L2 or registered to the core that owns it. There are
//!   no sharer lists; stale data is removed by self-invalidation at barriers.
//! * **Dragon** tracks a line-granularity state (`I`/`E`/`Sc`/`Sm`/`M`) in
//!   each L1 and a sharer set plus dirty-owner at the home L2. Stores to
//!   shared lines broadcast the written words to the sharers as updates —
//!   the sharer set never shrinks on a write.
//!
//! The transaction *choreography* (which messages travel where, with what
//! latency) lives in the simulator crate (`denovo-waste`); this crate owns the
//! state types, their legal transitions, and the pure decision functions
//! (response sizing under Flex, store policies, self-invalidation filters)
//! so they can be tested exhaustively in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod denovo;
pub mod dragon;
pub mod flex;
pub mod mesi;

pub use denovo::{DenovoL1Line, DenovoL2Line, DenovoWordState, L2WordOwner};
pub use dragon::{DragonDirectory, DragonState};
pub use flex::{flex_fetch_plan, FlexPlan};
pub use mesi::{DirectoryEntry, MesiState, SharerSet};
