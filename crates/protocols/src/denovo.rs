//! DeNovo word-granularity coherence state.
//!
//! DeNovo replaces sharer lists and invalidation traffic with three per-word
//! states and software-guaranteed data-race freedom (paper §2):
//!
//! * at an L1, a word is `Invalid`, `Valid` (a clean copy readable until the
//!   next self-invalidation), or `Registered` (this core owns the only
//!   up-to-date copy and may read and write it);
//! * at the shared L2, a word is either valid (the L2 holds the data), or
//!   registered to some core (the L2's data array stores *which* core instead
//!   of data — "the L2 cache is used to store per-word ownership"), or
//!   invalid.

use std::fmt;
use tw_types::{CoreId, RegionId, WordIdx, WordMask, WORDS_PER_LINE};

/// State of one word in a private L1 under DeNovo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum DenovoWordState {
    /// No usable copy.
    #[default]
    Invalid,
    /// Clean copy, readable until self-invalidated.
    Valid,
    /// This core holds the registered (owned, writable) copy.
    Registered,
}

impl DenovoWordState {
    /// Whether a load hits on this word.
    pub const fn can_read(self) -> bool {
        !matches!(self, DenovoWordState::Invalid)
    }

    /// Whether a store completes locally without a registration request.
    pub const fn is_registered(self) -> bool {
        matches!(self, DenovoWordState::Registered)
    }
}

impl fmt::Display for DenovoWordState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DenovoWordState::Invalid => "I",
            DenovoWordState::Valid => "V",
            DenovoWordState::Registered => "R",
        };
        f.write_str(s)
    }
}

/// Per-line DeNovo metadata in an L1: the word states plus the region of the
/// data (used to make self-invalidation precise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenovoL1Line {
    /// State of each word.
    pub words: [DenovoWordState; WORDS_PER_LINE],
    /// Region of the line's data (one region per line is sufficient for the
    /// generated workloads, whose regions are line-aligned arrays).
    pub region: RegionId,
}

impl Default for DenovoL1Line {
    fn default() -> Self {
        DenovoL1Line {
            words: [DenovoWordState::Invalid; WORDS_PER_LINE],
            region: RegionId::DEFAULT,
        }
    }
}

impl DenovoL1Line {
    /// Creates an all-invalid line tagged with `region`.
    pub fn new(region: RegionId) -> Self {
        DenovoL1Line {
            words: [DenovoWordState::Invalid; WORDS_PER_LINE],
            region,
        }
    }

    /// State of one word.
    pub fn word(&self, w: WordIdx) -> DenovoWordState {
        self.words[w.index()]
    }

    /// Sets the state of one word.
    pub fn set_word(&mut self, w: WordIdx, state: DenovoWordState) {
        self.words[w.index()] = state;
    }

    /// Mask of words in a given state.
    pub fn mask_in(&self, state: DenovoWordState) -> WordMask {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == state)
            .map(|(i, _)| WordIdx(i as u8))
            .collect()
    }

    /// Mask of words that can satisfy a load (valid or registered).
    pub fn readable_mask(&self) -> WordMask {
        self.mask_in(DenovoWordState::Valid)
            .union(self.mask_in(DenovoWordState::Registered))
    }

    /// Applies self-invalidation: every `Valid` word becomes `Invalid`,
    /// `Registered` words are kept (they are the up-to-date copy). Returns
    /// the mask of words invalidated.
    pub fn self_invalidate(&mut self) -> WordMask {
        let mut invalidated = WordMask::EMPTY;
        for (i, s) in self.words.iter_mut().enumerate() {
            if *s == DenovoWordState::Valid {
                *s = DenovoWordState::Invalid;
                invalidated.insert(WordIdx(i as u8));
            }
        }
        invalidated
    }

    /// Whether the line holds no readable word and can be dropped.
    pub fn is_empty(&self) -> bool {
        self.readable_mask().is_empty()
    }
}

/// Who holds the up-to-date copy of a word, from the L2's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum L2WordOwner {
    /// No valid copy anywhere on chip (must fetch from memory).
    #[default]
    Invalid,
    /// The L2 data array holds the valid copy.
    AtL2,
    /// The word is registered to (owned by) a core's L1.
    RegisteredTo(CoreId),
}

impl L2WordOwner {
    /// Whether the L2 can serve the word itself.
    pub const fn servable_by_l2(self) -> bool {
        matches!(self, L2WordOwner::AtL2)
    }

    /// The registered core, if any.
    pub const fn registrant(self) -> Option<CoreId> {
        match self {
            L2WordOwner::RegisteredTo(c) => Some(c),
            _ => None,
        }
    }
}

/// Per-line DeNovo metadata at the shared L2: word ownership plus per-word
/// dirty bits (set when a registered word's data is written back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenovoL2Line {
    /// Ownership of each word.
    pub owners: [L2WordOwner; WORDS_PER_LINE],
}

impl Default for DenovoL2Line {
    fn default() -> Self {
        DenovoL2Line {
            owners: [L2WordOwner::Invalid; WORDS_PER_LINE],
        }
    }
}

impl DenovoL2Line {
    /// Ownership of one word.
    pub fn owner(&self, w: WordIdx) -> L2WordOwner {
        self.owners[w.index()]
    }

    /// Sets the ownership of one word.
    pub fn set_owner(&mut self, w: WordIdx, owner: L2WordOwner) {
        self.owners[w.index()] = owner;
    }

    /// Registers `words` to `core`, returning for each word the previous
    /// registrant (if different from `core`) so the caller can send the
    /// invalidation the protocol requires.
    pub fn register(&mut self, words: WordMask, core: CoreId) -> Vec<(WordIdx, CoreId)> {
        let mut displaced = Vec::new();
        for w in words.iter() {
            if let L2WordOwner::RegisteredTo(prev) = self.owners[w.index()] {
                if prev != core {
                    displaced.push((w, prev));
                }
            }
            self.owners[w.index()] = L2WordOwner::RegisteredTo(core);
        }
        displaced
    }

    /// Accepts a writeback of `words` from `core`: the words become valid at
    /// the L2 again. Words registered to a *different* core are left alone
    /// (a stale writeback racing a newer registration).
    pub fn accept_writeback(&mut self, words: WordMask, core: CoreId) -> WordMask {
        let mut accepted = WordMask::EMPTY;
        for w in words.iter() {
            match self.owners[w.index()] {
                L2WordOwner::RegisteredTo(c) if c != core => {}
                _ => {
                    self.owners[w.index()] = L2WordOwner::AtL2;
                    accepted.insert(w);
                }
            }
        }
        accepted
    }

    /// Mask of words the L2 itself can serve.
    pub fn valid_at_l2(&self) -> WordMask {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.servable_by_l2())
            .map(|(i, _)| WordIdx(i as u8))
            .collect()
    }

    /// Mask of words registered to any core.
    pub fn registered_mask(&self) -> WordMask {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.registrant().is_some())
            .map(|(i, _)| WordIdx(i as u8))
            .collect()
    }

    /// Mask of words registered to a specific core.
    pub fn registered_to(&self, core: CoreId) -> WordMask {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.registrant() == Some(core))
            .map(|(i, _)| WordIdx(i as u8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_state_predicates() {
        assert!(!DenovoWordState::Invalid.can_read());
        assert!(DenovoWordState::Valid.can_read());
        assert!(DenovoWordState::Registered.can_read());
        assert!(DenovoWordState::Registered.is_registered());
        assert!(!DenovoWordState::Valid.is_registered());
        assert_eq!(DenovoWordState::Registered.to_string(), "R");
    }

    #[test]
    fn l1_line_masks_and_self_invalidation() {
        let mut line = DenovoL1Line::new(RegionId(4));
        line.set_word(WordIdx(0), DenovoWordState::Valid);
        line.set_word(WordIdx(1), DenovoWordState::Registered);
        line.set_word(WordIdx(2), DenovoWordState::Valid);
        assert_eq!(line.readable_mask().count(), 3);
        assert_eq!(line.region, RegionId(4));

        let invalidated = line.self_invalidate();
        assert_eq!(invalidated.count(), 2);
        assert!(invalidated.contains(WordIdx(0)));
        assert!(!invalidated.contains(WordIdx(1)));
        assert_eq!(line.word(WordIdx(1)), DenovoWordState::Registered);
        assert_eq!(line.word(WordIdx(0)), DenovoWordState::Invalid);
        assert!(!line.is_empty());
    }

    #[test]
    fn empty_line_detection() {
        let mut line = DenovoL1Line::default();
        assert!(line.is_empty());
        line.set_word(WordIdx(5), DenovoWordState::Valid);
        assert!(!line.is_empty());
        line.self_invalidate();
        assert!(line.is_empty());
    }

    #[test]
    fn l2_registration_displaces_previous_registrant() {
        let mut l2 = DenovoL2Line::default();
        let words = WordMask::from_bits(0b1111);
        assert!(l2.register(words, CoreId(1)).is_empty());
        // Re-registration by the same core displaces nobody.
        assert!(l2
            .register(WordMask::from_bits(0b0011), CoreId(1))
            .is_empty());
        // Another core registering two of the words displaces core 1 for them.
        let displaced = l2.register(WordMask::from_bits(0b0110), CoreId(2));
        assert_eq!(displaced.len(), 2);
        assert!(displaced.iter().all(|(_, c)| *c == CoreId(1)));
        assert_eq!(l2.registered_to(CoreId(2)).count(), 2);
        assert_eq!(l2.registered_to(CoreId(1)).count(), 2);
    }

    #[test]
    fn l2_writeback_restores_l2_validity() {
        let mut l2 = DenovoL2Line::default();
        l2.register(WordMask::from_bits(0b11), CoreId(3));
        let accepted = l2.accept_writeback(WordMask::from_bits(0b11), CoreId(3));
        assert_eq!(accepted.count(), 2);
        assert_eq!(l2.valid_at_l2().count(), 2);
        assert!(l2.registered_mask().is_empty());
    }

    #[test]
    fn stale_writeback_from_displaced_core_is_ignored() {
        let mut l2 = DenovoL2Line::default();
        l2.register(WordMask::from_bits(0b1), CoreId(1));
        l2.register(WordMask::from_bits(0b1), CoreId(2));
        let accepted = l2.accept_writeback(WordMask::from_bits(0b1), CoreId(1));
        assert!(accepted.is_empty());
        assert_eq!(l2.owner(WordIdx(0)), L2WordOwner::RegisteredTo(CoreId(2)));
    }

    #[test]
    fn ownership_queries() {
        let mut l2 = DenovoL2Line::default();
        assert_eq!(l2.owner(WordIdx(0)), L2WordOwner::Invalid);
        assert!(!L2WordOwner::Invalid.servable_by_l2());
        l2.set_owner(WordIdx(0), L2WordOwner::AtL2);
        assert!(l2.owner(WordIdx(0)).servable_by_l2());
        l2.set_owner(WordIdx(1), L2WordOwner::RegisteredTo(CoreId(9)));
        assert_eq!(l2.owner(WordIdx(1)).registrant(), Some(CoreId(9)));
        assert_eq!(l2.valid_at_l2().count(), 1);
        assert_eq!(l2.registered_mask().count(), 1);
    }
}
