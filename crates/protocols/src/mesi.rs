//! MESI line states and the directory entry kept at the inclusive L2.

use std::fmt;
use tw_types::CoreId;

/// Stable MESI states of a line in a private L1.
///
/// Transient states of the blocking GEMS-style directory protocol are not
/// enumerated: the simulator serializes each transaction at the home node, so
/// a line is always observed in a stable state between transactions (requests
/// that would hit a line in transition are the ones the paper's protocol
/// NACKs or holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum MesiState {
    /// Invalid — the L1 holds no data for the line.
    #[default]
    Invalid,
    /// Shared — read-only copy; other caches may also hold copies.
    Shared,
    /// Exclusive — the only copy on chip and it is clean; a store may upgrade
    /// to Modified silently.
    Exclusive,
    /// Modified — the only copy on chip and it is dirty.
    Modified,
}

impl MesiState {
    /// Whether a load hits in this state.
    pub const fn can_read(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether a store hits (possibly via the silent E→M upgrade) without any
    /// network traffic.
    pub const fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Exclusive | MesiState::Modified)
    }

    /// Whether the line must be written back when evicted.
    pub const fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Invalid => "I",
            MesiState::Shared => "S",
            MesiState::Exclusive => "E",
            MesiState::Modified => "M",
        };
        f.write_str(c)
    }
}

/// A compact sharer bit-set for up to 64 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Inserts a core.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.0;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1 << core.0);
    }

    /// Whether the core is in the set.
    pub const fn contains(self, core: CoreId) -> bool {
        self.0 & (1 << core.0) != 0
    }

    /// Number of sharers.
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the sharers in ascending core order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..64).filter(move |i| self.0 & (1 << i) != 0).map(CoreId)
    }

    /// Removes every sharer except `keep`, returning the cores removed.
    pub fn invalidate_others(&mut self, keep: CoreId) -> Vec<CoreId> {
        let removed: Vec<CoreId> = self.iter().filter(|c| *c != keep).collect();
        self.0 = if self.contains(keep) { 1 << keep.0 } else { 0 };
        removed
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        let mut s = SharerSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory state for one line, kept alongside the inclusive L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectoryEntry {
    /// Core holding the line in `E` or `M`, if any.
    pub owner: Option<CoreId>,
    /// Cores holding the line in `S`.
    pub sharers: SharerSet,
}

impl DirectoryEntry {
    /// Whether no L1 holds the line.
    pub fn is_idle(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }

    /// Records a read by `core`. Returns the previous exclusive owner, if the
    /// line must first be downgraded/fetched from it.
    pub fn record_read(&mut self, core: CoreId) -> Option<CoreId> {
        let prev = self.owner.take();
        if let Some(o) = prev {
            if o != core {
                self.sharers.insert(o);
            }
        }
        self.sharers.insert(core);
        prev.filter(|o| *o != core)
    }

    /// Whether a read response may grant the Exclusive state (no other copy on
    /// chip).
    pub fn grants_exclusive(&self, core: CoreId) -> bool {
        self.owner.is_none()
            && (self.sharers.is_empty()
                || (self.sharers.count() == 1 && self.sharers.contains(core)))
    }

    /// Records a write by `core`. Returns `(previous_owner, invalidated
    /// sharers)`: the owner must supply/invalidate its copy, the sharers must
    /// be sent invalidations.
    pub fn record_write(&mut self, core: CoreId) -> (Option<CoreId>, Vec<CoreId>) {
        let prev_owner = self.owner.filter(|o| *o != core);
        let mut sharers = std::mem::take(&mut self.sharers);
        let invalidated = sharers.invalidate_others(core);
        self.sharers = SharerSet::EMPTY;
        self.owner = Some(core);
        (prev_owner, invalidated)
    }

    /// Records that `core` dropped or wrote back its copy.
    pub fn record_eviction(&mut self, core: CoreId) {
        if self.owner == Some(core) {
            self.owner = None;
        }
        self.sharers.remove(core);
    }

    /// Every core with any copy (owner first).
    pub fn holders(&self) -> Vec<CoreId> {
        let mut v = Vec::new();
        if let Some(o) = self.owner {
            v.push(o);
        }
        v.extend(self.sharers.iter().filter(|c| Some(*c) != self.owner));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(!MesiState::Invalid.can_read());
        assert!(MesiState::Shared.can_read());
        assert!(!MesiState::Shared.can_write_silently());
        assert!(MesiState::Exclusive.can_write_silently());
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert_eq!(MesiState::Modified.to_string(), "M");
    }

    #[test]
    fn sharer_set_operations() {
        let mut s = SharerSet::EMPTY;
        s.insert(CoreId(3));
        s.insert(CoreId(7));
        assert!(s.contains(CoreId(3)));
        assert_eq!(s.count(), 2);
        let removed = s.invalidate_others(CoreId(3));
        assert_eq!(removed, vec![CoreId(7)]);
        assert_eq!(s.count(), 1);
        s.remove(CoreId(3));
        assert!(s.is_empty());
    }

    #[test]
    fn first_reader_gets_exclusive() {
        let mut d = DirectoryEntry::default();
        assert!(d.is_idle());
        assert!(d.grants_exclusive(CoreId(0)));
        assert_eq!(d.record_read(CoreId(0)), None);
        // A second reader does not get E, and nobody needs downgrading
        // (the directory knows core 0 only has S or E-clean; the simulator
        // checks the L1 state for the M case).
        assert!(!d.grants_exclusive(CoreId(1)));
    }

    #[test]
    fn read_after_owner_requires_downgrade() {
        let mut d = DirectoryEntry::default();
        d.record_write(CoreId(2));
        let prev = d.record_read(CoreId(5));
        assert_eq!(prev, Some(CoreId(2)));
        assert!(d.sharers.contains(CoreId(2)));
        assert!(d.sharers.contains(CoreId(5)));
        assert_eq!(d.owner, None);
    }

    #[test]
    fn write_invalidates_sharers_and_takes_ownership() {
        let mut d = DirectoryEntry::default();
        d.record_read(CoreId(0));
        d.record_read(CoreId(1));
        d.record_read(CoreId(2));
        let (prev_owner, invalidated) = d.record_write(CoreId(1));
        assert_eq!(prev_owner, None);
        let mut inv: Vec<usize> = invalidated.iter().map(|c| c.0).collect();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 2]);
        assert_eq!(d.owner, Some(CoreId(1)));
        assert!(d.sharers.is_empty());
    }

    #[test]
    fn write_after_other_owner_forwards_from_owner() {
        let mut d = DirectoryEntry::default();
        d.record_write(CoreId(4));
        let (prev_owner, invalidated) = d.record_write(CoreId(9));
        assert_eq!(prev_owner, Some(CoreId(4)));
        assert!(invalidated.is_empty());
        assert_eq!(d.owner, Some(CoreId(9)));
    }

    #[test]
    fn eviction_clears_holder_state() {
        let mut d = DirectoryEntry::default();
        d.record_write(CoreId(3));
        d.record_eviction(CoreId(3));
        assert!(d.is_idle());
        d.record_read(CoreId(1));
        d.record_eviction(CoreId(1));
        assert!(d.is_idle());
    }

    #[test]
    fn holders_lists_owner_first() {
        let mut d = DirectoryEntry::default();
        d.record_read(CoreId(5));
        d.record_read(CoreId(2));
        assert_eq!(d.holders().len(), 2);
        let mut d2 = DirectoryEntry::default();
        d2.record_write(CoreId(7));
        assert_eq!(d2.holders(), vec![CoreId(7)]);
    }

    #[test]
    fn re_read_by_same_core_keeps_exclusivity_check_sane() {
        let mut d = DirectoryEntry::default();
        d.record_read(CoreId(6));
        assert!(
            d.grants_exclusive(CoreId(6)),
            "sole sharer re-reading stays exclusive-eligible"
        );
        assert!(!d.grants_exclusive(CoreId(0)));
    }
}
