//! Dragon write-update line states and the sharer directory at the home L2.
//!
//! Dragon is the classic write-*update* design point: a store to a line with
//! other sharers broadcasts the written words to them instead of invalidating
//! their copies, so readers never re-fetch. The four valid states split on
//! two axes — sole copy vs. shared, clean vs. dirty:
//!
//! |           | clean          | dirty                |
//! |-----------|----------------|----------------------|
//! | sole copy | `Exclusive`    | `Modified`           |
//! | shared    | `SharedClean`  | `SharedModified`     |
//!
//! Exactly one sharer holds `SharedModified` at a time (the last writer); it
//! owns the eventual writeback. The original Dragon snooped a bus; here the
//! same protocol runs over the directory substrate used for MESI — the home
//! L2 slice tracks the sharer set and the dirty owner, and "broadcast"
//! becomes a home-fanned multicast of [`tw_types::MessageKind::UpdateData`]
//! messages. As with MESI, transient states are not enumerated: transactions
//! serialize at the home node.

use crate::mesi::SharerSet;
use std::fmt;
use tw_types::CoreId;

/// Stable Dragon states of a line in a private L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum DragonState {
    /// Invalid — the L1 holds no data for the line. (Dragon papers omit `I`
    /// from the state list because updates never invalidate; lines still
    /// start cold and get evicted.)
    #[default]
    Invalid,
    /// Exclusive — the only copy on chip, clean; a store may upgrade to
    /// Modified silently.
    Exclusive,
    /// Shared-Clean — other caches may hold copies; memory (or the
    /// Shared-Modified owner) is responsible for the data.
    SharedClean,
    /// Shared-Modified — other caches hold copies, this one is dirty and owns
    /// the eventual writeback. At most one sharer is in this state.
    SharedModified,
    /// Modified — the only copy on chip and it is dirty.
    Modified,
}

impl DragonState {
    /// Whether a load hits in this state.
    pub const fn can_read(self) -> bool {
        !matches!(self, DragonState::Invalid)
    }

    /// Whether a store hits without any network traffic (sole-copy states;
    /// the silent E→M upgrade, as in MESI).
    pub const fn can_write_silently(self) -> bool {
        matches!(self, DragonState::Exclusive | DragonState::Modified)
    }

    /// Whether the line must be written back when evicted.
    pub const fn is_dirty(self) -> bool {
        matches!(self, DragonState::SharedModified | DragonState::Modified)
    }

    /// Whether other caches may hold copies (a store in these states must
    /// broadcast an update instead of writing silently).
    pub const fn is_shared(self) -> bool {
        matches!(self, DragonState::SharedClean | DragonState::SharedModified)
    }

    /// State granted to a read-miss fill: `Exclusive` when the directory saw
    /// no other copy, `SharedClean` otherwise.
    pub const fn fill_for_read(exclusive: bool) -> DragonState {
        if exclusive {
            DragonState::Exclusive
        } else {
            DragonState::SharedClean
        }
    }

    /// State after this core wins a write: `SharedModified` while other
    /// copies exist (they were just updated, not invalidated), `Modified`
    /// when the copy is sole.
    pub const fn after_local_write(others_share: bool) -> DragonState {
        if others_share {
            DragonState::SharedModified
        } else {
            DragonState::Modified
        }
    }

    /// State after an update broadcast from another core lands in this copy:
    /// the writer took over dirty ownership, so a `SharedModified` holder
    /// demotes to `SharedClean`; `SharedClean` stays put.
    pub const fn after_remote_update(self) -> DragonState {
        match self {
            DragonState::SharedModified | DragonState::SharedClean => DragonState::SharedClean,
            // Sole-copy and Invalid states never receive updates (the
            // directory only multicasts to recorded sharers); identity keeps
            // the function total.
            other => other,
        }
    }
}

impl fmt::Display for DragonState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            DragonState::Invalid => "I",
            DragonState::Exclusive => "E",
            DragonState::SharedClean => "Sc",
            DragonState::SharedModified => "Sm",
            DragonState::Modified => "M",
        };
        f.write_str(c)
    }
}

/// Directory state for one line, kept alongside the inclusive L2 at the home
/// slice.
///
/// Unlike the MESI [`crate::mesi::DirectoryEntry`], `sharers` holds *every*
/// core with a copy, including the dirty owner — Dragon never shrinks the
/// sharer set on a write, so there is no owner/sharer partition to maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DragonDirectory {
    /// Every core holding a copy (any non-Invalid state).
    pub sharers: SharerSet,
    /// The core whose copy is dirty (`Sm` or `M`), if any: the one a read
    /// miss must fetch from and the one that owes the writeback.
    pub owner: Option<CoreId>,
}

impl DragonDirectory {
    /// Whether no L1 holds the line.
    pub fn is_idle(&self) -> bool {
        self.sharers.is_empty()
    }

    /// Whether a read-miss response may grant `Exclusive` (no other copy on
    /// chip).
    pub fn grants_exclusive(&self, core: CoreId) -> bool {
        self.sharers.is_empty() || (self.sharers.count() == 1 && self.sharers.contains(core))
    }

    /// Records a read by `core`. Returns the dirty holder that must supply
    /// the data (its state is untouched — in Dragon a snooped read leaves the
    /// owner dirty, `M` holders demote to `Sm` in their own L1).
    pub fn record_read(&mut self, core: CoreId) -> Option<CoreId> {
        self.sharers.insert(core);
        self.owner.filter(|o| *o != core)
    }

    /// Records a write by `core`. Returns `(previous dirty holder, sharers
    /// to update)`: on a write miss the previous holder supplies the line;
    /// every other sharer receives the written words as an update and *keeps*
    /// its copy — the defining difference from
    /// [`crate::mesi::DirectoryEntry::record_write`], which invalidates them.
    pub fn record_write(&mut self, core: CoreId) -> (Option<CoreId>, Vec<CoreId>) {
        let prev_owner = self.owner.filter(|o| *o != core);
        self.sharers.insert(core);
        let updated: Vec<CoreId> = self.sharers.iter().filter(|c| *c != core).collect();
        self.owner = Some(core);
        (prev_owner, updated)
    }

    /// Records that `core` dropped or wrote back its copy.
    pub fn record_eviction(&mut self, core: CoreId) {
        self.sharers.remove(core);
        if self.owner == Some(core) {
            self.owner = None;
        }
    }

    /// Every core with a copy (dirty owner first, then the rest ascending).
    pub fn holders(&self) -> Vec<CoreId> {
        let mut v = Vec::new();
        if let Some(o) = self.owner {
            v.push(o);
        }
        v.extend(self.sharers.iter().filter(|c| Some(*c) != self.owner));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(!DragonState::Invalid.can_read());
        assert!(DragonState::SharedClean.can_read());
        assert!(DragonState::Exclusive.can_write_silently());
        assert!(DragonState::Modified.can_write_silently());
        assert!(!DragonState::SharedClean.can_write_silently());
        assert!(!DragonState::SharedModified.can_write_silently());
        assert!(DragonState::SharedModified.is_dirty());
        assert!(DragonState::Modified.is_dirty());
        assert!(!DragonState::SharedClean.is_dirty());
        assert!(DragonState::SharedClean.is_shared());
        assert!(DragonState::SharedModified.is_shared());
        assert!(!DragonState::Exclusive.is_shared());
        assert_eq!(DragonState::SharedModified.to_string(), "Sm");
    }

    #[test]
    fn fill_and_write_transitions() {
        assert_eq!(DragonState::fill_for_read(true), DragonState::Exclusive);
        assert_eq!(DragonState::fill_for_read(false), DragonState::SharedClean);
        assert_eq!(
            DragonState::after_local_write(true),
            DragonState::SharedModified
        );
        assert_eq!(DragonState::after_local_write(false), DragonState::Modified);
        assert_eq!(
            DragonState::SharedModified.after_remote_update(),
            DragonState::SharedClean
        );
        assert_eq!(
            DragonState::SharedClean.after_remote_update(),
            DragonState::SharedClean
        );
    }

    #[test]
    fn first_reader_gets_exclusive() {
        let mut d = DragonDirectory::default();
        assert!(d.is_idle());
        assert!(d.grants_exclusive(CoreId(0)));
        assert_eq!(d.record_read(CoreId(0)), None);
        assert!(
            d.grants_exclusive(CoreId(0)),
            "sole sharer re-reads as sole"
        );
        assert!(!d.grants_exclusive(CoreId(1)));
    }

    #[test]
    fn read_after_writer_fetches_from_dirty_holder() {
        let mut d = DragonDirectory::default();
        d.record_write(CoreId(2));
        let supplier = d.record_read(CoreId(5));
        assert_eq!(supplier, Some(CoreId(2)));
        // The dirty holder keeps ownership (M demotes to Sm in its L1, still
        // dirty) — a later eviction must still write back.
        assert_eq!(d.owner, Some(CoreId(2)));
        assert_eq!(d.holders(), vec![CoreId(2), CoreId(5)]);
    }

    #[test]
    fn write_updates_sharers_instead_of_invalidating() {
        let mut d = DragonDirectory::default();
        d.record_read(CoreId(0));
        d.record_read(CoreId(1));
        d.record_read(CoreId(2));
        let (prev_owner, updated) = d.record_write(CoreId(1));
        assert_eq!(prev_owner, None);
        let mut upd: Vec<usize> = updated.iter().map(|c| c.0).collect();
        upd.sort_unstable();
        assert_eq!(upd, vec![0, 2]);
        // Every sharer keeps its copy — the sharer set never shrinks on a
        // write. This is the line MESI's record_write empties.
        assert_eq!(d.sharers.count(), 3);
        assert_eq!(d.owner, Some(CoreId(1)));
    }

    #[test]
    fn dirty_ownership_transfers_between_writers() {
        let mut d = DragonDirectory::default();
        d.record_write(CoreId(4));
        d.record_read(CoreId(9));
        let (prev_owner, updated) = d.record_write(CoreId(9));
        assert_eq!(prev_owner, Some(CoreId(4)));
        assert_eq!(updated, vec![CoreId(4)]);
        assert_eq!(d.owner, Some(CoreId(9)));
        assert_eq!(d.sharers.count(), 2);
    }

    #[test]
    fn eviction_clears_holder_state() {
        let mut d = DragonDirectory::default();
        d.record_write(CoreId(3));
        d.record_read(CoreId(1));
        d.record_eviction(CoreId(3));
        assert_eq!(d.owner, None);
        assert_eq!(d.holders(), vec![CoreId(1)]);
        d.record_eviction(CoreId(1));
        assert!(d.is_idle());
    }

    #[test]
    fn sole_writer_needs_no_updates() {
        let mut d = DragonDirectory::default();
        d.record_read(CoreId(6));
        let (prev_owner, updated) = d.record_write(CoreId(6));
        assert_eq!(prev_owner, None);
        assert!(updated.is_empty());
    }
}
