//! Flex (flexible communication granularity) response planning.
//!
//! Given a demand miss address and the software-supplied communication
//! region, Flex decides which words — possibly spread over several cache
//! lines — a responder should return (paper §2 and §3.1 "L2 Flex"). The plan
//! is pure address arithmetic, so it lives here where it can be tested
//! exhaustively; the simulator decides which of the planned words each
//! responder can actually supply.

use tw_types::{Addr, CommRegion, LineAddr, NocConfig, RegionInfo, RegionTable, WordMask};

/// The set of `(line, words)` a Flex response should carry for one demand
/// miss, split into packets that respect the network's payload limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexPlan {
    /// Per-line word selections, in ascending line order. The demanded line is
    /// always present.
    pub lines: Vec<(LineAddr, WordMask)>,
}

impl FlexPlan {
    /// A plain (non-Flex) plan: the whole line containing `addr`.
    pub fn whole_line(addr: Addr, line_bytes: u64) -> Self {
        FlexPlan {
            lines: vec![(LineAddr::containing(addr, line_bytes), WordMask::FULL)],
        }
    }

    /// Total words selected across all lines.
    pub fn total_words(&self) -> usize {
        self.lines.iter().map(|(_, m)| m.count()).sum()
    }

    /// Number of distinct cache lines touched.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Splits the plan into response packets of at most the network's maximum
    /// data payload, returning the word count of each packet.
    pub fn packets(&self, noc: &NocConfig) -> Vec<usize> {
        let max = noc.max_data_words();
        let mut packets = Vec::new();
        let mut current = 0usize;
        for (_, mask) in &self.lines {
            let mut remaining = mask.count();
            while remaining > 0 {
                let space = max - current;
                let take = remaining.min(space);
                current += take;
                remaining -= take;
                if current == max {
                    packets.push(current);
                    current = 0;
                }
            }
        }
        if current > 0 {
            packets.push(current);
        }
        packets
    }

    /// Restricts the plan to lines within the same DRAM row as the demanded
    /// address (the "L2 Flex" rule: only lines in the open row are fetched
    /// from memory, §3.1).
    pub fn restrict_to_dram_row(&self, demand: Addr, line_bytes: u64, row_bytes: u64) -> FlexPlan {
        let row = LineAddr::containing(demand, line_bytes).dram_row(row_bytes);
        FlexPlan {
            lines: self
                .lines
                .iter()
                .filter(|(l, _)| l.dram_row(row_bytes) == row)
                .cloned()
                .collect(),
        }
    }
}

/// Builds the Flex fetch plan for a demand miss at `addr`.
///
/// If the address belongs to a region with a communication region, the plan
/// covers the useful words of the containing object (grouped by line); the
/// word actually demanded is always included even if the annotation omits it.
/// Otherwise the plan is the whole demanded line.
pub fn flex_fetch_plan(regions: &RegionTable, addr: Addr, line_bytes: u64) -> FlexPlan {
    let Some(region) = regions.region_of(addr) else {
        return FlexPlan::whole_line(addr, line_bytes);
    };
    let Some(comm) = region.comm.as_ref() else {
        return FlexPlan::whole_line(addr, line_bytes);
    };
    plan_from_comm(region, comm, addr, line_bytes)
}

fn plan_from_comm(region: &RegionInfo, comm: &CommRegion, addr: Addr, line_bytes: u64) -> FlexPlan {
    let mut lines = comm.useful_words_by_line(region.base, addr, line_bytes);
    // Guarantee the demanded word is part of the plan.
    let demand_line = LineAddr::containing(addr, line_bytes);
    let demand_word = addr.word_in_line(line_bytes);
    if let Some((_, mask)) = lines.iter_mut().find(|(l, _)| *l == demand_line) {
        mask.insert(demand_word);
    } else {
        lines.push((demand_line, WordMask::single(demand_word)));
        lines.sort_by_key(|(l, _)| l.byte());
    }
    FlexPlan { lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{CommRegion, RegionId, RegionInfo};

    fn table_with_comm(object_bytes: u64, useful: Vec<u64>) -> RegionTable {
        let mut t = RegionTable::new();
        let mut r = RegionInfo::plain(RegionId(1), "structs", Addr::new(0x1_0000), 1 << 20);
        r.comm = Some(CommRegion {
            object_bytes,
            useful_offsets: useful,
        });
        t.insert(r);
        t.insert(RegionInfo::plain(
            RegionId(2),
            "plain",
            Addr::new(0x20_0000),
            1 << 20,
        ));
        t
    }

    #[test]
    fn plain_region_falls_back_to_whole_line() {
        let t = table_with_comm(96, vec![0, 8]);
        let plan = flex_fetch_plan(&t, Addr::new(0x20_0040), 64);
        assert_eq!(plan.line_count(), 1);
        assert_eq!(plan.total_words(), 16);
        assert_eq!(plan, FlexPlan::whole_line(Addr::new(0x20_0040), 64));
    }

    #[test]
    fn unknown_address_falls_back_to_whole_line() {
        let t = table_with_comm(96, vec![0]);
        let plan = flex_fetch_plan(&t, Addr::new(0x900_0000), 64);
        assert_eq!(plan.total_words(), 16);
    }

    #[test]
    fn comm_region_selects_only_useful_words() {
        // 96-byte objects, useful: 4 words at offsets 0, 8, 16, 80.
        let t = table_with_comm(96, vec![0, 8, 16, 80]);
        // Object 0 starts at the region base (0x1_0000, line-aligned).
        let plan = flex_fetch_plan(&t, Addr::new(0x1_0000), 64);
        assert_eq!(plan.total_words(), 4);
        assert_eq!(plan.line_count(), 2, "offset 80 lands on the second line");
    }

    #[test]
    fn demanded_word_is_always_included() {
        let t = table_with_comm(96, vec![0, 8]);
        // Demand a word the annotation does not list (offset 40 of object 0).
        let plan = flex_fetch_plan(&t, Addr::new(0x1_0000 + 40), 64);
        assert_eq!(plan.total_words(), 3);
    }

    #[test]
    fn packets_respect_payload_limit() {
        let noc = NocConfig::default();
        let t = table_with_comm(192, (0..24).map(|w| w * 4).collect());
        let plan = flex_fetch_plan(&t, Addr::new(0x1_0000), 64);
        assert_eq!(plan.total_words(), 24);
        let packets = plan.packets(&noc);
        assert_eq!(
            packets,
            vec![16, 8],
            "24 words split into a full and a partial packet"
        );
        assert_eq!(
            FlexPlan::whole_line(Addr::new(0), 64).packets(&noc),
            vec![16]
        );
    }

    #[test]
    fn dram_row_restriction_drops_far_lines() {
        let t = table_with_comm(96, vec![0, 8, 16, 80]);
        let plan = flex_fetch_plan(&t, Addr::new(0x1_0000), 64);
        // With a huge row everything stays; with a tiny 64-byte "row" only the
        // demanded line survives.
        assert_eq!(
            plan.restrict_to_dram_row(Addr::new(0x1_0000), 64, 8192)
                .line_count(),
            2
        );
        let restricted = plan.restrict_to_dram_row(Addr::new(0x1_0000), 64, 64);
        assert_eq!(restricted.line_count(), 1);
        assert_eq!(
            restricted.lines[0].0,
            LineAddr::containing(Addr::new(0x1_0000), 64)
        );
    }

    #[test]
    fn object_in_middle_of_region_resolves_to_its_own_lines() {
        let t = table_with_comm(96, vec![0, 8, 16, 80]);
        // Object 100 begins at base + 9600.
        let addr = Addr::new(0x1_0000 + 9600 + 16);
        let plan = flex_fetch_plan(&t, addr, 64);
        assert_eq!(plan.total_words(), 4);
        for (line, _) in &plan.lines {
            assert!(line.byte() >= 0x1_0000 + 9600 - 64);
            assert!(line.byte() < 0x1_0000 + 9600 + 96 + 64);
        }
    }
}
