//! Set-associative cache arrays with per-word valid/dirty state.

use tw_types::{LineAddr, WordMask};

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a whole number of sets.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways > 0 && line_bytes > 0);
        assert_eq!(
            capacity_bytes % (ways as u64 * line_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        CacheGeometry {
            capacity_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// Number of lines the array can hold.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Set index of a line address.
    pub fn set_of(&self, line: LineAddr) -> usize {
        ((line.byte() / self.line_bytes) as usize) % self.sets()
    }
}

/// One resident cache line with per-word state plus protocol metadata `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEntry<M> {
    /// Line address (tag).
    pub line: LineAddr,
    /// Which words hold valid data.
    pub valid: WordMask,
    /// Which words are dirty with respect to the next level.
    pub dirty: WordMask,
    /// Protocol-specific metadata (MESI state, DeNovo registration, ...).
    pub meta: M,
    lru: u64,
}

impl<M> LineEntry<M> {
    /// Whether any word of the line is dirty.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// A set-associative cache array with true-LRU replacement.
///
/// The array tracks only line residency and per-word state; protocol
/// behaviour lives in the protocol crates, which store their state in the
/// metadata parameter `M`.
///
/// Storage is struct-of-arrays over a single flat allocation: set `s`
/// occupies slots `[s*ways, s*ways + set_len[s])`, with the line tags
/// mirrored into a dense `u64` array so the per-access tag scan touches one
/// cache line instead of chasing `Vec<Vec<_>>` pointers or hashing. Within a
/// set, slot positions mirror the push/`swap_remove` discipline of the
/// original `Vec`-of-`Vec`s representation exactly — `iter` and
/// `drain_matching` order feeds protocol message order, so residency order
/// is part of the determinism contract, not an implementation detail.
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    /// `log2(line_bytes)`, valid when `line_pow2`.
    line_shift: u32,
    line_pow2: bool,
    /// `sets - 1`, valid when `sets_pow2`.
    set_mask: usize,
    sets_pow2: bool,
    nsets: usize,
    ways: usize,
    /// Line tags (byte addresses), dense per set; meaningful only below the
    /// set's length.
    tags: Vec<u64>,
    /// Occupied slots per set.
    set_len: Vec<u32>,
    entries: Vec<Option<LineEntry<M>>>,
    len: usize,
    tick: u64,
    insertions: u64,
    evictions: u64,
}

impl<M> CacheArray<M> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let nsets = geom.sets();
        let ways = geom.ways;
        CacheArray {
            line_shift: geom.line_bytes.trailing_zeros(),
            line_pow2: geom.line_bytes.is_power_of_two(),
            set_mask: nsets.wrapping_sub(1),
            sets_pow2: nsets.is_power_of_two(),
            nsets,
            ways,
            tags: vec![0; nsets * ways],
            set_len: vec![0; nsets],
            entries: (0..nsets * ways).map(|_| None).collect(),
            geom,
            len: 0,
            tick: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Set index of `line` — same mapping as [`CacheGeometry::set_of`], with
    /// the divisions strength-reduced for power-of-two geometries.
    #[inline(always)]
    fn set_of(&self, line: LineAddr) -> usize {
        let line_no = if self.line_pow2 {
            (line.byte() >> self.line_shift) as usize
        } else {
            (line.byte() / self.geom.line_bytes) as usize
        };
        if self.sets_pow2 {
            line_no & self.set_mask
        } else {
            line_no % self.nsets
        }
    }

    /// Slot index of `line` within the flat arrays, if resident.
    #[inline(always)]
    fn slot_of(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let len = self.set_len[set] as usize;
        let tag = line.byte();
        self.tags[base..base + len]
            .iter()
            .position(|t| *t == tag)
            .map(|i| base + i)
    }

    /// The array geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total lines inserted over the array's lifetime.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Total lines evicted (capacity/conflict) over the array's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a line without affecting LRU order.
    #[inline]
    pub fn peek(&self, line: LineAddr) -> Option<&LineEntry<M>> {
        let i = self.slot_of(line)?;
        self.entries[i].as_ref()
    }

    /// Looks up a line and refreshes its LRU position.
    #[inline]
    pub fn get(&mut self, line: LineAddr) -> Option<&mut LineEntry<M>> {
        let i = self.slot_of(line)?;
        // The tick advances only on hits, exactly as before.
        self.tick += 1;
        let entry = self.entries[i].as_mut().expect("tagged slot occupied");
        entry.lru = self.tick;
        Some(entry)
    }

    /// Looks up a line and refreshes its LRU position only when `pred`
    /// accepts the entry; a rejected (or absent) line is left untouched.
    ///
    /// Equivalent to `peek` followed by a conditional `get` — same tick and
    /// LRU effects — with a single tag scan, for the hit-check-then-touch
    /// pattern on the simulator's hot path.
    #[inline]
    pub fn get_where<F>(&mut self, line: LineAddr, pred: F) -> Option<&mut LineEntry<M>>
    where
        F: FnOnce(&LineEntry<M>) -> bool,
    {
        let i = self.slot_of(line)?;
        if !pred(self.entries[i].as_ref().expect("tagged slot occupied")) {
            return None;
        }
        // The tick advances only on accepted hits, exactly as a plain `get`.
        self.tick += 1;
        let entry = self.entries[i].as_mut().expect("tagged slot occupied");
        entry.lru = self.tick;
        Some(entry)
    }

    /// Whether the line is resident.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.slot_of(line).is_some()
    }

    /// Inserts a line, evicting the LRU line of the set if it is full.
    ///
    /// Returns the new entry and the evicted victim, if any. If the line is
    /// already resident the existing entry is returned (metadata untouched)
    /// and no eviction happens.
    pub fn insert(&mut self, line: LineAddr, meta: M) -> (&mut LineEntry<M>, Option<LineEntry<M>>) {
        // The tick advances on every insert (hit or miss), exactly as before.
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let base = set * self.ways;
        let mut slen = self.set_len[set] as usize;

        if let Some(pos) = self.tags[base..base + slen]
            .iter()
            .position(|t| *t == line.byte())
        {
            let entry = self.entries[base + pos].as_mut().expect("resident");
            entry.lru = tick;
            return (entry, None);
        }

        let victim = if slen >= self.ways {
            let mut vpos = 0;
            for i in 1..slen {
                if self.entries[base + i].as_ref().expect("occupied").lru
                    < self.entries[base + vpos].as_ref().expect("occupied").lru
                {
                    vpos = i;
                }
            }
            // Mirror `Vec::swap_remove(vpos)`: the last slot moves into the
            // hole, preserving the original in-set residency order.
            let victim = self.entries[base + vpos].take().expect("occupied");
            slen -= 1;
            if vpos != slen {
                self.entries[base + vpos] = self.entries[base + slen].take();
                self.tags[base + vpos] = self.tags[base + slen];
            }
            self.len -= 1;
            self.evictions += 1;
            Some(victim)
        } else {
            None
        };

        self.tags[base + slen] = line.byte();
        self.entries[base + slen] = Some(LineEntry {
            line,
            valid: WordMask::EMPTY,
            dirty: WordMask::EMPTY,
            meta,
            lru: tick,
        });
        self.set_len[set] = (slen + 1) as u32;
        self.len += 1;
        self.insertions += 1;
        (
            self.entries[base + slen].as_mut().expect("just inserted"),
            victim,
        )
    }

    /// Removes a line (protocol invalidation or explicit eviction), returning
    /// it if it was resident. Does not count as a capacity eviction.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineEntry<M>> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let slen = self.set_len[set] as usize;
        let pos = self.tags[base..base + slen]
            .iter()
            .position(|t| *t == line.byte())?;
        let removed = self.entries[base + pos].take().expect("occupied");
        let last = slen - 1;
        if pos != last {
            self.entries[base + pos] = self.entries[base + last].take();
            self.tags[base + pos] = self.tags[base + last];
        }
        self.set_len[set] = last as u32;
        self.len -= 1;
        Some(removed)
    }

    /// The line that would be evicted if `line` were inserted now, if any.
    pub fn victim_for(&self, line: LineAddr) -> Option<&LineEntry<M>> {
        if self.contains(line) {
            return None;
        }
        let set = self.set_of(line);
        let base = set * self.ways;
        let slen = self.set_len[set] as usize;
        if slen < self.ways {
            return None;
        }
        self.entries[base..base + slen]
            .iter()
            .map(|e| e.as_ref().expect("occupied"))
            .min_by_key(|e| e.lru)
    }

    /// Iterator over all resident lines (set-major, in-set residency order).
    pub fn iter(&self) -> impl Iterator<Item = &LineEntry<M>> {
        self.entries
            .chunks(self.ways)
            .zip(self.set_len.iter())
            .flat_map(|(chunk, len)| {
                chunk[..*len as usize]
                    .iter()
                    .map(|e| e.as_ref().expect("occupied"))
            })
    }

    /// Mutable iterator over all resident lines (set-major, in-set residency
    /// order).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LineEntry<M>> {
        self.entries
            .chunks_mut(self.ways)
            .zip(self.set_len.iter())
            .flat_map(|(chunk, len)| {
                chunk[..*len as usize]
                    .iter_mut()
                    .map(|e| e.as_mut().expect("occupied"))
            })
    }

    /// Removes every line for which `pred` returns true, returning them.
    /// Used for DeNovo self-invalidation sweeps at barriers. Output order
    /// (set-major, `swap_remove` backfill within a set) is deterministic and
    /// feeds message order.
    pub fn drain_matching<F>(&mut self, mut pred: F) -> Vec<LineEntry<M>>
    where
        F: FnMut(&LineEntry<M>) -> bool,
    {
        let mut out = Vec::new();
        for set in 0..self.nsets {
            let base = set * self.ways;
            let mut slen = self.set_len[set] as usize;
            let mut i = 0;
            while i < slen {
                if pred(self.entries[base + i].as_ref().expect("occupied")) {
                    let e = self.entries[base + i].take().expect("occupied");
                    slen -= 1;
                    if i != slen {
                        self.entries[base + i] = self.entries[base + slen].take();
                        self.tags[base + i] = self.tags[base + slen];
                    }
                    self.len -= 1;
                    out.push(e);
                } else {
                    i += 1;
                }
            }
            self.set_len[set] = slen as u32;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, WordIdx};

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    fn small() -> CacheArray<u32> {
        // 2 sets x 2 ways of 64-byte lines.
        CacheArray::new(CacheGeometry::new(256, 2, 64))
    }

    #[test]
    fn geometry_derivations() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.set_of(LineAddr::from_aligned(64 * 64)), 0);
        assert_eq!(g.set_of(LineAddr::from_aligned(65 * 64)), 1);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn geometry_rejects_fractional_sets() {
        CacheGeometry::new(100, 3, 64);
    }

    #[test]
    fn insert_lookup_and_word_state() {
        let mut c = small();
        let l = line(4);
        let (e, v) = c.insert(l, 7);
        assert!(v.is_none());
        e.valid.insert(WordIdx(3));
        e.dirty.insert(WordIdx(3));
        assert!(c.contains(l));
        let e = c.get(l).unwrap();
        assert!(e.valid.contains(WordIdx(3)));
        assert!(e.is_dirty());
        assert_eq!(e.meta, 7);
        assert!(c.peek(line(5)).is_none());
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.insert(line(0), 0);
        c.insert(line(2), 0);
        // Touch line 0 so line 2 becomes LRU.
        c.get(line(0));
        let (_, victim) = c.insert(line(4), 0);
        let victim = victim.expect("set was full");
        assert_eq!(victim.line, line(2));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn get_where_touches_lru_only_on_accepted_hits() {
        let mut c = small();
        c.insert(line(0), 1);
        c.insert(line(2), 2);
        // A rejected predicate must leave LRU order untouched: line 0 stays
        // the victim candidate.
        assert!(c.get_where(line(0), |e| e.meta == 99).is_none());
        assert_eq!(c.victim_for(line(4)).unwrap().line, line(0));
        // An accepted predicate refreshes LRU exactly like `get`.
        assert!(c.get_where(line(0), |e| e.meta == 1).is_some());
        assert_eq!(c.victim_for(line(4)).unwrap().line, line(2));
        assert!(c.get_where(line(4), |_| true).is_none(), "absent line");
    }

    #[test]
    fn victim_for_predicts_eviction() {
        let mut c = small();
        c.insert(line(0), 0);
        assert!(c.victim_for(line(2)).is_none(), "set not yet full");
        c.insert(line(2), 0);
        c.get(line(2));
        let v = c.victim_for(line(4)).expect("full set");
        assert_eq!(v.line, line(0));
        assert!(c.victim_for(line(0)).is_none(), "already resident");
    }

    #[test]
    fn reinsert_existing_line_does_not_evict() {
        let mut c = small();
        c.insert(line(0), 1);
        c.insert(line(2), 2);
        let (e, v) = c.insert(line(0), 99);
        assert!(v.is_none());
        assert_eq!(e.meta, 1, "metadata of resident line untouched");
        assert_eq!(c.len(), 2);
        assert_eq!(c.insertions(), 2);
    }

    #[test]
    fn remove_does_not_count_as_eviction() {
        let mut c = small();
        c.insert(line(0), 0);
        assert!(c.remove(line(0)).is_some());
        assert!(c.remove(line(0)).is_none());
        assert_eq!(c.evictions(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn drain_matching_removes_selected_lines() {
        let mut c = small();
        c.insert(line(0), 1);
        c.insert(line(1), 2);
        c.insert(line(2), 1);
        let drained = c.drain_matching(|e| e.meta == 1);
        assert_eq!(drained.len(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains(line(1)));
    }

    #[test]
    fn index_stays_consistent_under_churn() {
        let mut c = CacheArray::new(CacheGeometry::new(1024, 4, 64));
        for i in 0..200u64 {
            c.insert(line(i % 37), i as u32);
            if i % 3 == 0 {
                c.remove(line((i * 7) % 37));
            }
        }
        let resident: Vec<_> = c.iter().map(|e| e.line).collect();
        for l in resident {
            assert!(c.contains(l));
            assert_eq!(c.peek(l).unwrap().line, l);
        }
        assert!(c.len() <= c.geometry().lines());
    }

    #[test]
    fn line_addr_helper_matches_containing() {
        assert_eq!(line(2), LineAddr::containing(Addr::new(130), 64));
    }
}
