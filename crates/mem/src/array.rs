//! Set-associative cache arrays with per-word valid/dirty state.

use std::collections::HashMap;
use tw_types::{LineAddr, WordMask};

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a whole number of sets.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways > 0 && line_bytes > 0);
        assert_eq!(
            capacity_bytes % (ways as u64 * line_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        CacheGeometry {
            capacity_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// Number of lines the array can hold.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Set index of a line address.
    pub fn set_of(&self, line: LineAddr) -> usize {
        ((line.byte() / self.line_bytes) as usize) % self.sets()
    }
}

/// One resident cache line with per-word state plus protocol metadata `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEntry<M> {
    /// Line address (tag).
    pub line: LineAddr,
    /// Which words hold valid data.
    pub valid: WordMask,
    /// Which words are dirty with respect to the next level.
    pub dirty: WordMask,
    /// Protocol-specific metadata (MESI state, DeNovo registration, ...).
    pub meta: M,
    lru: u64,
}

impl<M> LineEntry<M> {
    /// Whether any word of the line is dirty.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// A set-associative cache array with true-LRU replacement.
///
/// The array tracks only line residency and per-word state; protocol
/// behaviour lives in the protocol crates, which store their state in the
/// metadata parameter `M`.
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    sets: Vec<Vec<LineEntry<M>>>,
    index: HashMap<LineAddr, usize>,
    tick: u64,
    insertions: u64,
    evictions: u64,
}

impl<M> CacheArray<M> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        CacheArray {
            sets: (0..geom.sets())
                .map(|_| Vec::with_capacity(geom.ways))
                .collect(),
            index: HashMap::new(),
            geom,
            tick: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total lines inserted over the array's lifetime.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Total lines evicted (capacity/conflict) over the array's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a line without affecting LRU order.
    pub fn peek(&self, line: LineAddr) -> Option<&LineEntry<M>> {
        let set = self.geom.set_of(line);
        self.sets[set].iter().find(|e| e.line == line)
    }

    /// Looks up a line and refreshes its LRU position.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut LineEntry<M>> {
        self.peek(line)?;
        let tick = self.bump();
        let set = self.geom.set_of(line);
        let entry = self.sets[set].iter_mut().find(|e| e.line == line)?;
        entry.lru = tick;
        Some(entry)
    }

    /// Whether the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.index.contains_key(&line)
    }

    /// Inserts a line, evicting the LRU line of the set if it is full.
    ///
    /// Returns the new entry and the evicted victim, if any. If the line is
    /// already resident the existing entry is returned (metadata untouched)
    /// and no eviction happens.
    pub fn insert(&mut self, line: LineAddr, meta: M) -> (&mut LineEntry<M>, Option<LineEntry<M>>) {
        let tick = self.bump();
        let set = self.geom.set_of(line);
        let ways = self.geom.ways;

        if let Some(pos) = self.sets[set].iter().position(|e| e.line == line) {
            self.sets[set][pos].lru = tick;
            return (&mut self.sets[set][pos], None);
        }

        let victim = if self.sets[set].len() >= ways {
            let (vpos, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("full set has at least one entry");
            let victim = self.sets[set].swap_remove(vpos);
            self.index.remove(&victim.line);
            self.evictions += 1;
            Some(victim)
        } else {
            None
        };

        self.sets[set].push(LineEntry {
            line,
            valid: WordMask::EMPTY,
            dirty: WordMask::EMPTY,
            meta,
            lru: tick,
        });
        self.index.insert(line, set);
        self.insertions += 1;
        let pos = self.sets[set].len() - 1;
        (&mut self.sets[set][pos], victim)
    }

    /// Removes a line (protocol invalidation or explicit eviction), returning
    /// it if it was resident. Does not count as a capacity eviction.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineEntry<M>> {
        let set = *self.index.get(&line)?;
        let pos = self.sets[set].iter().position(|e| e.line == line)?;
        self.index.remove(&line);
        Some(self.sets[set].swap_remove(pos))
    }

    /// The line that would be evicted if `line` were inserted now, if any.
    pub fn victim_for(&self, line: LineAddr) -> Option<&LineEntry<M>> {
        if self.contains(line) {
            return None;
        }
        let set = self.geom.set_of(line);
        if self.sets[set].len() < self.geom.ways {
            return None;
        }
        self.sets[set].iter().min_by_key(|e| e.lru)
    }

    /// Iterator over all resident lines (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &LineEntry<M>> {
        self.sets.iter().flatten()
    }

    /// Mutable iterator over all resident lines (unspecified order).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LineEntry<M>> {
        self.sets.iter_mut().flatten()
    }

    /// Removes every line for which `pred` returns true, returning them.
    /// Used for DeNovo self-invalidation sweeps at barriers.
    pub fn drain_matching<F>(&mut self, mut pred: F) -> Vec<LineEntry<M>>
    where
        F: FnMut(&LineEntry<M>) -> bool,
    {
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if pred(&set[i]) {
                    let e = set.swap_remove(i);
                    self.index.remove(&e.line);
                    out.push(e);
                } else {
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, WordIdx};

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    fn small() -> CacheArray<u32> {
        // 2 sets x 2 ways of 64-byte lines.
        CacheArray::new(CacheGeometry::new(256, 2, 64))
    }

    #[test]
    fn geometry_derivations() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.set_of(LineAddr::from_aligned(64 * 64)), 0);
        assert_eq!(g.set_of(LineAddr::from_aligned(65 * 64)), 1);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn geometry_rejects_fractional_sets() {
        CacheGeometry::new(100, 3, 64);
    }

    #[test]
    fn insert_lookup_and_word_state() {
        let mut c = small();
        let l = line(4);
        let (e, v) = c.insert(l, 7);
        assert!(v.is_none());
        e.valid.insert(WordIdx(3));
        e.dirty.insert(WordIdx(3));
        assert!(c.contains(l));
        let e = c.get(l).unwrap();
        assert!(e.valid.contains(WordIdx(3)));
        assert!(e.is_dirty());
        assert_eq!(e.meta, 7);
        assert!(c.peek(line(5)).is_none());
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.insert(line(0), 0);
        c.insert(line(2), 0);
        // Touch line 0 so line 2 becomes LRU.
        c.get(line(0));
        let (_, victim) = c.insert(line(4), 0);
        let victim = victim.expect("set was full");
        assert_eq!(victim.line, line(2));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn victim_for_predicts_eviction() {
        let mut c = small();
        c.insert(line(0), 0);
        assert!(c.victim_for(line(2)).is_none(), "set not yet full");
        c.insert(line(2), 0);
        c.get(line(2));
        let v = c.victim_for(line(4)).expect("full set");
        assert_eq!(v.line, line(0));
        assert!(c.victim_for(line(0)).is_none(), "already resident");
    }

    #[test]
    fn reinsert_existing_line_does_not_evict() {
        let mut c = small();
        c.insert(line(0), 1);
        c.insert(line(2), 2);
        let (e, v) = c.insert(line(0), 99);
        assert!(v.is_none());
        assert_eq!(e.meta, 1, "metadata of resident line untouched");
        assert_eq!(c.len(), 2);
        assert_eq!(c.insertions(), 2);
    }

    #[test]
    fn remove_does_not_count_as_eviction() {
        let mut c = small();
        c.insert(line(0), 0);
        assert!(c.remove(line(0)).is_some());
        assert!(c.remove(line(0)).is_none());
        assert_eq!(c.evictions(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn drain_matching_removes_selected_lines() {
        let mut c = small();
        c.insert(line(0), 1);
        c.insert(line(1), 2);
        c.insert(line(2), 1);
        let drained = c.drain_matching(|e| e.meta == 1);
        assert_eq!(drained.len(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains(line(1)));
    }

    #[test]
    fn index_stays_consistent_under_churn() {
        let mut c = CacheArray::new(CacheGeometry::new(1024, 4, 64));
        for i in 0..200u64 {
            c.insert(line(i % 37), i as u32);
            if i % 3 == 0 {
                c.remove(line((i * 7) % 37));
            }
        }
        let resident: Vec<_> = c.iter().map(|e| e.line).collect();
        for l in resident {
            assert!(c.contains(l));
            assert_eq!(c.peek(l).unwrap().line, l);
        }
        assert!(c.len() <= c.geometry().lines());
    }

    #[test]
    fn line_addr_helper_matches_containing() {
        assert_eq!(line(2), LineAddr::containing(Addr::new(130), 64));
    }
}
