//! DeNovo write-combining (registration-coalescing) table.
//!
//! The baseline DeNovo implementation in the paper (§4.2) batches pending
//! registration requests for the same cache line into a single message
//! instead of issuing one per written word. An entry is held until one of:
//! the entire line has been written, a 10 000-cycle timeout expires, a
//! release/barrier is issued, or the line is evicted from the L1. The table
//! has 32 entries; MESI's non-blocking write table is modelled with the same
//! structure (one pending GetM per line).

use tw_types::{Cycle, LineAddr, WordIdx, WordMask};

/// A pending set of unregistered written words for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteCombineEntry {
    /// The cache line.
    pub line: LineAddr,
    /// Words written but not yet registered with the L2.
    pub pending: WordMask,
    /// Cycle of the first pending write.
    pub first_write: Cycle,
}

/// Why an entry was flushed from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFlush {
    /// Every word of the line has been written.
    LineFull,
    /// The oldest pending write exceeded the timeout.
    Timeout,
    /// A release operation (barrier) forced all entries out.
    Release,
    /// The line was evicted from the L1 while writes were pending.
    Eviction,
    /// The table was full and the LRU entry was displaced to make room.
    CapacityReplacement,
}

/// Fixed-capacity write-combining table.
///
/// Entries live in a small flat vector kept sorted by line address. Flush
/// order (capacity-victim tie-breaks, timeout expiry, release order) feeds
/// directly into message order on the mesh, so every path that emits more
/// than one entry does so in ascending line order with `first_write` ties
/// broken toward the lowest line — exactly the order the original
/// `BTreeMap`-backed table produced (the determinism CI gate caught hash
/// iteration order varying between processes once already). The
/// [`reference`] module keeps that original implementation alive as the
/// oracle for the differential property test in `tests/prop_write_combine.rs`.
///
/// Because the table holds at most a few dozen entries (32 in the paper's
/// configuration), sorted-vector scans beat any tree or hash structure; the
/// cached `oldest` lower bound additionally lets the per-store
/// [`WriteCombineTable::expire`] call return without touching the entries at
/// all while nothing can be due.
#[derive(Debug, Clone)]
pub struct WriteCombineTable {
    capacity: usize,
    timeout: u64,
    words_per_line: usize,
    /// Sorted by `line` ascending.
    entries: Vec<WriteCombineEntry>,
    /// Lower bound on the minimum `first_write` over `entries` (stale — i.e.
    /// strictly below the true minimum — only after the oldest entry leaves;
    /// refreshed by the next full `expire` scan). Only ever used to skip
    /// scans that cannot find anything due, never to skip a due flush.
    oldest: Cycle,
    flushes: u64,
}

impl WriteCombineTable {
    /// Creates a table with `capacity` entries, a flush `timeout` in cycles,
    /// and `words_per_line` words per cache line.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `words_per_line` is zero.
    pub fn new(capacity: usize, timeout: u64, words_per_line: usize) -> Self {
        assert!(capacity > 0 && words_per_line > 0);
        WriteCombineTable {
            capacity,
            timeout,
            words_per_line,
            entries: Vec::with_capacity(capacity),
            oldest: Cycle::MAX,
            flushes: 0,
        }
    }

    /// Number of lines with pending registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no registrations are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of entries flushed over the table lifetime.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    #[inline]
    fn position(&self, line: LineAddr) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&line, |e| e.line)
    }

    /// Pending words for `line`, if an entry exists.
    pub fn pending(&self, line: LineAddr) -> Option<WordMask> {
        self.position(line).ok().map(|i| self.entries[i].pending)
    }

    /// Records a write to `word` of `line` at cycle `now`.
    ///
    /// Returns the entries that must be flushed (turned into registration
    /// messages) as a consequence: the written line itself if it became
    /// fully written, plus a capacity victim if the table was full.
    pub fn record_write(
        &mut self,
        line: LineAddr,
        word: WordIdx,
        now: Cycle,
    ) -> Vec<(WriteCombineEntry, WriteFlush)> {
        let mut out = Vec::new();

        match self.position(line) {
            Ok(i) => {
                self.entries[i].pending.insert(word);
                if self.entries[i].pending.count() >= self.words_per_line {
                    let e = self.entries.remove(i);
                    self.flushes += 1;
                    out.push((e, WriteFlush::LineFull));
                }
            }
            Err(mut i) => {
                if self.entries.len() >= self.capacity {
                    // Displace the oldest entry; `first_write` ties break
                    // toward the lowest line address, deterministically
                    // (ascending scan keeps the first minimum).
                    let mut victim = 0;
                    for (j, e) in self.entries.iter().enumerate().skip(1) {
                        if e.first_write < self.entries[victim].first_write {
                            victim = j;
                        }
                    }
                    let e = self.entries.remove(victim);
                    self.flushes += 1;
                    if victim < i {
                        i -= 1;
                    }
                    out.push((e, WriteFlush::CapacityReplacement));
                }
                let mut pending = WordMask::EMPTY;
                pending.insert(word);
                if self.words_per_line <= 1 {
                    self.flushes += 1;
                    out.push((
                        WriteCombineEntry {
                            line,
                            pending,
                            first_write: now,
                        },
                        WriteFlush::LineFull,
                    ));
                } else {
                    self.entries.insert(
                        i,
                        WriteCombineEntry {
                            line,
                            pending,
                            first_write: now,
                        },
                    );
                    self.oldest = self.oldest.min(now);
                }
            }
        }
        out
    }

    /// Flushes all entries whose first pending write is older than the
    /// timeout at cycle `now`.
    pub fn expire(&mut self, now: Cycle) -> Vec<(WriteCombineEntry, WriteFlush)> {
        // Fast path for the per-store call: nothing can be due while even a
        // lower bound on the oldest first_write is inside the timeout.
        if self.entries.is_empty() || now.saturating_sub(self.oldest) < self.timeout {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut oldest = Cycle::MAX;
        // Ascending line order, matching BTreeMap iteration.
        self.entries.retain(|e| {
            if now.saturating_sub(e.first_write) >= self.timeout {
                out.push((e.clone(), WriteFlush::Timeout));
                false
            } else {
                oldest = oldest.min(e.first_write);
                true
            }
        });
        self.flushes += out.len() as u64;
        self.oldest = oldest;
        out
    }

    /// Flushes every entry (release / barrier semantics), in line order.
    pub fn release_all(&mut self) -> Vec<(WriteCombineEntry, WriteFlush)> {
        let out: Vec<_> = std::mem::take(&mut self.entries)
            .into_iter()
            .map(|e| (e, WriteFlush::Release))
            .collect();
        self.flushes += out.len() as u64;
        self.oldest = Cycle::MAX;
        out
    }

    /// Flushes the entry for an evicted line, if one exists.
    pub fn evict_line(&mut self, line: LineAddr) -> Option<(WriteCombineEntry, WriteFlush)> {
        self.position(line).ok().map(|i| {
            let e = self.entries.remove(i);
            self.flushes += 1;
            (e, WriteFlush::Eviction)
        })
    }
}

/// The original `BTreeMap`-backed implementation, kept verbatim as the
/// oracle for the differential property test (`tests/prop_write_combine.rs`):
/// the flat table above must produce the same flushes, in the same order,
/// for any op stream.
pub mod reference {
    use super::{WriteCombineEntry, WriteFlush};
    use std::collections::BTreeMap;
    use tw_types::{Cycle, LineAddr, WordIdx, WordMask};

    /// Reference write-combining table (ordered-map storage).
    #[derive(Debug, Clone)]
    pub struct WriteCombineTable {
        capacity: usize,
        timeout: u64,
        words_per_line: usize,
        entries: BTreeMap<LineAddr, WriteCombineEntry>,
        flushes: u64,
    }

    impl WriteCombineTable {
        /// See [`super::WriteCombineTable::new`].
        pub fn new(capacity: usize, timeout: u64, words_per_line: usize) -> Self {
            assert!(capacity > 0 && words_per_line > 0);
            WriteCombineTable {
                capacity,
                timeout,
                words_per_line,
                entries: BTreeMap::new(),
                flushes: 0,
            }
        }

        /// See [`super::WriteCombineTable::len`].
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// See [`super::WriteCombineTable::is_empty`].
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// See [`super::WriteCombineTable::flushes`].
        pub fn flushes(&self) -> u64 {
            self.flushes
        }

        /// See [`super::WriteCombineTable::pending`].
        pub fn pending(&self, line: LineAddr) -> Option<WordMask> {
            self.entries.get(&line).map(|e| e.pending)
        }

        /// See [`super::WriteCombineTable::record_write`].
        pub fn record_write(
            &mut self,
            line: LineAddr,
            word: WordIdx,
            now: Cycle,
        ) -> Vec<(WriteCombineEntry, WriteFlush)> {
            let mut out = Vec::new();

            if !self.entries.contains_key(&line) && self.entries.len() >= self.capacity {
                if let Some(&victim) = self
                    .entries
                    .values()
                    .min_by_key(|e| e.first_write)
                    .map(|e| &e.line)
                {
                    let e = self.entries.remove(&victim).expect("victim present");
                    self.flushes += 1;
                    out.push((e, WriteFlush::CapacityReplacement));
                }
            }

            let entry = self.entries.entry(line).or_insert(WriteCombineEntry {
                line,
                pending: WordMask::EMPTY,
                first_write: now,
            });
            entry.pending.insert(word);

            if entry.pending.count() >= self.words_per_line {
                let e = self.entries.remove(&line).expect("just inserted");
                self.flushes += 1;
                out.push((e, WriteFlush::LineFull));
            }
            out
        }

        /// See [`super::WriteCombineTable::expire`].
        pub fn expire(&mut self, now: Cycle) -> Vec<(WriteCombineEntry, WriteFlush)> {
            let expired: Vec<LineAddr> = self
                .entries
                .values()
                .filter(|e| now.saturating_sub(e.first_write) >= self.timeout)
                .map(|e| e.line)
                .collect();
            expired
                .into_iter()
                .map(|l| {
                    self.flushes += 1;
                    (
                        self.entries.remove(&l).expect("listed"),
                        WriteFlush::Timeout,
                    )
                })
                .collect()
        }

        /// See [`super::WriteCombineTable::release_all`].
        pub fn release_all(&mut self) -> Vec<(WriteCombineEntry, WriteFlush)> {
            let out: Vec<_> = std::mem::take(&mut self.entries)
                .into_values()
                .map(|e| (e, WriteFlush::Release))
                .collect();
            self.flushes += out.len() as u64;
            out
        }

        /// See [`super::WriteCombineTable::evict_line`].
        pub fn evict_line(&mut self, line: LineAddr) -> Option<(WriteCombineEntry, WriteFlush)> {
            self.entries.remove(&line).map(|e| {
                self.flushes += 1;
                (e, WriteFlush::Eviction)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    fn table() -> WriteCombineTable {
        WriteCombineTable::new(4, 10_000, 16)
    }

    #[test]
    fn writes_accumulate_until_line_full() {
        let mut t = table();
        for w in 0..15u8 {
            assert!(t.record_write(line(1), WordIdx(w), 100).is_empty());
        }
        assert_eq!(t.pending(line(1)).unwrap().count(), 15);
        let flushed = t.record_write(line(1), WordIdx(15), 200);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].1, WriteFlush::LineFull);
        assert!(flushed[0].0.pending.is_full());
        assert!(t.is_empty());
    }

    #[test]
    fn timeout_expiry_flushes_old_entries_only() {
        let mut t = table();
        t.record_write(line(1), WordIdx(0), 0);
        t.record_write(line(2), WordIdx(0), 9_000);
        let expired = t.expire(10_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0.line, line(1));
        assert_eq!(expired[0].1, WriteFlush::Timeout);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expire_early_out_does_not_miss_later_expiries() {
        let mut t = table();
        t.record_write(line(1), WordIdx(0), 0);
        assert!(t.expire(9_999).is_empty());
        // Entry inserted after an older one left keeps the bound conservative.
        t.record_write(line(2), WordIdx(0), 5_000);
        assert_eq!(t.expire(10_000).len(), 1);
        assert!(t.expire(14_999).is_empty());
        assert_eq!(t.expire(15_000).len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn release_flushes_everything_in_line_order() {
        let mut t = table();
        t.record_write(line(3), WordIdx(0), 0);
        t.record_write(line(1), WordIdx(0), 0);
        let released = t.release_all();
        assert_eq!(released.len(), 2);
        assert_eq!(released[0].0.line, line(1));
        assert!(released.iter().all(|(_, f)| *f == WriteFlush::Release));
        assert!(t.is_empty());
        assert_eq!(t.flushes(), 2);
    }

    #[test]
    fn capacity_displacement_evicts_oldest() {
        let mut t = table();
        for (i, cyc) in [(1u64, 10u64), (2, 5), (3, 20), (4, 15)] {
            t.record_write(line(i), WordIdx(0), cyc);
        }
        let flushed = t.record_write(line(5), WordIdx(0), 30);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0.line, line(2), "oldest first_write displaced");
        assert_eq!(flushed[0].1, WriteFlush::CapacityReplacement);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn eviction_flush_returns_pending_words() {
        let mut t = table();
        t.record_write(line(7), WordIdx(2), 0);
        t.record_write(line(7), WordIdx(3), 1);
        let (e, why) = t.evict_line(line(7)).unwrap();
        assert_eq!(why, WriteFlush::Eviction);
        assert_eq!(e.pending.count(), 2);
        assert!(t.evict_line(line(7)).is_none());
    }
}
