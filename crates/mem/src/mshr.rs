//! Miss-status holding registers.
//!
//! An [`MshrFile`] tracks outstanding misses per cache line so that multiple
//! accesses to a line with a miss already in flight are merged into the
//! existing entry instead of generating duplicate network requests.

use std::collections::HashMap;
use tw_types::{Cycle, LineAddr, WordMask};

/// One outstanding miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mshr {
    /// Line being fetched.
    pub line: LineAddr,
    /// Words wanted by merged requests.
    pub wanted: WordMask,
    /// Cycle at which the primary miss was issued.
    pub issued_at: Cycle,
    /// Number of requests merged into this entry (including the primary).
    pub merged: usize,
}

/// A file of MSHRs with a fixed number of entries.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: HashMap<LineAddr, Mshr>,
    peak: usize,
}

/// Result of trying to allocate an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A new entry was allocated: this is the primary miss and a request must
    /// be sent.
    Primary,
    /// The miss was merged into an existing entry: no new request needed.
    Merged,
    /// The file is full: the requester must stall and retry.
    Full,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: HashMap::new(),
            peak: 0,
        }
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no outstanding misses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Whether a miss for `line` is already outstanding.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Records a miss for `line` wanting `words`.
    pub fn allocate(&mut self, line: LineAddr, words: WordMask, now: Cycle) -> MshrAlloc {
        if let Some(e) = self.entries.get_mut(&line) {
            e.wanted = e.wanted.union(words);
            e.merged += 1;
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrAlloc::Full;
        }
        self.entries.insert(
            line,
            Mshr {
                line,
                wanted: words,
                issued_at: now,
                merged: 1,
            },
        );
        self.peak = self.peak.max(self.entries.len());
        MshrAlloc::Primary
    }

    /// Completes the miss for `line`, returning its entry.
    pub fn complete(&mut self, line: LineAddr) -> Option<Mshr> {
        self.entries.remove(&line)
    }

    /// The outstanding entry for `line`, if any.
    pub fn get(&self, line: LineAddr) -> Option<&Mshr> {
        self.entries.get(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::WordIdx;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    #[test]
    fn primary_then_merge() {
        let mut f = MshrFile::new(4);
        assert_eq!(
            f.allocate(line(1), WordMask::single(WordIdx(0)), 10),
            MshrAlloc::Primary
        );
        assert_eq!(
            f.allocate(line(1), WordMask::single(WordIdx(5)), 12),
            MshrAlloc::Merged
        );
        let e = f.get(line(1)).unwrap();
        assert_eq!(e.merged, 2);
        assert_eq!(e.issued_at, 10);
        assert!(e.wanted.contains(WordIdx(0)) && e.wanted.contains(WordIdx(5)));
    }

    #[test]
    fn full_file_rejects_new_primaries_but_still_merges() {
        let mut f = MshrFile::new(2);
        assert_eq!(f.allocate(line(1), WordMask::FULL, 0), MshrAlloc::Primary);
        assert_eq!(f.allocate(line(2), WordMask::FULL, 0), MshrAlloc::Primary);
        assert_eq!(f.allocate(line(3), WordMask::FULL, 0), MshrAlloc::Full);
        assert_eq!(f.allocate(line(2), WordMask::FULL, 0), MshrAlloc::Merged);
        assert_eq!(f.peak_occupancy(), 2);
    }

    #[test]
    fn complete_frees_the_entry() {
        let mut f = MshrFile::new(1);
        f.allocate(line(9), WordMask::FULL, 3);
        assert!(f.contains(line(9)));
        let e = f.complete(line(9)).unwrap();
        assert_eq!(e.line, line(9));
        assert!(f.is_empty());
        assert!(f.complete(line(9)).is_none());
        assert_eq!(f.allocate(line(10), WordMask::FULL, 5), MshrAlloc::Primary);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        MshrFile::new(0);
    }
}
