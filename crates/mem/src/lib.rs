//! Cache substrate: set-associative arrays with per-word state, MSHRs, and
//! the DeNovo write-combining (registration-coalescing) table.
//!
//! Both protocol families in the study are built on the same physical cache
//! structures; what differs is the metadata kept per line and per word. The
//! [`CacheArray`] here is therefore generic over a protocol-defined line
//! metadata type, while per-word valid/dirty bits — needed by DeNovo's
//! word-granularity coherence and by the waste profiler — are first-class.
//!
//! # Example
//!
//! ```
//! use tw_mem::{CacheArray, CacheGeometry};
//! use tw_types::{Addr, LineAddr, WordIdx};
//!
//! let geom = CacheGeometry::new(32 * 1024, 8, 64);
//! let mut l1: CacheArray<()> = CacheArray::new(geom);
//! let line = LineAddr::containing(Addr::new(0x1000), 64);
//! let (entry, victim) = l1.insert(line, ());
//! assert!(victim.is_none());
//! entry.valid.insert(WordIdx(0));
//! assert!(l1.contains(line));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod mshr;
pub mod write_combine;

pub use array::{CacheArray, CacheGeometry, LineEntry};
pub use mshr::{Mshr, MshrAlloc, MshrFile};
pub use write_combine::{WriteCombineEntry, WriteCombineTable, WriteFlush};
