//! Property-based tests of the cache-array and write-combining invariants.

use proptest::prelude::*;
use tw_mem::{CacheArray, CacheGeometry, MshrAlloc, MshrFile, WriteCombineTable};
use tw_types::{LineAddr, WordIdx, WordMask};

fn small_geometry() -> CacheGeometry {
    // 4 sets x 4 ways of 64-byte lines.
    CacheGeometry::new(1024, 4, 64)
}

proptest! {
    /// Under any sequence of inserts, lookups, and removes the array never
    /// exceeds its capacity, never holds two entries for the same line, and
    /// insertions = resident + evictions + removals.
    #[test]
    fn cache_array_conserves_lines(ops in prop::collection::vec((0u8..3, 0u64..64), 1..400)) {
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry());
        let mut removed = 0u64;
        for (op, line_no) in ops {
            let line = LineAddr::from_aligned(line_no * 64);
            match op {
                0 => {
                    cache.insert(line, 0);
                }
                1 => {
                    cache.get(line);
                }
                _ => {
                    if cache.remove(line).is_some() {
                        removed += 1;
                    }
                }
            }
            prop_assert!(cache.len() <= cache.geometry().lines());
        }
        prop_assert_eq!(
            cache.insertions(),
            cache.len() as u64 + cache.evictions() + removed
        );
        // No duplicate lines among residents.
        let mut lines: Vec<_> = cache.iter().map(|e| e.line).collect();
        let before = lines.len();
        lines.sort();
        lines.dedup();
        prop_assert_eq!(before, lines.len());
    }

    /// A line that was just inserted and touched is never the next victim of
    /// its set (LRU ordering).
    #[test]
    fn recently_used_line_is_not_the_victim(line_nos in prop::collection::vec(0u64..64, 5..64)) {
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry());
        for &n in &line_nos {
            let line = LineAddr::from_aligned(n * 64);
            cache.insert(line, 0);
            cache.get(line);
            // Any new line mapping to the same set must not pick `line`.
            let probe = LineAddr::from_aligned((n + 4 * 64) * 64);
            if let Some(victim) = cache.victim_for(probe) {
                prop_assert_ne!(victim.line, line);
            }
        }
    }

    /// The write-combining table never flushes an empty word set, never holds
    /// more entries than its capacity, and every recorded word is flushed
    /// exactly once across the run.
    #[test]
    fn write_combine_flushes_every_word_once(
        writes in prop::collection::vec((0u64..16, 0u8..16), 1..300),
        timeout in 1u64..5000,
    ) {
        let mut table = WriteCombineTable::new(8, timeout, 16);
        let recorded = writes.len();
        let mut flushed_words = 0usize;
        for (i, (line_no, word)) in writes.iter().enumerate() {
            let line = LineAddr::from_aligned(line_no * 64);
            let out = table.record_write(line, WordIdx(*word), i as u64 * 10);
            for (entry, _) in &out {
                prop_assert!(!entry.pending.is_empty());
                flushed_words += entry.pending.count();
            }
            prop_assert!(table.len() <= 8);
            for (entry, _) in table.expire(i as u64 * 10) {
                prop_assert!(!entry.pending.is_empty());
                flushed_words += entry.pending.count();
            }
        }
        let leftover: usize = table.release_all().iter().map(|(e, _)| e.pending.count()).sum();
        // Every flushed word corresponds to at least one recorded write
        // (coalescing can only shrink the count, never invent words).
        prop_assert!(flushed_words + leftover <= recorded);
    }

    /// The MSHR file merges duplicate lines and never reports more
    /// outstanding entries than its capacity.
    #[test]
    fn mshr_file_merges_and_bounds(lines in prop::collection::vec(0u64..32, 1..200)) {
        let mut file = MshrFile::new(16);
        let mut primaries = 0usize;
        for (i, n) in lines.iter().enumerate() {
            let line = LineAddr::from_aligned(n * 64);
            match file.allocate(line, WordMask::FULL, i as u64) {
                MshrAlloc::Primary => primaries += 1,
                MshrAlloc::Merged => prop_assert!(file.contains(line)),
                MshrAlloc::Full => prop_assert_eq!(file.len(), 16),
            }
            prop_assert!(file.len() <= 16);
        }
        prop_assert_eq!(primaries, file.len());
    }
}
