//! Differential property test: the flat sorted-vector write-combine table
//! must produce exactly the same flushes — same entries, same reasons, same
//! order — as the original `BTreeMap`-backed implementation (kept as
//! `write_combine::reference`) on arbitrary op streams.
//!
//! Flush order matters beyond the API surface: every flushed entry becomes a
//! registration message on the mesh, so a reordering here would silently
//! change flit-hop totals and break the bit-identity contract on
//! `BENCH_results.json`.

use proptest::prelude::*;
use tw_mem::write_combine::{reference, WriteCombineEntry, WriteCombineTable, WriteFlush};
use tw_types::{LineAddr, WordIdx};

/// One raw sampled op: `(selector, line, word, dt)`, decoded in the test
/// body (the offline proptest shim has no `prop_oneof`/`prop_map`).
type RawOp = (u8, u64, u8, u64);

fn flushes_eq(
    a: &[(WriteCombineEntry, WriteFlush)],
    b: &[(WriteCombineEntry, WriteFlush)],
) -> bool {
    a == b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flat_table_matches_btreemap_reference(
        ops in prop::collection::vec((0u8..10, 0u64..12, 0u8..16, 0u64..2_000), 1..200),
        capacity in 1usize..8,
        wpl_sel in 0u8..3,
    ) {
        let words_per_line = [1usize, 4, 16][wpl_sel as usize];
        let timeout = 10_000;
        let mut flat = WriteCombineTable::new(capacity, timeout, words_per_line);
        let mut oracle = reference::WriteCombineTable::new(capacity, timeout, words_per_line);
        let mut now = 0u64;

        for &(sel, line_no, word, dt) in &ops as &Vec<RawOp> {
            let line = LineAddr::from_aligned(line_no * 64);
            match sel {
                // Writes dominate, over a small line pool so capacity
                // pressure, line-fill, and repeated hits all occur.
                0..=5 => {
                    now += dt;
                    let w = WordIdx(word % words_per_line as u8);
                    let a = flat.record_write(line, w, now);
                    let b = oracle.record_write(line, w, now);
                    prop_assert!(flushes_eq(&a, &b), "record_write diverged: {a:?} vs {b:?}");
                }
                // Occasionally jump far enough for the timeout to fire
                // (dt stretched ~8x so expiries actually happen).
                6 | 7 => {
                    now += dt * 8;
                    let a = flat.expire(now);
                    let b = oracle.expire(now);
                    prop_assert!(flushes_eq(&a, &b), "expire diverged: {a:?} vs {b:?}");
                }
                8 => {
                    let a = flat.release_all();
                    let b = oracle.release_all();
                    prop_assert!(flushes_eq(&a, &b), "release_all diverged: {a:?} vs {b:?}");
                }
                _ => {
                    let a = flat.evict_line(line);
                    let b = oracle.evict_line(line);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(flat.len(), oracle.len());
            prop_assert_eq!(flat.flushes(), oracle.flushes());
            prop_assert_eq!(flat.pending(line), oracle.pending(line));
        }

        // Drain both and compare the final residue in release order.
        prop_assert!(flushes_eq(&flat.release_all(), &oracle.release_all()));
    }
}
