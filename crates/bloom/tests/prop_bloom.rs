//! Property-based tests of the Bloom-filter guarantees the "L2 Request
//! Bypass" optimization depends on: no false negatives, ever.

use proptest::prelude::*;
use tw_bloom::{BloomBank, BloomConfig, BloomFilter, CountingBloomFilter};
use tw_types::LineAddr;

proptest! {
    /// A plain filter never forgets an inserted key until cleared.
    #[test]
    fn plain_filter_has_no_false_negatives(keys in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut f = BloomFilter::new(512, 0xABCD);
        for &k in &keys {
            f.insert(k * 64);
        }
        for &k in &keys {
            prop_assert!(f.may_contain(k * 64));
        }
        f.clear();
        prop_assert_eq!(f.occupancy(), 0.0);
    }

    /// A counting filter never reports absent while at least one matching
    /// insert is outstanding, under any interleaving of inserts and removes.
    #[test]
    fn counting_filter_tracks_outstanding_inserts(
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..400)
    ) {
        let mut f = CountingBloomFilter::new(512, 0x1234);
        let mut outstanding = std::collections::HashMap::<u64, i64>::new();
        for (insert, key) in ops {
            let k = key * 64;
            if insert {
                f.insert(k);
                *outstanding.entry(k).or_insert(0) += 1;
            } else if outstanding.get(&k).copied().unwrap_or(0) > 0 {
                f.remove(k);
                *outstanding.get_mut(&k).unwrap() -= 1;
            }
            for (&k, &count) in &outstanding {
                if count > 0 {
                    prop_assert!(f.may_contain(k), "false negative for {k}");
                }
            }
        }
    }

    /// The banked structure (L2 side + L1 shadow copy protocol) preserves the
    /// no-false-negative guarantee across copies and writeback inserts.
    #[test]
    fn bank_copy_protocol_has_no_false_negatives(
        dirty_lines in prop::collection::vec(0u64..4096, 1..200),
        local_writebacks in prop::collection::vec(0u64..4096, 0..50),
    ) {
        let cfg = BloomConfig::default();
        let mut l2 = BloomBank::counting(cfg);
        let mut l1 = BloomBank::plain(cfg);
        for &n in &dirty_lines {
            l2.insert(LineAddr::from_aligned(n * 64));
        }
        // The L1 copies each needed filter on demand, then records its own
        // writebacks locally.
        for &n in &dirty_lines {
            let line = LineAddr::from_aligned(n * 64);
            if !l1.has_copy_for(line) {
                l1.install_copy(line, &l2);
            }
        }
        for &n in &local_writebacks {
            l1.insert(LineAddr::from_aligned(n * 64));
        }
        for &n in dirty_lines.iter().chain(&local_writebacks) {
            let line = LineAddr::from_aligned(n * 64);
            if l1.has_copy_for(line) {
                prop_assert!(l1.may_contain(line), "false negative for line {n}");
            }
        }
    }
}
