//! H3 universal hashing.
//!
//! The paper's filters use a single H3 hash function. H3 hashes an *n*-bit
//! key to an *m*-bit index by XOR-ing together, for every set key bit, a
//! fixed random *m*-bit row of a matrix. The matrix here is generated from a
//! small deterministic PRNG so that simulations are reproducible.

/// An H3 hash function from 64-bit keys to indices in `[0, 1 << index_bits)`.
#[derive(Debug, Clone)]
pub struct H3Hash {
    rows: [u64; 64],
    mask: u64,
}

impl H3Hash {
    /// Creates an H3 hash producing `index_bits`-bit indices, with the random
    /// matrix derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or greater than 32.
    pub fn new(index_bits: u32, seed: u64) -> Self {
        assert!(
            index_bits > 0 && index_bits <= 32,
            "index_bits must be 1..=32"
        );
        // SplitMix64: small, deterministic, good avalanche behaviour.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut rows = [0u64; 64];
        for row in rows.iter_mut() {
            *row = next();
        }
        H3Hash {
            rows,
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Hashes a 64-bit key.
    pub fn hash(&self, key: u64) -> usize {
        let mut acc = 0u64;
        let mut k = key;
        let mut i = 0;
        while k != 0 {
            if k & 1 != 0 {
                acc ^= self.rows[i];
            }
            k >>= 1;
            i += 1;
        }
        (acc & self.mask) as usize
    }

    /// Number of distinct index values this hash can produce.
    pub fn range(&self) -> usize {
        (self.mask + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let h = H3Hash::new(9, 42);
        assert_eq!(h.range(), 512);
        for key in 0..1000u64 {
            let v = h.hash(key * 64);
            assert_eq!(v, h.hash(key * 64));
            assert!(v < 512);
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = H3Hash::new(9, 1);
        let b = H3Hash::new(9, 2);
        let differing = (0..256u64)
            .filter(|&k| a.hash(k * 64) != b.hash(k * 64))
            .count();
        assert!(differing > 128, "only {differing} of 256 keys differed");
    }

    #[test]
    fn distribution_covers_most_buckets() {
        let h = H3Hash::new(9, 7);
        let buckets: HashSet<usize> = (0..4096u64).map(|k| h.hash(k * 64)).collect();
        assert!(
            buckets.len() > 400,
            "poor spread: {} buckets",
            buckets.len()
        );
    }

    #[test]
    fn zero_key_hashes_to_zero() {
        // XOR of no rows: H3 maps the all-zero key to index 0 by construction.
        let h = H3Hash::new(9, 3);
        assert_eq!(h.hash(0), 0);
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn rejects_zero_bits() {
        H3Hash::new(0, 1);
    }
}
