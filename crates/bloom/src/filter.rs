//! Plain and counting Bloom filters with a single H3 hash function.

use crate::h3::H3Hash;

/// A non-counting Bloom filter (1 bit per entry), as used at the L1s.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<bool>,
    hash: H3Hash,
    insertions: u64,
}

impl BloomFilter {
    /// Creates an empty filter with `entries` 1-bit entries (must be a power
    /// of two) hashed by an H3 function seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two greater than 1.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries.is_power_of_two() && entries > 1);
        BloomFilter {
            bits: vec![false; entries],
            hash: H3Hash::new(entries.trailing_zeros(), seed),
            insertions: 0,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.bits.len()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let idx = self.hash.hash(key);
        self.bits[idx] = true;
        self.insertions += 1;
    }

    /// Whether the key may have been inserted (no false negatives).
    pub fn may_contain(&self, key: u64) -> bool {
        self.bits[self.hash.hash(key)]
    }

    /// Clears every entry.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Ors another filter's contents into this one (used when an L1 receives
    /// a copy of an L2 filter).
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different sizes.
    pub fn union_from(&mut self, other: &BloomFilter) {
        assert_eq!(self.bits.len(), other.bits.len());
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// Imports the set-bit image of a counting filter (an L2→L1 copy).
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different sizes.
    pub fn union_from_counting(&mut self, other: &CountingBloomFilter) {
        assert_eq!(self.bits.len(), other.counters.len());
        for (a, c) in self.bits.iter_mut().zip(&other.counters) {
            *a |= *c > 0;
        }
    }

    /// Fraction of entries that are set (a proxy for the false-positive rate
    /// with a single hash function).
    pub fn occupancy(&self) -> f64 {
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }
}

/// A counting Bloom filter (8-bit saturating counters), as used at the L2s so
/// that lines can be removed when they stop being dirty.
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    hash: H3Hash,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter (see [`BloomFilter::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two greater than 1.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries.is_power_of_two() && entries > 1);
        CountingBloomFilter {
            counters: vec![0; entries],
            hash: H3Hash::new(entries.trailing_zeros(), seed),
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Increments the counter for a key (saturating).
    pub fn insert(&mut self, key: u64) {
        let idx = self.hash.hash(key);
        self.counters[idx] = self.counters[idx].saturating_add(1);
    }

    /// Decrements the counter for a key (saturating at zero).
    pub fn remove(&mut self, key: u64) {
        let idx = self.hash.hash(key);
        self.counters[idx] = self.counters[idx].saturating_sub(1);
    }

    /// Whether the key may be present.
    pub fn may_contain(&self, key: u64) -> bool {
        self.counters[self.hash.hash(key)] > 0
    }

    /// Clears every counter.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }

    /// Fraction of entries with non-zero counters.
    pub fn occupancy(&self) -> f64 {
        self.counters.iter().filter(|&&c| c > 0).count() as f64 / self.counters.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(512, 1);
        for k in (0..200u64).map(|i| i * 64) {
            f.insert(k);
        }
        for k in (0..200u64).map(|i| i * 64) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = BloomFilter::new(512, 1);
        f.insert(640);
        assert!(f.may_contain(640));
        f.clear();
        assert!(!f.may_contain(640));
        assert_eq!(f.occupancy(), 0.0);
    }

    #[test]
    fn counting_filter_supports_removal() {
        let mut f = CountingBloomFilter::new(512, 9);
        f.insert(128);
        f.insert(128);
        assert!(f.may_contain(128));
        f.remove(128);
        assert!(f.may_contain(128), "still one reference outstanding");
        f.remove(128);
        assert!(!f.may_contain(128));
        // Removing again must not underflow.
        f.remove(128);
        assert!(!f.may_contain(128));
    }

    #[test]
    fn union_from_counting_copies_set_entries() {
        let mut l2 = CountingBloomFilter::new(512, 5);
        let mut l1 = BloomFilter::new(512, 5);
        for k in (0..50u64).map(|i| i * 4096) {
            l2.insert(k);
        }
        l1.union_from_counting(&l2);
        for k in (0..50u64).map(|i| i * 4096) {
            assert!(l1.may_contain(k));
        }
    }

    #[test]
    fn union_from_plain_filter() {
        let mut a = BloomFilter::new(64, 2);
        let mut b = BloomFilter::new(64, 2);
        b.insert(7 * 64);
        a.union_from(&b);
        assert!(a.may_contain(7 * 64));
    }

    #[test]
    fn occupancy_grows_with_insertions() {
        let mut f = CountingBloomFilter::new(512, 11);
        assert_eq!(f.occupancy(), 0.0);
        for k in 0..256u64 {
            f.insert(k * 64);
        }
        assert!(f.occupancy() > 0.2);
        assert_eq!(f.entries(), 512);
    }

    #[test]
    #[should_panic]
    fn mismatched_union_panics() {
        let mut a = BloomFilter::new(64, 2);
        let b = BloomFilter::new(128, 2);
        a.union_from(&b);
    }
}
