//! Banked Bloom filters: the per-L2-slice array of filters and the per-L1
//! shadow copies.

use crate::filter::{BloomFilter, CountingBloomFilter};
use crate::h3::H3Hash;
use tw_types::LineAddr;

/// Parameters of the Bloom-filter structure (paper §4.4 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomConfig {
    /// Entries per individual filter (512).
    pub entries_per_filter: usize,
    /// Number of filters per L2 slice (32).
    pub filters_per_bank: usize,
    /// Seed controlling the hash functions (deterministic runs).
    pub seed: u64,
}

impl Default for BloomConfig {
    fn default() -> Self {
        BloomConfig {
            entries_per_filter: 512,
            filters_per_bank: 32,
            seed: 0xB10F,
        }
    }
}

impl BloomConfig {
    /// Storage required at an L1 for shadow copies of `slices` L2 banks, in
    /// bytes (1 bit per entry).
    pub fn l1_storage_bytes(&self, slices: usize) -> usize {
        self.filters_per_bank * self.entries_per_filter * slices / 8
    }

    /// Storage required at one L2 slice, in bytes (8-bit counters).
    pub fn l2_storage_bytes(&self) -> usize {
        self.filters_per_bank * self.entries_per_filter
    }
}

/// The variant of filters held in a bank.
#[derive(Debug, Clone)]
enum BankKind {
    Counting(Vec<CountingBloomFilter>),
    Plain(Vec<BloomFilter>),
}

/// A bank of Bloom filters indexed by line address, as attached to one L2
/// slice (counting) or one L1's shadow of a slice (plain).
///
/// The line address selects a filter (cache-style indexing) and is then
/// hashed again inside the selected filter, following the paper's
/// description of the structure as "similar to a cache".
#[derive(Debug, Clone)]
pub struct BloomBank {
    cfg: BloomConfig,
    select: H3Hash,
    kind: BankKind,
    /// Which filters have been copied from the L2 (only meaningful for the
    /// plain/L1 variant).
    copied: Vec<bool>,
}

impl BloomBank {
    /// Creates a bank of counting filters (the L2-side structure).
    pub fn counting(cfg: BloomConfig) -> Self {
        let filters = (0..cfg.filters_per_bank)
            .map(|i| CountingBloomFilter::new(cfg.entries_per_filter, cfg.seed ^ (i as u64) << 32))
            .collect();
        BloomBank {
            select: H3Hash::new(
                cfg.filters_per_bank.trailing_zeros().max(1),
                cfg.seed ^ 0xFEED,
            ),
            kind: BankKind::Counting(filters),
            copied: vec![true; cfg.filters_per_bank],
            cfg,
        }
    }

    /// Creates a bank of plain filters (the L1-side shadow of one slice).
    pub fn plain(cfg: BloomConfig) -> Self {
        let filters = (0..cfg.filters_per_bank)
            .map(|i| BloomFilter::new(cfg.entries_per_filter, cfg.seed ^ (i as u64) << 32))
            .collect();
        BloomBank {
            select: H3Hash::new(
                cfg.filters_per_bank.trailing_zeros().max(1),
                cfg.seed ^ 0xFEED,
            ),
            kind: BankKind::Plain(filters),
            copied: vec![false; cfg.filters_per_bank],
            cfg,
        }
    }

    /// The configuration of this bank.
    pub fn config(&self) -> &BloomConfig {
        &self.cfg
    }

    /// Index of the filter responsible for `line`.
    pub fn filter_index(&self, line: LineAddr) -> usize {
        self.select.hash(line.byte()) % self.cfg.filters_per_bank
    }

    /// Inserts a line address.
    pub fn insert(&mut self, line: LineAddr) {
        let idx = self.filter_index(line);
        match &mut self.kind {
            BankKind::Counting(f) => f[idx].insert(line.byte()),
            BankKind::Plain(f) => f[idx].insert(line.byte()),
        }
    }

    /// Removes a line address (counting banks only; a no-op for plain banks,
    /// which can only be cleared wholesale).
    pub fn remove(&mut self, line: LineAddr) {
        let idx = self.filter_index(line);
        if let BankKind::Counting(f) = &mut self.kind {
            f[idx].remove(line.byte());
        }
    }

    /// Whether the line may be present (never a false negative).
    pub fn may_contain(&self, line: LineAddr) -> bool {
        let idx = self.filter_index(line);
        match &self.kind {
            BankKind::Counting(f) => f[idx].may_contain(line.byte()),
            BankKind::Plain(f) => f[idx].may_contain(line.byte()),
        }
    }

    /// Clears every filter and (for plain banks) marks all copies stale.
    /// Called at barriers for the L1 shadows.
    pub fn clear(&mut self) {
        match &mut self.kind {
            BankKind::Counting(f) => f.iter_mut().for_each(CountingBloomFilter::clear),
            BankKind::Plain(f) => f.iter_mut().for_each(BloomFilter::clear),
        }
        if matches!(self.kind, BankKind::Plain(_)) {
            self.copied.iter_mut().for_each(|c| *c = false);
        }
    }

    /// Whether the filter covering `line` has been copied from the L2 since
    /// the last clear (plain banks; counting banks are always authoritative).
    pub fn has_copy_for(&self, line: LineAddr) -> bool {
        self.copied[self.filter_index(line)]
    }

    /// Installs the L2's filter image for the filter covering `line` into
    /// this (plain) bank, OR-ing it with current contents and marking the
    /// copy present.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a plain bank or the configurations differ.
    pub fn install_copy(&mut self, line: LineAddr, l2: &BloomBank) {
        assert_eq!(self.cfg.filters_per_bank, l2.cfg.filters_per_bank);
        let idx = self.filter_index(line);
        let BankKind::Plain(mine) = &mut self.kind else {
            panic!("install_copy requires a plain (L1) bank");
        };
        match &l2.kind {
            BankKind::Counting(theirs) => mine[idx].union_from_counting(&theirs[idx]),
            BankKind::Plain(theirs) => mine[idx].union_from(&theirs[idx]),
        }
        self.copied[idx] = true;
    }

    /// Mean occupancy across the bank's filters.
    pub fn occupancy(&self) -> f64 {
        let occ: f64 = match &self.kind {
            BankKind::Counting(f) => f.iter().map(CountingBloomFilter::occupancy).sum(),
            BankKind::Plain(f) => f.iter().map(BloomFilter::occupancy).sum(),
        };
        occ / self.cfg.filters_per_bank as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    #[test]
    fn paper_storage_figures() {
        // Paper §4.4: 32 KB per L1 (for all 16 slices) and 16 KB per L2 slice.
        let cfg = BloomConfig::default();
        assert_eq!(cfg.l1_storage_bytes(16), 32 * 1024);
        assert_eq!(cfg.l2_storage_bytes(), 16 * 1024);
    }

    #[test]
    fn counting_bank_insert_query_remove() {
        let mut b = BloomBank::counting(BloomConfig::default());
        b.insert(line(100));
        assert!(b.may_contain(line(100)));
        b.remove(line(100));
        assert!(!b.may_contain(line(100)));
    }

    #[test]
    fn plain_bank_copy_protocol() {
        let cfg = BloomConfig::default();
        let mut l2 = BloomBank::counting(cfg);
        let mut l1 = BloomBank::plain(cfg);
        l2.insert(line(7));
        assert!(!l1.has_copy_for(line(7)));
        l1.install_copy(line(7), &l2);
        assert!(l1.has_copy_for(line(7)));
        assert!(l1.may_contain(line(7)));
        // Barrier: clear L1 shadows, copies become stale.
        l1.clear();
        assert!(!l1.has_copy_for(line(7)));
        assert!(!l1.may_contain(line(7)));
    }

    #[test]
    fn l1_writebacks_insert_into_shadow() {
        let mut l1 = BloomBank::plain(BloomConfig::default());
        l1.insert(line(55));
        assert!(l1.may_contain(line(55)));
        // remove() is a no-op on plain banks.
        l1.remove(line(55));
        assert!(l1.may_contain(line(55)));
    }

    #[test]
    fn no_false_negatives_across_bank() {
        let mut b = BloomBank::counting(BloomConfig::default());
        let lines: Vec<_> = (0..2000u64).map(|i| line(i * 13)).collect();
        for &l in &lines {
            b.insert(l);
        }
        assert!(lines.iter().all(|&l| b.may_contain(l)));
        assert!(b.occupancy() > 0.0);
    }

    #[test]
    #[should_panic(expected = "plain (L1) bank")]
    fn install_copy_into_counting_bank_panics() {
        let cfg = BloomConfig::default();
        let l2 = BloomBank::counting(cfg);
        let mut another = BloomBank::counting(cfg);
        another.install_copy(line(1), &l2);
    }
}
