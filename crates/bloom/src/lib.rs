//! Bloom filters for the "L2 Request Bypass" optimization (paper §3.1, §4.4).
//!
//! The optimization predicts whether a line may be dirty anywhere on chip.
//! Each L2 slice keeps a bank of 32 *counting* Bloom filters tracking the
//! line addresses of its dirty lines; each L1 keeps non-counting shadow
//! copies of every L2 filter, populated on demand after the first miss that
//! needs one and cleared at barriers. A load miss for a bypassed region may
//! skip the L2 and go straight to the memory controller only when its line is
//! *absent* from the relevant shadow filter — Bloom filters never produce
//! false negatives, so this is safe for data-race-free programs.
//!
//! Paper parameters: 512 entries per filter, one H3 hash function, 1-bit
//! entries at the L1 and 8-bit counters at the L2, 32 filters per slice.
//!
//! # Example
//!
//! ```
//! use tw_bloom::{BloomBank, BloomConfig};
//! use tw_types::LineAddr;
//!
//! let mut l2 = BloomBank::counting(BloomConfig::default());
//! let line = LineAddr::from_aligned(0x4_0000);
//! l2.insert(line);
//! assert!(l2.may_contain(line));
//! l2.remove(line);
//! assert!(!l2.may_contain(line));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod filter;
pub mod h3;

pub use bank::{BloomBank, BloomConfig};
pub use filter::{BloomFilter, CountingBloomFilter};
pub use h3::H3Hash;
