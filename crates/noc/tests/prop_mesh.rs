//! Property-based tests of mesh routing and flit-hop accounting.

use proptest::prelude::*;
use tw_noc::{model_for, Mesh, PacketSize};
use tw_types::{Cycle, NetworkModelKind, NocConfig, TileId};

fn mesh() -> Mesh {
    Mesh::new(NocConfig::default())
}

proptest! {
    /// On an idle mesh, `send` arrival equals `unloaded_latency` for every
    /// (src, dst, packet size) over the full tile grid — under BOTH network
    /// models. This is the floor every loaded latency is bounded below by.
    #[test]
    fn idle_send_arrival_equals_unloaded_latency(
        src in 0usize..16,
        dst in 0usize..16,
        words in 0usize..17,
        inject in 0u64..1_000_000,
    ) {
        let cfg = NocConfig::default();
        let size = if words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&cfg, words)
        };
        for kind in NetworkModelKind::ALL {
            let mut model = model_for(kind, cfg.clone());
            let unloaded = model.unloaded_latency(TileId(src), TileId(dst), size);
            prop_assert_eq!(
                model.send(TileId(src), TileId(dst), size, inject),
                inject + unloaded,
                "{} model, {}->{} x{} words", kind.name(), src, dst, words
            );
        }
    }

    /// `LinkState` accumulators saturate instead of wrapping when a link is
    /// driven to the end of the cycle space — a wrapped `busy_until` would
    /// silently un-queue every later packet.
    #[test]
    fn saturated_link_state_never_wraps(
        arrivals in prop::collection::vec(0u64..100, 1..20),
        flits in 1usize..6,
    ) {
        let mut l = tw_noc::LinkState::default();
        // Pin the link at the end of the cycle space (3 cycles of headroom,
        // 5 flits of occupancy saturates busy_until to the max).
        l.reserve(Cycle::MAX - 3, 5);
        prop_assert_eq!(l.busy_until, Cycle::MAX, "priming saturates busy_until");
        let mut last_start = 0;
        for a in arrivals {
            let (start, wait) = l.reserve(a, flits);
            prop_assert!(start >= last_start, "starts stay monotone at saturation");
            prop_assert_eq!(start, a + wait, "wait accounting stays consistent");
            last_start = start;
        }
        prop_assert_eq!(l.busy_until, Cycle::MAX, "busy_until stays pinned");
    }
    /// XY routes are loop-free, have exactly Manhattan-distance links, and
    /// every consecutive pair of links shares a router.
    #[test]
    fn routes_are_minimal_and_connected(src in 0usize..16, dst in 0usize..16) {
        let m = mesh();
        let route = m.route(TileId(src), TileId(dst));
        prop_assert_eq!(route.len(), m.hops(TileId(src), TileId(dst)));
        if !route.is_empty() {
            prop_assert_eq!(route[0].from, TileId(src));
            prop_assert_eq!(route[route.len() - 1].to, TileId(dst));
            for pair in route.windows(2) {
                prop_assert_eq!(pair[0].to, pair[1].from);
            }
        }
        // No router is visited twice (loop freedom).
        let mut visited: Vec<_> = route.iter().map(|l| l.from).collect();
        visited.sort_by_key(|t| t.0);
        let before = visited.len();
        visited.dedup();
        prop_assert_eq!(before, visited.len());
    }

    /// Flit-hop accounting is exactly hops × flits for every send, and the
    /// running mesh total equals the sum over all sends.
    #[test]
    fn flit_hop_totals_are_additive(
        sends in prop::collection::vec((0usize..16, 0usize..16, 0usize..17), 1..100)
    ) {
        let cfg = NocConfig::default();
        let mut m = mesh();
        let mut expected = 0.0;
        for (src, dst, words) in sends {
            let size = if words == 0 {
                PacketSize::control_only()
            } else {
                PacketSize::with_data_words(&cfg, words.min(16))
            };
            expected += m.flit_hops(TileId(src), TileId(dst), size) as f64;
            m.send(TileId(src), TileId(dst), size, 0);
        }
        prop_assert!((m.total_flit_hops() - expected).abs() < 1e-9);
    }

    /// Latency is monotone: a packet sent later on the same path never
    /// arrives earlier, and arrival is never before the unloaded latency.
    #[test]
    fn latency_is_monotone_and_bounded_below(
        times in prop::collection::vec(0u64..1000, 2..40),
        words in 1usize..17,
    ) {
        let cfg = NocConfig::default();
        let mut m = mesh();
        let size = PacketSize::with_data_words(&cfg, words);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut last_arrival = 0;
        for t in sorted {
            let arrival = m.send(TileId(0), TileId(15), size, t);
            prop_assert!(arrival >= t + m.unloaded_latency(TileId(0), TileId(15), size));
            prop_assert!(arrival >= last_arrival);
            last_arrival = arrival;
        }
    }

    /// Packet sizing: data words never exceed the payload of the computed
    /// flit count, and the unfilled fraction is consistent with it.
    #[test]
    fn packet_sizing_is_consistent(words in 0usize..17) {
        let cfg = NocConfig::default();
        let size = if words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&cfg, words)
        };
        prop_assert!(size.data_words <= size.data_flits * cfg.words_per_flit());
        prop_assert!(size.data_flits <= cfg.max_data_flits);
        let unfilled = size.unfilled_data_flits(&cfg);
        prop_assert!(unfilled >= 0.0);
        prop_assert!(unfilled < 1.0 + 1e-9);
    }
}
