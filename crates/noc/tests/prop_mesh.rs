//! Property-based tests of mesh routing and flit-hop accounting.

use proptest::prelude::*;
use tw_noc::{Mesh, PacketSize};
use tw_types::{NocConfig, TileId};

fn mesh() -> Mesh {
    Mesh::new(NocConfig::default())
}

proptest! {
    /// XY routes are loop-free, have exactly Manhattan-distance links, and
    /// every consecutive pair of links shares a router.
    #[test]
    fn routes_are_minimal_and_connected(src in 0usize..16, dst in 0usize..16) {
        let m = mesh();
        let route = m.route(TileId(src), TileId(dst));
        prop_assert_eq!(route.len(), m.hops(TileId(src), TileId(dst)));
        if !route.is_empty() {
            prop_assert_eq!(route[0].from, TileId(src));
            prop_assert_eq!(route[route.len() - 1].to, TileId(dst));
            for pair in route.windows(2) {
                prop_assert_eq!(pair[0].to, pair[1].from);
            }
        }
        // No router is visited twice (loop freedom).
        let mut visited: Vec<_> = route.iter().map(|l| l.from).collect();
        visited.sort_by_key(|t| t.0);
        let before = visited.len();
        visited.dedup();
        prop_assert_eq!(before, visited.len());
    }

    /// Flit-hop accounting is exactly hops × flits for every send, and the
    /// running mesh total equals the sum over all sends.
    #[test]
    fn flit_hop_totals_are_additive(
        sends in prop::collection::vec((0usize..16, 0usize..16, 0usize..17), 1..100)
    ) {
        let cfg = NocConfig::default();
        let mut m = mesh();
        let mut expected = 0.0;
        for (src, dst, words) in sends {
            let size = if words == 0 {
                PacketSize::control_only()
            } else {
                PacketSize::with_data_words(&cfg, words.min(16))
            };
            expected += m.flit_hops(TileId(src), TileId(dst), size) as f64;
            m.send(TileId(src), TileId(dst), size, 0);
        }
        prop_assert!((m.total_flit_hops() - expected).abs() < 1e-9);
    }

    /// Latency is monotone: a packet sent later on the same path never
    /// arrives earlier, and arrival is never before the unloaded latency.
    #[test]
    fn latency_is_monotone_and_bounded_below(
        times in prop::collection::vec(0u64..1000, 2..40),
        words in 1usize..17,
    ) {
        let cfg = NocConfig::default();
        let mut m = mesh();
        let size = PacketSize::with_data_words(&cfg, words);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut last_arrival = 0;
        for t in sorted {
            let arrival = m.send(TileId(0), TileId(15), size, t);
            prop_assert!(arrival >= t + m.unloaded_latency(TileId(0), TileId(15), size));
            prop_assert!(arrival >= last_arrival);
            last_arrival = arrival;
        }
    }

    /// Packet sizing: data words never exceed the payload of the computed
    /// flit count, and the unfilled fraction is consistent with it.
    #[test]
    fn packet_sizing_is_consistent(words in 0usize..17) {
        let cfg = NocConfig::default();
        let size = if words == 0 {
            PacketSize::control_only()
        } else {
            PacketSize::with_data_words(&cfg, words)
        };
        prop_assert!(size.data_words <= size.data_flits * cfg.words_per_flit());
        prop_assert!(size.data_flits <= cfg.max_data_flits);
        let unfilled = size.unfilled_data_flits(&cfg);
        prop_assert!(unfilled >= 0.0);
        prop_assert!(unfilled < 1.0 + 1e-9);
    }
}
