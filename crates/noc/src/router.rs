//! Wormhole router output ports: virtual-channel allocation, per-cycle link
//! slots, and deterministic round-robin arbitration.
//!
//! Each unidirectional mesh link is driven by one [`OutPort`]. A packet's
//! head flit must first be granted a virtual channel (held until the tail
//! leaves the downstream router), then every flit of the packet competes for
//! the physical channel one cycle at a time. The port hands out exactly one
//! flit slot per cycle, so flits of concurrent packets interleave on the
//! wire — the behavior the analytic model's whole-packet reservation cannot
//! express. All allocation decisions are deterministic: the VC chooser is a
//! round-robin scan with a fixed tie-break, and slot grants are a pure
//! function of request order.

use tw_types::Cycle;

/// A VC in this state is held by an in-flight packet and cannot be granted.
const VC_HELD: Cycle = Cycle::MAX;

/// The output side of one router port (one per mesh link).
#[derive(Debug, Clone)]
pub struct OutPort {
    /// Earliest cycle the physical channel can carry the next flit.
    link_free: Cycle,
    /// Cycle each virtual channel becomes grantable again ([`VC_HELD`]
    /// while a packet occupies it).
    vc_free: Vec<Cycle>,
    /// Round-robin cursor: where the next VC scan starts.
    rr: usize,
    /// Flits forwarded through this port.
    pub flits: u64,
    /// Cycles flits waited for the channel or a VC beyond their ready time.
    pub stall_cycles: u64,
}

impl OutPort {
    /// A port with `vcs` virtual channels, all idle.
    pub fn new(vcs: usize) -> Self {
        assert!(vcs > 0, "a port needs at least one virtual channel");
        OutPort {
            link_free: 0,
            vc_free: vec![0; vcs],
            rr: 0,
            flits: 0,
            stall_cycles: 0,
        }
    }

    /// Grants a virtual channel to a head flit ready at `ready`.
    ///
    /// Scans the VCs round-robin from the cursor and picks the one that
    /// frees earliest (first in scan order on ties — the deterministic
    /// tie-break), then marks it held. Returns `(vc, grant)` where `grant`
    /// is the cycle the head may proceed. The caller must eventually
    /// [`OutPort::release_vc`].
    pub fn alloc_vc(&mut self, ready: Cycle) -> (usize, Cycle) {
        let n = self.vc_free.len();
        let mut best = self.rr % n;
        for i in 1..n {
            let idx = (self.rr + i) % n;
            if self.vc_free[idx] < self.vc_free[best] {
                best = idx;
            }
        }
        let free = self.vc_free[best];
        debug_assert!(free != VC_HELD, "caller leaked a virtual channel");
        let grant = ready.max(free);
        self.stall_cycles = self.stall_cycles.saturating_add(grant - ready);
        self.vc_free[best] = VC_HELD;
        self.rr = (best + 1) % n;
        (best, grant)
    }

    /// Releases virtual channel `vc`, grantable again from `at`.
    pub fn release_vc(&mut self, vc: usize, at: Cycle) {
        debug_assert_eq!(self.vc_free[vc], VC_HELD, "released a VC twice");
        self.vc_free[vc] = at;
    }

    /// Claims the next one-flit channel slot at or after `ready`, returning
    /// the cycle the flit starts crossing.
    pub fn claim_slot(&mut self, ready: Cycle) -> Cycle {
        let slot = ready.max(self.link_free);
        self.link_free = slot.saturating_add(1);
        self.flits = self.flits.saturating_add(1);
        self.stall_cycles = self.stall_cycles.saturating_add(slot - ready);
        slot
    }

    /// Whether every VC is currently held.
    pub fn saturated(&self) -> bool {
        self.vc_free.iter().all(|&f| f == VC_HELD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_serialize_one_flit_per_cycle() {
        let mut p = OutPort::new(2);
        assert_eq!(p.claim_slot(10), 10);
        assert_eq!(p.claim_slot(10), 11, "same-cycle requests interleave");
        assert_eq!(p.claim_slot(10), 12);
        assert_eq!(p.claim_slot(20), 20, "idle gaps are free");
        assert_eq!(p.flits, 4);
        assert_eq!(p.stall_cycles, 1 + 2);
    }

    #[test]
    fn vc_allocation_is_round_robin_and_held_until_release() {
        let mut p = OutPort::new(2);
        let (a, ga) = p.alloc_vc(5);
        assert_eq!((a, ga), (0, 5));
        let (b, gb) = p.alloc_vc(5);
        assert_eq!((b, gb), (1, 5), "second packet gets the next VC");
        assert!(p.saturated());
        p.release_vc(0, 30);
        let (c, gc) = p.alloc_vc(6);
        assert_eq!(
            (c, gc),
            (0, 30),
            "a held port stalls the head until release"
        );
        assert!(p.stall_cycles >= 24);
    }

    #[test]
    fn vc_scan_prefers_the_earliest_free_channel() {
        let mut p = OutPort::new(3);
        let (a, _) = p.alloc_vc(0);
        let (b, _) = p.alloc_vc(0);
        let (c, _) = p.alloc_vc(0);
        p.release_vc(a, 100);
        p.release_vc(b, 50);
        p.release_vc(c, 80);
        let (chosen, grant) = p.alloc_vc(0);
        assert_eq!((chosen, grant), (b, 50), "earliest-free VC wins the scan");
    }

    #[test]
    fn saturated_counters_do_not_wrap() {
        let mut p = OutPort::new(1);
        assert_eq!(p.claim_slot(Cycle::MAX - 1), Cycle::MAX - 1);
        assert_eq!(p.claim_slot(0), Cycle::MAX, "link_free saturates");
        assert_eq!(p.claim_slot(0), Cycle::MAX);
    }
}
