//! The snooping-bus timing model: one transaction at a time on a shared
//! medium.
//!
//! The third [`crate::NetworkModel`]: instead of per-link reservations
//! ([`crate::Mesh`]) or per-flit wormhole switching
//! ([`crate::WormholeMesh`]), the whole network is a single broadcast medium
//! arbitrated deterministically in request order (FCFS). A transaction
//! occupies the bus for its serialization time — one cycle per flit — and
//! every later transaction waits for the medium to free before starting.
//!
//! Propagation is unchanged from the mesh: the bus is modeled as an
//! arbitration discipline over the same physical wires, so an *idle*
//! transaction collapses to exactly the analytic unloaded latency
//! ([`crate::mesh::unloaded_latency`]). That keeps the shared lower bound
//! every model's `send` respects, and it is what lets the engine's canonical
//! traffic lane stay bit-identical across models: the bus only ever *adds*
//! waiting, never reroutes.

use crate::mesh::unloaded_latency;
use crate::packet::PacketSize;
use tw_types::{Cycle, NocConfig, TileId};

/// A shared snooping bus: deterministic FCFS arbitration, one transaction
/// occupying the medium at a time.
#[derive(Debug, Clone)]
pub struct SnoopBus {
    cfg: NocConfig,
    /// Cycle at which the bus next becomes free.
    busy_until: Cycle,
    flit_hops: f64,
    packets: u64,
    stall_cycles: u64,
}

impl SnoopBus {
    /// Creates an idle bus for the given network configuration.
    pub fn new(cfg: NocConfig) -> Self {
        SnoopBus {
            cfg,
            busy_until: 0,
            flit_hops: 0.0,
            packets: 0,
            stall_cycles: 0,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of link traversals between two tiles (the Manhattan distance —
    /// traffic accounting is shared with the mesh models by construction).
    pub fn hops(&self, src: TileId, dst: TileId) -> usize {
        src.coord(self.cfg.cols).hops_to(dst.coord(self.cfg.cols))
    }

    /// Sends a transaction, returning the cycle its tail arrives at `dst`.
    ///
    /// Arbitration: the transaction wins the bus at `max(now, busy_until)`
    /// (FCFS in call order — the engine's deterministic event order makes
    /// this reproducible), occupies it for the serialization time of its
    /// flits, and reaches `dst` one unloaded propagation delay after winning.
    pub fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle {
        self.packets += 1;
        let hops = self.hops(src, dst);
        self.flit_hops += (hops * size.total_flits()) as f64;
        let start = now.max(self.busy_until);
        self.stall_cycles += start - now;
        self.busy_until = start + size.total_flits() as Cycle;
        start + unloaded_latency(&self.cfg, hops, size)
    }

    /// Latency a transaction would see on an idle bus (no arbitration wait):
    /// identical to the analytic mesh's unloaded latency.
    pub fn unloaded_latency(&self, src: TileId, dst: TileId, size: PacketSize) -> Cycle {
        unloaded_latency(&self.cfg, self.hops(src, dst), size)
    }

    /// Total flit-hops accumulated by [`SnoopBus::send`].
    pub fn total_flit_hops(&self) -> f64 {
        self.flit_hops
    }

    /// Total transactions sent.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total cycles transactions spent waiting for the bus.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> SnoopBus {
        SnoopBus::new(NocConfig::default())
    }

    #[test]
    fn idle_send_collapses_to_unloaded_latency() {
        let mut b = bus();
        let size = PacketSize::with_data_words(b.config(), 8); // 3 flits
        let arrival = b.send(TileId(0), TileId(15), size, 100);
        assert_eq!(
            arrival,
            100 + b.unloaded_latency(TileId(0), TileId(15), size)
        );
        assert_eq!(b.total_stall_cycles(), 0);
    }

    #[test]
    fn second_transaction_waits_for_the_medium() {
        let mut b = bus();
        let size = PacketSize::with_data_words(b.config(), 16); // 5 flits
        let a = b.send(TileId(0), TileId(1), size, 0);
        // Even a transaction on disjoint tiles waits: the bus is one medium.
        let c = b.send(TileId(14), TileId(15), size, 0);
        assert_eq!(c, 5 + b.unloaded_latency(TileId(14), TileId(15), size));
        assert!(c > a, "second transaction must queue behind the first");
        assert_eq!(b.total_stall_cycles(), 5);
        assert_eq!(b.packets(), 2);
    }

    #[test]
    fn arbitration_is_fcfs_in_call_order() {
        let mut b = bus();
        let size = PacketSize::control_only(); // 1 flit
        let mut last_start = 0;
        for i in 0..4 {
            let arrival = b.send(TileId(0), TileId(5), size, 0);
            let start = arrival - b.unloaded_latency(TileId(0), TileId(5), size);
            assert_eq!(start, i as Cycle, "occupancy is back-to-back");
            assert!(start >= last_start);
            last_start = start;
        }
    }

    #[test]
    fn bus_frees_after_occupancy() {
        let mut b = bus();
        let size = PacketSize::with_data_words(b.config(), 4); // 2 flits
        b.send(TileId(0), TileId(1), size, 0);
        // By cycle 2 the medium is free again: no stall.
        let before = b.total_stall_cycles();
        b.send(TileId(2), TileId(3), size, 2);
        assert_eq!(b.total_stall_cycles(), before);
    }

    #[test]
    fn traffic_accounting_matches_the_mesh_rule() {
        let mut b = bus();
        let size = PacketSize::with_data_words(b.config(), 16); // 5 flits
        b.send(TileId(0), TileId(15), size, 0); // 6 hops
        assert_eq!(b.total_flit_hops(), 30.0);
        b.send(TileId(3), TileId(3), size, 0);
        assert_eq!(
            b.total_flit_hops(),
            30.0,
            "local delivery adds no flit-hops"
        );
    }
}
