//! Event-driven flit-level wormhole simulation.
//!
//! [`WormholeMesh`] pushes every flit of a packet through the XY route one
//! link at a time. Each flit traversal is a discrete event processed in
//! global `(time, seq)` order through the [`EventQueue`], subject to four
//! constraints:
//!
//! 1. **pipeline** — a flit reaches router `i` one link latency after it
//!    crossed link `i-1`, then spends the router pipeline latency;
//! 2. **serialization** — a link carries one flit per cycle, so flit `f`
//!    follows flit `f-1` of the same packet by at least a cycle;
//! 3. **credits** — a flit may only leave router `i` once the downstream
//!    VC buffer has a slot, i.e. once flit `f - depth` has left router
//!    `i+1` (wormhole backpressure propagating upstream);
//! 4. **arbitration** — the head flit must win a virtual channel on every
//!    link (held until the tail drains downstream), and every flit must win
//!    a one-cycle channel slot against all other traffic on that link
//!    ([`OutPort`], deterministic round-robin).
//!
//! On an idle mesh the four constraints collapse to exactly the analytic
//! unloaded latency (`hops × (router + link) + flits − 1`); under load, VC
//! exhaustion and credit backpressure — a stalled tail flit holds its
//! upstream link long after the analytic reservation window has closed —
//! produce the congestion the analytic per-link estimate cannot see. All
//! state updates are deterministic, so two runs over the same send sequence
//! are byte-identical.

use crate::events::EventQueue;
use crate::link::LinkId;
use crate::mesh::{unloaded_latency, xy_route};
use crate::packet::PacketSize;
use crate::router::OutPort;
use std::collections::HashMap;
use tw_types::{Cycle, NocConfig, TileId};

/// One flit traversal: (hop index on the route, flit index in the packet).
type FlitHop = (usize, usize);

/// The flit-level wormhole-routed mesh.
#[derive(Debug, Clone)]
pub struct WormholeMesh {
    cfg: NocConfig,
    ports: HashMap<LinkId, OutPort>,
    events: EventQueue<FlitHop>,
    packets: u64,
}

impl WormholeMesh {
    /// Creates an idle wormhole mesh for the given network configuration.
    pub fn new(cfg: NocConfig) -> Self {
        WormholeMesh {
            cfg,
            ports: HashMap::new(),
            events: EventQueue::new(),
            packets: 0,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Total packets sent.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total flit traversals forwarded by all ports.
    pub fn total_flits_forwarded(&self) -> u64 {
        self.ports.values().map(|p| p.flits).sum()
    }

    /// Total cycles flits spent stalled on arbitration, channel slots or
    /// credits, beyond their pipeline-ready times.
    pub fn total_stall_cycles(&self) -> u64 {
        self.ports.values().map(|p| p.stall_cycles).sum()
    }

    /// Peak depth of the flit-event queue across the run — how much
    /// in-flight work the event loop ever had pending at once.
    pub fn event_queue_high_water(&self) -> usize {
        self.events.high_water()
    }

    /// Earliest cycle flit `f` may start crossing link `i`, given every
    /// already-resolved traversal of this packet (constraints 1–3; the
    /// resource constraints are applied by the port when the event pops).
    fn ready_time(
        &self,
        cross: &[Vec<Cycle>],
        inject: Cycle,
        i: usize,
        f: usize,
        hops: usize,
    ) -> Cycle {
        let (r, l) = (self.cfg.router_latency, self.cfg.link_latency);
        let depth = self.cfg.vc_buffer_flits;
        let mut ready = if i == 0 {
            inject + r
        } else {
            cross[i - 1][f] + l + r
        };
        if f > 0 {
            ready = ready.max(cross[i][f - 1] + 1);
        }
        if f >= depth && i + 1 < hops {
            // The downstream buffer slot frees when flit f-depth leaves
            // router i+1; this flit lands there one link latency after it
            // starts crossing, hence the rebase by `l`.
            ready = ready.max((cross[i + 1][f - depth] + 1).saturating_sub(l));
        }
        ready
    }

    /// Sends a packet, simulating every flit through the route, and returns
    /// the cycle the tail flit arrives at `dst`.
    ///
    /// Local delivery (`src == dst`) models the cache controller's internal
    /// path: one router traversal, no link occupancy.
    pub fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle {
        self.packets += 1;
        let route = xy_route(&self.cfg, src, dst);
        if route.is_empty() {
            return now + self.cfg.router_latency;
        }
        let hops = route.len();
        let flits = size.total_flits();
        let depth = self.cfg.vc_buffer_flits;
        let l = self.cfg.link_latency;

        // cross[i][f]: cycle flit f starts crossing link i, once resolved.
        let mut cross = vec![vec![0 as Cycle; flits]; hops];
        let mut resolved = vec![vec![false; flits]; hops];
        let mut vc_of = vec![0usize; hops];
        // Unresolved-predecessor counts per traversal; an event is scheduled
        // exactly when its count reaches zero, so every pop has its ready
        // time fully determined.
        let mut pending: Vec<Vec<usize>> = (0..hops)
            .map(|i| {
                (0..flits)
                    .map(|f| {
                        usize::from(i > 0)
                            + usize::from(f > 0)
                            + usize::from(f >= depth && i + 1 < hops)
                    })
                    .collect()
            })
            .collect();

        self.events.push(now + self.cfg.router_latency, (0, 0));
        while let Some((_, (i, f))) = self.events.pop() {
            let ready = self.ready_time(&cross, now, i, f, hops);
            let port = self
                .ports
                .entry(route[i])
                .or_insert_with(|| OutPort::new(self.cfg.vcs_per_port));
            let start = if f == 0 {
                let (vc, grant) = port.alloc_vc(ready);
                vc_of[i] = vc;
                port.claim_slot(grant)
            } else {
                port.claim_slot(ready)
            };
            cross[i][f] = start;
            resolved[i][f] = true;

            // Wake the traversals this one was the last unresolved
            // predecessor of.
            let dependents = [
                (i + 1 < hops).then(|| (i + 1, f)),
                (f + 1 < flits).then(|| (i, f + 1)),
                (i >= 1 && f + depth < flits).then(|| (i - 1, f + depth)),
            ];
            for (di, df) in dependents.into_iter().flatten() {
                pending[di][df] -= 1;
                if pending[di][df] == 0 {
                    self.events
                        .push(self.ready_time(&cross, now, di, df, hops), (di, df));
                }
            }
        }
        debug_assert!(resolved.iter().flatten().all(|&r| r), "a flit never moved");

        // A VC is held from head grant until the tail drains out of the
        // downstream input buffer (crosses the next link, or ejects at dst).
        for i in 0..hops {
            let freed = if i + 1 < hops {
                cross[i + 1][flits - 1] + 1
            } else {
                cross[hops - 1][flits - 1] + l
            };
            self.ports
                .get_mut(&route[i])
                .expect("every route link has a port by now")
                .release_vc(vc_of[i], freed);
        }

        let arrival = cross[hops - 1][flits - 1] + l;
        debug_assert!(arrival >= now + unloaded_latency(&self.cfg, hops, size));
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> WormholeMesh {
        WormholeMesh::new(NocConfig::default())
    }

    fn full_line() -> PacketSize {
        PacketSize::with_data_words(&NocConfig::default(), 16) // 5 flits
    }

    #[test]
    fn idle_sends_match_the_analytic_unloaded_latency() {
        let mut m = mesh();
        for (src, dst, words) in [(0, 15, 16), (3, 12, 1), (5, 6, 0), (9, 9, 4)] {
            let size = if words == 0 {
                PacketSize::control_only()
            } else {
                PacketSize::with_data_words(m.config(), words)
            };
            let cfg = m.config().clone();
            let hops = xy_route(&cfg, TileId(src), TileId(dst)).len();
            // A fresh mesh per probe: the point is the idle latency.
            let mut fresh = WormholeMesh::new(cfg.clone());
            let arrival = fresh.send(TileId(src), TileId(dst), size, 100);
            assert_eq!(
                arrival,
                100 + unloaded_latency(&cfg, hops, size),
                "{src}->{dst} x{words} words"
            );
            m.send(TileId(src), TileId(dst), size, 100);
        }
        assert_eq!(m.packets(), 4);
    }

    #[test]
    fn contended_link_delays_the_second_packet() {
        let mut m = mesh();
        let idle = {
            let mut fresh = mesh();
            fresh.send(TileId(0), TileId(1), full_line(), 0)
        };
        let a = m.send(TileId(0), TileId(1), full_line(), 0);
        let b = m.send(TileId(0), TileId(1), full_line(), 0);
        assert_eq!(a, idle, "the first packet sees an idle wire");
        assert!(b > a, "the second packet queues behind the first's slots");
        assert!(m.total_stall_cycles() > 0);
        assert_eq!(m.total_flits_forwarded(), 10);
    }

    #[test]
    fn vc_exhaustion_serializes_heads() {
        let cfg = NocConfig {
            vcs_per_port: 1,
            ..NocConfig::default()
        };
        let mut single = WormholeMesh::new(cfg);
        let mut multi = mesh();
        let mut last_single = 0;
        let mut last_multi = 0;
        for _ in 0..4 {
            last_single = single.send(TileId(0), TileId(3), full_line(), 0);
            last_multi = multi.send(TileId(0), TileId(3), full_line(), 0);
        }
        assert!(
            last_single > last_multi,
            "one VC per port must backpressure harder ({last_single} vs {last_multi})"
        );
    }

    #[test]
    fn credit_backpressure_holds_upstream_links_beyond_the_analytic_window() {
        // Congest link 1->2, then route a packet 0->2 through it: its tail
        // flit stalls on credits and claims its 0->1 slot only once the
        // downstream buffer drains, keeping the upstream wire formally busy
        // long after the analytic model's reservation window closed. A
        // probe packet on 0->1 therefore arrives strictly later under the
        // wormhole model — congestion the analytic estimate cannot see.
        let mut wh = mesh();
        let mut an = crate::Mesh::new(NocConfig::default());
        for _ in 0..3 {
            wh.send(TileId(1), TileId(2), full_line(), 0);
            an.send(TileId(1), TileId(2), full_line(), 0);
        }
        let through_wh = wh.send(TileId(0), TileId(2), full_line(), 0);
        let through_an = an.send(TileId(0), TileId(2), full_line(), 0);
        assert_eq!(
            through_wh, through_an,
            "the congested path itself agrees across models here"
        );
        let probe_wh = wh.send(TileId(0), TileId(1), full_line(), 6);
        let probe_an = an.send(TileId(0), TileId(1), full_line(), 6);
        assert!(
            probe_wh > probe_an,
            "backpressured tail must hold the 0->1 link ({probe_wh} vs {probe_an})"
        );
    }

    #[test]
    fn identical_send_sequences_are_byte_identical() {
        let run = || {
            let mut m = mesh();
            let mut arrivals = Vec::new();
            for i in 0..200u64 {
                let src = TileId((i % 16) as usize);
                let dst = TileId(((i * 7 + 3) % 16) as usize);
                let words = (i % 17) as usize;
                let size = if words == 0 {
                    PacketSize::control_only()
                } else {
                    PacketSize::with_data_words(m.config(), words)
                };
                arrivals.push(m.send(src, dst, size, i / 3));
            }
            (arrivals, m.total_stall_cycles(), m.total_flits_forwarded())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn local_delivery_takes_router_latency() {
        let mut m = mesh();
        assert_eq!(
            m.send(TileId(7), TileId(7), PacketSize::control_only(), 42),
            42 + m.config().router_latency
        );
        assert_eq!(m.total_flits_forwarded(), 0);
    }
}
