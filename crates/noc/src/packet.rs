//! Packet sizing in flits.

use tw_types::NocConfig;

/// Size of one network packet in flits.
///
/// Every packet carries one control flit (header, address, bit-vectors);
/// packets carrying data add one data flit per four words, capped at the
/// configured maximum (four data flits ⇒ 64 bytes, paper §4.2). Requests and
/// pure protocol messages are control-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSize {
    /// Number of control flits (always ≥ 1).
    pub control_flits: usize,
    /// Number of data flits.
    pub data_flits: usize,
    /// Number of data words actually carried (may under-fill the last flit).
    pub data_words: usize,
}

impl PacketSize {
    /// A control-only packet (request, ack, invalidation, ...).
    pub const fn control_only() -> Self {
        PacketSize {
            control_flits: 1,
            data_flits: 0,
            data_words: 0,
        }
    }

    /// A packet carrying `words` data words.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds the configured maximum packet payload —
    /// callers must split larger transfers into multiple packets.
    pub fn with_data_words(cfg: &NocConfig, words: usize) -> Self {
        assert!(
            words <= cfg.max_data_words(),
            "payload of {} words exceeds the {}-word packet limit",
            words,
            cfg.max_data_words()
        );
        let wpf = cfg.words_per_flit();
        PacketSize {
            control_flits: 1,
            data_flits: words.div_ceil(wpf),
            data_words: words,
        }
    }

    /// Total flits in the packet.
    pub const fn total_flits(self) -> usize {
        self.control_flits + self.data_flits
    }

    /// Fraction of the data flits that is actually filled with words
    /// (1.0 when full; the unfilled remainder is accounted as control traffic
    /// in the figures, per paper §5.2).
    pub fn data_fill_fraction(self, cfg: &NocConfig) -> f64 {
        if self.data_flits == 0 {
            return 1.0;
        }
        self.data_words as f64 / (self.data_flits * cfg.words_per_flit()) as f64
    }

    /// Flit-count equivalent of the unfilled tail of the last data flit.
    pub fn unfilled_data_flits(self, cfg: &NocConfig) -> f64 {
        self.data_flits as f64 * (1.0 - self.data_fill_fraction(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig::default()
    }

    #[test]
    fn control_only_packets_are_one_flit() {
        let p = PacketSize::control_only();
        assert_eq!(p.total_flits(), 1);
        assert_eq!(p.data_words, 0);
        assert!((p.data_fill_fraction(&cfg()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn data_flit_count_rounds_up() {
        assert_eq!(PacketSize::with_data_words(&cfg(), 1).data_flits, 1);
        assert_eq!(PacketSize::with_data_words(&cfg(), 4).data_flits, 1);
        assert_eq!(PacketSize::with_data_words(&cfg(), 5).data_flits, 2);
        assert_eq!(PacketSize::with_data_words(&cfg(), 16).data_flits, 4);
        assert_eq!(PacketSize::with_data_words(&cfg(), 16).total_flits(), 5);
    }

    #[test]
    fn unfilled_fraction_of_partial_flit() {
        // 5 words in 2 flits: 8 word slots, 3 empty -> 3/8 of 2 flits = 0.75.
        let p = PacketSize::with_data_words(&cfg(), 5);
        assert!((p.unfilled_data_flits(&cfg()) - 0.75).abs() < 1e-12);
        let full = PacketSize::with_data_words(&cfg(), 8);
        assert_eq!(full.unfilled_data_flits(&cfg()), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        PacketSize::with_data_words(&cfg(), 17);
    }
}
