//! Deterministic discrete-event queue for the flit-level network.
//!
//! The wormhole simulator advances by processing flit-traversal events in
//! global time order. Byte-reproducibility requires a *total* order on
//! events: two events scheduled for the same cycle are tie-broken by a
//! monotone sequence number assigned at push time, so the pop order — and
//! therefore every arbitration decision downstream of it — is a pure
//! function of the push history. The sequence counter never resets, making
//! the order total across the whole run, not just within one drain.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tw_types::Cycle;

/// One scheduled event: a payload due at a cycle, with its tie-break rank.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

// The heap is a max-heap; reverse the (time, seq) comparison so `pop`
// yields the earliest event, lowest sequence number first on ties.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

/// A priority queue of events with a deterministic total pop order.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    high_water: usize,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` at `time`. Events pushed later sort after events
    /// pushed earlier at the same cycle.
    pub fn push(&mut self, time: Cycle, payload: T) {
        self.seq += 1;
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Pops the earliest event — smallest `(time, seq)` pair.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Whether any events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total events ever scheduled (the tie-break counter).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Deepest the queue has ever been — the run's event-backlog high-water
    /// mark. Observer lane: nothing inside the simulation reads this.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_push_order_tie_break() {
        let mut q = EventQueue::new();
        q.push(5, "late");
        q.push(1, "first-at-1");
        q.push(1, "second-at-1");
        q.push(0, "earliest");
        assert_eq!(q.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (0, "earliest"),
                (1, "first-at-1"),
                (1, "second-at-1"),
                (5, "late"),
            ]
        );
        assert!(q.is_empty());
        assert_eq!(q.scheduled(), 4);
    }

    #[test]
    fn sequence_counter_is_monotone_across_drains() {
        let mut q = EventQueue::new();
        q.push(3, 'a');
        q.pop();
        q.push(3, 'b');
        assert_eq!(q.scheduled(), 2, "seq survives a drain");
    }

    #[test]
    fn high_water_tracks_peak_depth_not_current() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.push(1, 'a');
        q.push(2, 'b');
        q.push(3, 'c');
        q.pop();
        q.pop();
        q.push(4, 'd');
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 3, "peak was three pending events");
    }
}
