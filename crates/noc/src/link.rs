//! Mesh links and their occupancy state.

use std::fmt;
use tw_types::{Cycle, TileId};

/// A unidirectional link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Upstream router tile.
    pub from: TileId,
    /// Downstream router tile.
    pub to: TileId,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Occupancy bookkeeping for one link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkState {
    /// Cycle until which the link is busy serializing earlier packets.
    pub busy_until: Cycle,
    /// Total flits that have crossed the link.
    pub flits: u64,
    /// Total cycles of queueing delay packets experienced at this link.
    pub queueing_cycles: u64,
}

impl LinkState {
    /// Reserves the link for `flits` flits arriving at `arrival`.
    ///
    /// Returns `(start, queueing_delay)`: the cycle the head flit actually
    /// starts crossing and how long it waited for the link. All accumulators
    /// saturate, so a link driven to the end of the cycle space (or a run
    /// long enough to exhaust the u64 counters) pins at the maximum instead
    /// of wrapping into bogus small values.
    pub fn reserve(&mut self, arrival: Cycle, flits: usize) -> (Cycle, Cycle) {
        let start = arrival.max(self.busy_until);
        let wait = start - arrival;
        self.busy_until = start.saturating_add(flits as Cycle);
        self.flits = self.flits.saturating_add(flits as u64);
        self.queueing_cycles = self.queueing_cycles.saturating_add(wait);
        (start, wait)
    }

    /// Utilization of the link over `elapsed` cycles (0.0–1.0+).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.flits as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_serializes_back_to_back_packets() {
        let mut l = LinkState::default();
        let (s1, w1) = l.reserve(100, 5);
        assert_eq!((s1, w1), (100, 0));
        // Second packet arrives while the first still occupies the link.
        let (s2, w2) = l.reserve(102, 2);
        assert_eq!(s2, 105);
        assert_eq!(w2, 3);
        assert_eq!(l.flits, 7);
        assert_eq!(l.queueing_cycles, 3);
    }

    #[test]
    fn idle_link_has_no_wait() {
        let mut l = LinkState::default();
        l.reserve(10, 1);
        let (s, w) = l.reserve(1000, 4);
        assert_eq!((s, w), (1000, 0));
    }

    #[test]
    fn utilization_is_flits_per_cycle() {
        let mut l = LinkState::default();
        l.reserve(0, 50);
        assert!((l.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(LinkState::default().utilization(0), 0.0);
    }

    #[test]
    fn link_id_display() {
        let id = LinkId {
            from: TileId(1),
            to: TileId(2),
        };
        assert_eq!(id.to_string(), "T1->T2");
    }
}
