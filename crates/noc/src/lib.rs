//! On-chip mesh network models.
//!
//! The study reports all traffic in *flit-hops*: each 16-byte flit counts
//! once per link it traverses. This crate models the 4×4 mesh of the paper
//! with XY dimension-order routing, computes packet sizes in flits (one
//! control flit plus up to four data flits), accounts flit-hops, and
//! provides three timing models behind the [`NetworkModel`] trait
//! (`DESIGN.md` §11):
//!
//! * [`Mesh`] — the **analytic** model: per-hop pipeline delay plus
//!   serialization plus a per-link queueing term derived from whole-packet
//!   link reservations. Fast; the default.
//! * [`WormholeMesh`] — the **flit-level** model: an event-driven wormhole
//!   simulation ([`EventQueue`] with a deterministic total event order)
//!   through routers with per-port virtual channels, round-robin
//!   arbitration and credit backpressure ([`OutPort`]).
//! * [`SnoopBus`] — the **snooping-bus** model: one transaction occupies the
//!   whole medium at a time, arbitrated FCFS in deterministic request order.
//!
//! Flit-hops are exact under XY routing and identical across models (all
//! account `hops × flits` over the same geometry); only latency differs, and
//! every model collapses to the same unloaded latency when idle.
//!
//! # Example
//!
//! ```
//! use tw_noc::{model_for, Mesh, PacketSize};
//! use tw_types::{NetworkModelKind, NocConfig, TileId};
//!
//! let mesh = Mesh::new(NocConfig::default());
//! let size = PacketSize::with_data_words(&NocConfig::default(), 6);
//! assert_eq!(size.data_flits, 2);
//! let hops = mesh.hops(TileId(0), TileId(15));
//! assert_eq!(hops, 6);
//! assert_eq!(mesh.flit_hops(TileId(0), TileId(15), size), 6 * 3);
//!
//! // Both timing models agree on an idle mesh.
//! let mut flit = model_for(NetworkModelKind::FlitLevel, NocConfig::default());
//! assert_eq!(
//!     flit.send(TileId(0), TileId(15), size, 0),
//!     mesh.unloaded_latency(TileId(0), TileId(15), size),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod events;
pub mod link;
pub mod mesh;
pub mod model;
pub mod packet;
pub mod router;
pub mod wormhole;

pub use bus::SnoopBus;
pub use events::EventQueue;
pub use link::{LinkId, LinkState};
pub use mesh::{xy_route, Mesh};
pub use model::{model_for, NetworkModel};
pub use packet::PacketSize;
pub use router::OutPort;
pub use wormhole::WormholeMesh;
