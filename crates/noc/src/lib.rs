//! On-chip mesh network model.
//!
//! The study reports all traffic in *flit-hops*: each 16-byte flit counts
//! once per link it traverses. This crate models the 4×4 mesh of the paper
//! with XY dimension-order routing, computes packet sizes in flits (one
//! control flit plus up to four data flits), accounts flit-hops, and provides
//! a wormhole-style latency model with per-link contention.
//!
//! Per the substitution note in `DESIGN.md`, the NoC is analytic rather than
//! a per-flit wormhole simulator: flit-hops are exact under XY routing, and
//! latency is per-hop pipeline delay plus serialization plus a per-link
//! queueing term derived from link occupancy.
//!
//! # Example
//!
//! ```
//! use tw_noc::{Mesh, PacketSize};
//! use tw_types::{NocConfig, TileId};
//!
//! let mesh = Mesh::new(NocConfig::default());
//! let size = PacketSize::with_data_words(&NocConfig::default(), 6);
//! assert_eq!(size.data_flits, 2);
//! let hops = mesh.hops(TileId(0), TileId(15));
//! assert_eq!(hops, 6);
//! assert_eq!(mesh.flit_hops(TileId(0), TileId(15), size), 6 * 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod mesh;
pub mod packet;

pub use link::{LinkId, LinkState};
pub use mesh::Mesh;
pub use packet::PacketSize;
