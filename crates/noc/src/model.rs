//! The pluggable network-model abstraction.
//!
//! All three fabrics — the analytic [`Mesh`], the flit-level
//! [`WormholeMesh`], and the snooping [`SnoopBus`] — implement
//! [`NetworkModel`], and the engine resolves a [`NetworkModelKind`] to a
//! boxed model exactly once at construction through [`model_for`], mirroring
//! the protocol-executor registry (`DESIGN.md` §3/§11). Flit-hop *traffic*
//! is model-independent (all account `hops × flits` over the same XY
//! geometry), so the trait only abstracts *timing*: `send` returns the
//! tail-flit arrival cycle under that model's contention behavior.

use crate::bus::SnoopBus;
use crate::mesh::{unloaded_latency, xy_route, Mesh};
use crate::packet::PacketSize;
use crate::wormhole::WormholeMesh;
use tw_types::{Cycle, NetworkModelKind, NocConfig, TileId};

/// One network timing model: stateful, deterministic, resolved once per
/// simulation run.
pub trait NetworkModel: std::fmt::Debug + Send {
    /// The kind this model implements (the registry round-trip).
    fn kind(&self) -> NetworkModelKind;

    /// Sends a packet, returning the cycle its tail arrives at `dst`.
    fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle;

    /// Latency the packet would see on an unloaded network — the shared
    /// lower bound every model's `send` respects.
    fn unloaded_latency(&self, src: TileId, dst: TileId, size: PacketSize) -> Cycle;

    /// Total cycles packets spent queueing/stalling beyond their unloaded
    /// pipelines.
    fn total_queueing_cycles(&self) -> u64;

    /// Total packets sent.
    fn packets(&self) -> u64;

    /// Peak event-queue depth, for models that run an event loop. Analytic
    /// models have no queue and report 0 (the default). Observer lane only.
    fn queue_high_water(&self) -> usize {
        0
    }
}

impl NetworkModel for Mesh {
    fn kind(&self) -> NetworkModelKind {
        NetworkModelKind::Analytic
    }

    fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle {
        Mesh::send(self, src, dst, size, now)
    }

    fn unloaded_latency(&self, src: TileId, dst: TileId, size: PacketSize) -> Cycle {
        Mesh::unloaded_latency(self, src, dst, size)
    }

    fn total_queueing_cycles(&self) -> u64 {
        Mesh::total_queueing_cycles(self)
    }

    fn packets(&self) -> u64 {
        Mesh::packets(self)
    }
}

impl NetworkModel for WormholeMesh {
    fn kind(&self) -> NetworkModelKind {
        NetworkModelKind::FlitLevel
    }

    fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle {
        WormholeMesh::send(self, src, dst, size, now)
    }

    fn unloaded_latency(&self, src: TileId, dst: TileId, size: PacketSize) -> Cycle {
        unloaded_latency(self.config(), xy_route(self.config(), src, dst).len(), size)
    }

    fn total_queueing_cycles(&self) -> u64 {
        self.total_stall_cycles()
    }

    fn packets(&self) -> u64 {
        WormholeMesh::packets(self)
    }

    fn queue_high_water(&self) -> usize {
        self.event_queue_high_water()
    }
}

impl NetworkModel for SnoopBus {
    fn kind(&self) -> NetworkModelKind {
        NetworkModelKind::SnoopBus
    }

    fn send(&mut self, src: TileId, dst: TileId, size: PacketSize, now: Cycle) -> Cycle {
        SnoopBus::send(self, src, dst, size, now)
    }

    fn unloaded_latency(&self, src: TileId, dst: TileId, size: PacketSize) -> Cycle {
        SnoopBus::unloaded_latency(self, src, dst, size)
    }

    fn total_queueing_cycles(&self) -> u64 {
        self.total_stall_cycles()
    }

    fn packets(&self) -> u64 {
        SnoopBus::packets(self)
    }
}

/// Resolves a network-model kind to a fresh model over `cfg` — the network
/// counterpart of `executor_for` in the protocol registry. This is the
/// single place model dispatch is decided.
pub fn model_for(kind: NetworkModelKind, cfg: NocConfig) -> Box<dyn NetworkModel> {
    match kind {
        NetworkModelKind::Analytic => Box::new(Mesh::new(cfg)),
        NetworkModelKind::FlitLevel => Box::new(WormholeMesh::new(cfg)),
        NetworkModelKind::SnoopBus => Box::new(SnoopBus::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_resolves_and_round_trips() {
        for kind in NetworkModelKind::ALL {
            let model = model_for(kind, NocConfig::default());
            assert_eq!(model.kind(), kind);
            assert_eq!(model.packets(), 0);
        }
    }

    #[test]
    fn all_models_share_the_unloaded_bound() {
        let size = PacketSize::with_data_words(&NocConfig::default(), 8);
        let mut models: Vec<_> = NetworkModelKind::ALL
            .into_iter()
            .map(|k| model_for(k, NocConfig::default()))
            .collect();
        for m in &mut models {
            let unloaded = m.unloaded_latency(TileId(0), TileId(15), size);
            assert_eq!(m.send(TileId(0), TileId(15), size, 50), 50 + unloaded);
        }
    }
}
