//! The cross-protocol differential runner.
//!
//! For one workload the runner sweeps the full protocol registry and checks
//! every metamorphic invariant the paper's methodology depends on:
//!
//! 1. **Identical service** — every protocol's captured serviced stream is
//!    exactly the input stream (hence all ten service identical op counts);
//! 2. **Functional agreement** — the captured stream re-executed under the
//!    golden SC-per-phase model reproduces the reference fingerprint;
//! 3. **Replay determinism** — replaying the captured stream under the same
//!    protocol reproduces a bit-identical [`SimReport`];
//! 4. **Sane accounting** — the waste fraction of every report lies in
//!    `[0, 1]` and total traffic is finite and positive;
//! 5. **Bypass dominance** — on a fully-bypass-annotated streaming workload
//!    (the scenario L2 bypass exists for), `DBypFull` moves no more traffic
//!    than MESI. The claim is scoped to [`BYPASS_DOMINANCE_PROTOCOLS`]:
//!    update-based protocols (Dragon) deliberately trade extra update
//!    traffic for sharer latency and are exempt from the dominance check
//!    while still running every other invariant;
//! 6. **Network-model identity** — re-running the cell under every *other*
//!    registered network model (wormhole flit-level, snooping bus) must
//!    reproduce every per-bucket flit-hop number, every waste
//!    classification and the DRAM behavior bit for bit, and every timed
//!    model's execution time must be at or above the analytic lower bound
//!    (DESIGN.md §11: a network model may only move time, never traffic).

use crate::mutate::{detect, Detection};
use crate::oracle::{golden_execute, OracleReport};
use crate::synth::is_fully_bypass_streaming;
use denovo_waste::{
    ExperimentError, ExperimentSpec, RunOutcome, ScaleProfile, Session, SimConfig, Simulator,
    WorkloadSet, WorkloadSpec,
};
use rayon::prelude::*;
use std::fmt;
use tw_obs::SpanSink;
use tw_types::{NetworkModelKind, ProtocolKind};
use tw_workloads::Workload;

/// The protocols invariant 5 (streaming bypass dominance) compares, in
/// `(baseline, challenger)` order. The `DBypFull ≤ MESI` claim is an
/// *invalidation-protocol* statement — an update-based protocol like Dragon
/// pushes written words to sharers by design and may legitimately move more
/// traffic on a streaming workload, so it stays outside this allowlist while
/// remaining subject to every other invariant (service identity, oracle
/// agreement, replay determinism, accounting, cross-model identity).
pub const BYPASS_DOMINANCE_PROTOCOLS: [ProtocolKind; 2] =
    [ProtocolKind::Mesi, ProtocolKind::DBypFull];

/// One invariant violation found by the runner.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The workload failed structural validation before any simulation.
    Malformed(String),
    /// The golden model rejected the workload as racy.
    Race(String),
    /// A protocol serviced a stream different from the input.
    StreamDiverged {
        /// The offending protocol.
        protocol: ProtocolKind,
    },
    /// A protocol's captured stream disagrees with the golden model.
    OracleMismatch {
        /// The offending protocol.
        protocol: ProtocolKind,
        /// How the divergence was classified.
        detection: String,
    },
    /// Replaying a captured stream did not reproduce the original report.
    ReplayMismatch {
        /// The offending protocol.
        protocol: ProtocolKind,
    },
    /// A report's waste fraction left `[0, 1]` or its traffic was not a
    /// positive finite number.
    BadAccounting {
        /// The offending protocol.
        protocol: ProtocolKind,
        /// The waste fraction observed.
        waste_fraction: f64,
        /// The total traffic observed.
        traffic: f64,
    },
    /// `DBypFull` moved more traffic than MESI on a fully-bypass-annotated
    /// streaming workload.
    BypassRegression {
        /// DBypFull's total flit-hops.
        dbypfull: f64,
        /// MESI's total flit-hops.
        mesi: f64,
    },
    /// Re-running under the other network model changed something a network
    /// model is never allowed to touch.
    CrossModelDivergence {
        /// The offending protocol.
        protocol: ProtocolKind,
        /// Which model-invariant quantity moved.
        field: &'static str,
    },
    /// A timed-model run finished before its analytic lower bound.
    LatencyBelowAnalyticBound {
        /// The offending protocol.
        protocol: ProtocolKind,
        /// The timed model's total cycles.
        flit_cycles: u64,
        /// Analytic total cycles (the lower bound).
        analytic_cycles: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Malformed(m) => write!(f, "malformed workload: {m}"),
            Violation::Race(m) => write!(f, "racy workload: {m}"),
            Violation::StreamDiverged { protocol } => {
                write!(f, "{protocol}: serviced stream diverged from the input")
            }
            Violation::OracleMismatch {
                protocol,
                detection,
            } => write!(f, "{protocol}: captured stream fails the oracle ({detection})"),
            Violation::ReplayMismatch { protocol } => {
                write!(f, "{protocol}: replayed capture is not bit-identical")
            }
            Violation::BadAccounting {
                protocol,
                waste_fraction,
                traffic,
            } => write!(
                f,
                "{protocol}: waste fraction {waste_fraction} / traffic {traffic} out of range"
            ),
            Violation::BypassRegression { dbypfull, mesi } => write!(
                f,
                "DBypFull moved more traffic ({dbypfull:.0}) than MESI ({mesi:.0}) on a fully-bypass streaming workload"
            ),
            Violation::CrossModelDivergence { protocol, field } => write!(
                f,
                "{protocol}: {field} diverged across network models (the model may only move time)"
            ),
            Violation::LatencyBelowAnalyticBound {
                protocol,
                flit_cycles,
                analytic_cycles,
            } => write!(
                f,
                "{protocol}: timed run ({flit_cycles} cycles) undercut the analytic lower bound ({analytic_cycles})"
            ),
        }
    }
}

/// Per-protocol numbers surfaced in the fuzz summary (all deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSummary {
    /// The protocol.
    pub protocol: ProtocolKind,
    /// Total execution cycles.
    pub total_cycles: u64,
    /// Total flit-hops.
    pub flit_hops: f64,
    /// Fraction of traffic classified as waste.
    pub waste_fraction: f64,
}

/// The verdict on one workload.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The golden model's report (op counts + fingerprint).
    pub oracle: OracleReport,
    /// One summary per protocol, in registry order.
    pub summaries: Vec<ProtocolSummary>,
    /// Every invariant violation found (empty on success).
    pub violations: Vec<Violation>,
}

impl DiffOutcome {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps one workload across a protocol set and checks the invariants.
#[derive(Debug, Clone)]
pub struct DifferentialRunner {
    /// System scale simulated (geometry + cache sizes).
    pub scale: ScaleProfile,
    /// Network model the primary sweep (capture, oracle, replay) runs
    /// under; the cross-model invariant always compares against every other
    /// registered model.
    pub network: NetworkModelKind,
    /// Protocols swept, in summary order.
    pub protocols: Vec<ProtocolKind>,
    /// Observer-lane flight recording for the primary sweep. Alt-model
    /// reruns and replays are deliberately unrecorded: they exist to check
    /// invariants, and their spans would duplicate every track. The sweep's
    /// printed digests are byte-identical with recording on or off
    /// (CI-asserted).
    pub recorder: Option<SpanSink>,
}

impl DifferentialRunner {
    /// The full ten-protocol registry at the given scale, analytic network.
    pub fn new(scale: ScaleProfile) -> Self {
        DifferentialRunner {
            scale,
            network: NetworkModelKind::default(),
            protocols: ProtocolKind::ALL.to_vec(),
            recorder: None,
        }
    }

    /// The same runner with the primary sweep under `network`.
    pub fn with_network(mut self, network: NetworkModelKind) -> Self {
        self.network = network;
        self
    }

    /// The same runner with flight recording armed on the primary sweep.
    pub fn with_recorder(mut self, sink: SpanSink) -> Self {
        self.recorder = Some(sink);
        self
    }

    /// Runs every protocol over the workload and returns the verdict.
    pub fn check(&self, wl: &Workload) -> DiffOutcome {
        let empty = |violation: Violation| DiffOutcome {
            oracle: OracleReport {
                loads: 0,
                stores: 0,
                phases: 0,
                fingerprint: 0,
            },
            summaries: Vec::new(),
            violations: vec![violation],
        };
        if let Err(msg) = wl.try_well_formed() {
            return empty(Violation::Malformed(msg));
        }
        let mut system = self.scale.system();
        system.network = self.network;
        if wl.cores() != system.tiles() {
            return empty(Violation::Malformed(format!(
                "workload has {} cores but the {:?} system has {} tiles",
                wl.cores(),
                self.scale,
                system.tiles()
            )));
        }
        let oracle = match golden_execute(wl) {
            Ok(o) => o,
            Err(race) => return empty(Violation::Race(race.to_string())),
        };

        // Every (protocol) cell is independent; fan out on the rayon pool.
        // `map` preserves order, so summaries stay in registry order and the
        // fuzz output is deterministic.
        let cells: Vec<(ProtocolSummary, Vec<Violation>)> = self
            .protocols
            .par_iter()
            .map(|&protocol| {
                let mut cfg = SimConfig::new(protocol).with_system(system.clone());
                if let Some(sink) = self.recorder.as_ref().filter(|s| s.enabled()) {
                    cfg.recorder =
                        Some(sink.with_track(format!("{}/{}", wl.kind.name(), protocol.name())));
                }
                let (report, captured) = Simulator::new(cfg.clone(), wl).run_captured();
                let mut violations = Vec::new();

                if captured.traces != wl.traces {
                    violations.push(Violation::StreamDiverged { protocol });
                } else if let Some(d) = detect(&oracle, &captured) {
                    // Stream equality makes this unreachable today; it is
                    // the independent check that keeps the oracle honest if
                    // capture semantics ever change.
                    violations.push(Violation::OracleMismatch {
                        protocol,
                        detection: match d {
                            Detection::Malformed(m) | Detection::Race(m) => m,
                            Detection::FingerprintDiff { expected, actual } => {
                                format!("fingerprint {actual:#018x} != {expected:#018x}")
                            }
                        },
                    });
                }

                // The replay is a checker, not part of the primary sweep —
                // recording it would emit every phase span twice per track.
                cfg.recorder = None;
                let replayed = Simulator::new(cfg, &captured).run();
                if replayed != report {
                    violations.push(Violation::ReplayMismatch { protocol });
                }

                let waste = report.waste_traffic_fraction();
                let traffic = report.total_flit_hops();
                if !(0.0..=1.0).contains(&waste) || !traffic.is_finite() || traffic <= 0.0 {
                    violations.push(Violation::BadAccounting {
                        protocol,
                        waste_fraction: waste,
                        traffic,
                    });
                }

                // Invariant 6: every other registered network model must
                // move the exact same flits and classify the exact same
                // words; only time may differ, and timed-model time only
                // upward from the analytic bound.
                let mut cycles_by_model = vec![(self.network, report.total_cycles)];
                for other in NetworkModelKind::ALL {
                    if other == self.network {
                        continue;
                    }
                    let mut other_sys = system.clone();
                    other_sys.network = other;
                    let alt =
                        Simulator::new(SimConfig::new(protocol).with_system(other_sys), wl).run();
                    let diverged: [(&'static str, bool); 7] = [
                        ("per-bucket traffic", alt.traffic != report.traffic),
                        (
                            "mesh flit-hops",
                            alt.mesh_flit_hops != report.mesh_flit_hops,
                        ),
                        (
                            "waste fraction",
                            alt.waste_traffic_fraction().to_bits()
                                != report.waste_traffic_fraction().to_bits(),
                        ),
                        ("L1 waste", alt.l1_waste != report.l1_waste),
                        ("L2 waste", alt.l2_waste != report.l2_waste),
                        ("memory waste", alt.mem_waste != report.mem_waste),
                        (
                            "DRAM behavior",
                            alt.dram_accesses != report.dram_accesses
                                || alt.dram_row_hit_rate.to_bits()
                                    != report.dram_row_hit_rate.to_bits(),
                        ),
                    ];
                    for (field, moved) in diverged {
                        if moved {
                            violations.push(Violation::CrossModelDivergence { protocol, field });
                        }
                    }
                    cycles_by_model.push((other, alt.total_cycles));
                }
                let analytic_cycles = cycles_by_model
                    .iter()
                    .find(|(k, _)| *k == NetworkModelKind::Analytic)
                    .map(|&(_, c)| c);
                if let Some(analytic_cycles) = analytic_cycles {
                    for &(kind, flit_cycles) in &cycles_by_model {
                        if kind != NetworkModelKind::Analytic && flit_cycles < analytic_cycles {
                            violations.push(Violation::LatencyBelowAnalyticBound {
                                protocol,
                                flit_cycles,
                                analytic_cycles,
                            });
                        }
                    }
                }

                (
                    ProtocolSummary {
                        protocol,
                        total_cycles: report.total_cycles,
                        flit_hops: traffic,
                        waste_fraction: waste,
                    },
                    violations,
                )
            })
            .collect();

        let mut summaries = Vec::with_capacity(cells.len());
        let mut violations = Vec::new();
        for (s, v) in cells {
            summaries.push(s);
            violations.extend(v);
        }

        if is_fully_bypass_streaming(wl) {
            let hops = |p: ProtocolKind| {
                summaries
                    .iter()
                    .find(|s| s.protocol == p)
                    .map(|s| s.flit_hops)
            };
            let [mesi, dbyp] = BYPASS_DOMINANCE_PROTOCOLS.map(hops);
            if let (Some(mesi), Some(dbyp)) = (mesi, dbyp) {
                if dbyp > mesi {
                    violations.push(Violation::BypassRegression {
                        dbypfull: dbyp,
                        mesi,
                    });
                }
            }
        }

        DiffOutcome {
            oracle,
            summaries,
            violations,
        }
    }

    /// Runs the workload through a [`Session`]-executed plan — synthesized
    /// workloads are first-class plan rows, so every baseline-normalized
    /// figure extractor works on them unchanged.
    ///
    /// # Errors
    ///
    /// Any [`ExperimentError`] from compiling or executing the plan (for
    /// example a core-count mismatch with the scale's system).
    pub fn matrix_outcome(&self, wl: Workload) -> Result<RunOutcome, ExperimentError> {
        let name = wl.kind.name().to_string();
        let mut spec = ExperimentSpec::subset(self.protocols.clone(), Vec::new(), self.scale);
        spec.name = format!("differential-{name}");
        spec.workloads = vec![WorkloadSpec::provided(name.clone())];
        spec.networks = vec![self.network];
        let mut set = WorkloadSet::new();
        set.insert(name, wl);
        RunOutcome::from_plan(Session::new().run(&spec, &set)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};
    use tw_workloads::BenchmarkKind;

    #[test]
    fn clean_workloads_pass_every_invariant() {
        let runner = DifferentialRunner::new(ScaleProfile::Tiny);
        for seed in [0u64, 11] {
            let out = runner.check(&synthesize(seed));
            assert!(
                out.ok(),
                "seed {seed}: {:?}",
                out.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            );
            assert_eq!(out.summaries.len(), 10);
            assert!(out.oracle.mem_ops() > 0);
        }
    }

    #[test]
    fn flit_level_primary_sweep_passes_every_invariant() {
        // The same seeds, primary sweep under the wormhole model: capture,
        // oracle, replay determinism and the cross-model identity must all
        // hold with the roles of the two models swapped.
        let runner =
            DifferentialRunner::new(ScaleProfile::Tiny).with_network(NetworkModelKind::FlitLevel);
        let out = runner.check(&synthesize(7));
        assert!(
            out.ok(),
            "{:?}",
            out.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(out.summaries.len(), 10);
    }

    #[test]
    fn snoop_bus_primary_sweep_passes_every_invariant() {
        // Primary sweep under the snooping bus: the broadcast medium may
        // only serialize time; capture, oracle agreement, replay and the
        // cross-model identity against both point-to-point fabrics must
        // still hold for all ten protocols.
        let runner =
            DifferentialRunner::new(ScaleProfile::Tiny).with_network(NetworkModelKind::SnoopBus);
        let out = runner.check(&synthesize(7));
        assert!(
            out.ok(),
            "{:?}",
            out.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(out.summaries.len(), 10);
    }

    #[test]
    fn dragon_is_oracle_exercised_but_exempt_from_bypass_dominance() {
        // Dragon rides the full differential sweep — service identity,
        // oracle agreement, replay determinism, accounting and cross-model
        // identity all apply — but sits outside the invariant-5 allowlist:
        // an update protocol pushes written words to sharers by design, so
        // the streaming `DBypFull ≤ MESI` dominance claim does not bind it.
        assert!(!BYPASS_DOMINANCE_PROTOCOLS.contains(&ProtocolKind::Dragon));
        let runner = DifferentialRunner::new(ScaleProfile::Tiny);
        assert!(runner.protocols.contains(&ProtocolKind::Dragon));
        let wl = SynthConfig::streaming(3).build();
        assert!(is_fully_bypass_streaming(&wl), "invariant 5 must be live");
        let out = runner.check(&wl);
        assert!(
            out.ok(),
            "{:?}",
            out.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        let dragon = out
            .summaries
            .iter()
            .find(|s| s.protocol == ProtocolKind::Dragon)
            .expect("Dragon cell must be swept");
        assert!(dragon.flit_hops > 0.0);
    }

    #[test]
    fn streaming_workloads_satisfy_bypass_dominance() {
        let runner = DifferentialRunner::new(ScaleProfile::Tiny);
        let wl = SynthConfig::streaming(2).build();
        let out = runner.check(&wl);
        assert!(
            out.ok(),
            "{:?}",
            out.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn core_count_mismatch_is_reported_not_panicked() {
        let mut cfg = SynthConfig::tiny(1);
        cfg.cores = 4;
        let runner = DifferentialRunner::new(ScaleProfile::Tiny);
        let out = runner.check(&cfg.build());
        assert!(matches!(
            out.violations.as_slice(),
            [Violation::Malformed(_)]
        ));
    }

    #[test]
    fn synthesized_workloads_flow_through_the_matrix() {
        let runner = DifferentialRunner {
            scale: ScaleProfile::Tiny,
            network: NetworkModelKind::default(),
            protocols: vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
            recorder: None,
        };
        let out = runner.matrix_outcome(synthesize(4)).unwrap();
        assert_eq!(out.benchmarks, vec![BenchmarkKind::Synthesized]);
        let fig = out.fig_5_1a().unwrap();
        let mesi = fig.value("synthesized/MESI", "Total").unwrap();
        assert!((mesi - 1.0).abs() < 1e-9, "MESI bar normalizes to 1.0");
        assert!(fig.value("synthesized/DBypFull", "Total").unwrap() > 0.0);
    }
}
