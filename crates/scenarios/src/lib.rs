//! `tw-scenarios`: randomized workload synthesis and the cross-protocol
//! differential oracle.
//!
//! The paper's traffic/waste comparisons are only meaningful because every
//! protocol services the identical reference stream and agrees on functional
//! memory behavior. The six hand-built generators in `tw-workloads` exercise
//! that claim on six points; this crate multiplies the scenario space to an
//! unbounded seeded family and makes it *trustworthy*:
//!
//! * [`synth`] — a deterministic random synthesizer composing sharing-
//!   pattern primitives (private, read-shared, migratory, producer-consumer,
//!   false-sharing, streaming/bypass, barrier-phased pipelines) into
//!   well-formed, data-race-free [`Workload`]s with region/Flex/bypass
//!   annotations;
//! * [`oracle`] — a golden functional memory model (sequential consistency
//!   per barrier phase) that assigns every store a unique position-derived
//!   value and fingerprints every load observation plus the final image;
//! * [`differ`] — the differential runner sweeping the full protocol
//!   registry and checking the metamorphic invariants (identical service,
//!   oracle agreement, bit-identical replay, sane waste accounting, bypass
//!   dominance on streaming workloads for the invalidation allowlist, and
//!   cross-network-model traffic identity over every registered fabric);
//! * [`mutate`] — known-bad mutation operators proving the oracle actually
//!   catches injected coherence violations.
//!
//! # Example
//!
//! ```
//! use tw_scenarios::{synthesize, DifferentialRunner};
//! use denovo_waste::ScaleProfile;
//!
//! let workload = synthesize(42);
//! workload.try_well_formed().unwrap();
//! let outcome = DifferentialRunner::new(ScaleProfile::Tiny).check(&workload);
//! assert!(outcome.ok(), "{:?}", outcome.violations);
//! ```
//!
//! [`Workload`]: tw_workloads::Workload

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differ;
pub mod mutate;
pub mod oracle;
pub mod synth;

pub use differ::{
    DiffOutcome, DifferentialRunner, ProtocolSummary, Violation, BYPASS_DOMINANCE_PROTOCOLS,
};
pub use mutate::{detect, Detection, Mutation};
pub use oracle::{golden_execute, OracleReport, RaceViolation};
pub use synth::{is_fully_bypass_streaming, synthesize, SharingPattern, SynthConfig};
