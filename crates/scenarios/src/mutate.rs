//! Known-bad mutation operators and the detection check.
//!
//! An oracle is only trustworthy if it demonstrably *fails* on broken
//! inputs. Each [`Mutation`] injects one class of coherence violation into a
//! well-formed workload — the kinds of corruption a buggy protocol, codec or
//! capture path would introduce — and [`detect`] is the exact check the
//! differential runner applies. The test suite (and `experiments fuzz
//! --self-test`) asserts every class is caught on every seed tried.

use crate::oracle::{golden_execute, OracleReport};
use tw_types::{Addr, MemKind, TraceOp, WORD_BYTES};
use tw_workloads::Workload;

/// One class of injected coherence violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Redirects the last store of a core to the neighboring word of the
    /// same region. `TraceOp` carries no data values — store values are
    /// derived from stream position — so corrupting the *target* of the
    /// final write to a word is the trace-level image of a flipped store
    /// value: the final memory image changes at two words.
    FlippedStore,
    /// Removes one core's last barrier record, desynchronizing its phase
    /// structure from every other core's.
    DroppedBarrier,
    /// Swaps the first adjacent pair of distinct memory records of one core,
    /// reordering its serviced stream.
    ReorderedStream,
    /// Demotes the last store of a core to a load of the same word, silently
    /// losing the write.
    LostStore,
    /// Moves a store whose word is touched again later to the end of its
    /// core's trace — the trace-level image of a dropped update broadcast
    /// in an update protocol (Dragon): the write's visibility is deferred
    /// past every consumer, so sharers keep observing the stale pre-update
    /// value. Store values are position-derived, so the deferral perturbs
    /// an observation, the final image, or the phase's race discipline.
    DroppedUpdate,
}

impl Mutation {
    /// Every mutation class.
    pub const ALL: [Mutation; 5] = [
        Mutation::FlippedStore,
        Mutation::DroppedBarrier,
        Mutation::ReorderedStream,
        Mutation::LostStore,
        Mutation::DroppedUpdate,
    ];

    /// Short name used in self-test output.
    pub const fn name(self) -> &'static str {
        match self {
            Mutation::FlippedStore => "flipped-store",
            Mutation::DroppedBarrier => "dropped-barrier",
            Mutation::ReorderedStream => "reordered-stream",
            Mutation::LostStore => "lost-store",
            Mutation::DroppedUpdate => "dropped-update",
        }
    }

    /// Applies the mutation to a copy of the workload. Returns `None` when
    /// the workload has no site for this class (e.g. no store anywhere).
    pub fn apply(self, wl: &Workload) -> Option<Workload> {
        let mut out = wl.clone();
        match self {
            Mutation::FlippedStore => {
                let (core, idx, addr, region) = last_store(wl)?;
                let flipped = neighbor_word(wl, addr, region)?;
                out.traces[core][idx] = TraceOp::store(flipped, region);
            }
            Mutation::DroppedBarrier => {
                let core = wl
                    .traces
                    .iter()
                    .position(|t| t.iter().any(|op| matches!(op, TraceOp::Barrier { .. })))?;
                let idx = out.traces[core]
                    .iter()
                    .rposition(|op| matches!(op, TraceOp::Barrier { .. }))?;
                out.traces[core].remove(idx);
            }
            Mutation::ReorderedStream => {
                let (core, idx) = adjacent_distinct_mem_pair(wl)?;
                out.traces[core].swap(idx, idx + 1);
            }
            Mutation::LostStore => {
                let (core, idx, addr, region) = last_store(wl)?;
                out.traces[core][idx] = TraceOp::load(addr, region);
            }
            Mutation::DroppedUpdate => {
                let (core, idx) = dropped_update_site(wl)?;
                let op = out.traces[core].remove(idx);
                out.traces[core].push(op);
            }
        }
        Some(out)
    }
}

/// The site of a core's final store, scanning cores in order: the last store
/// of a stream is never overwritten later by the same core, and (in a
/// race-free workload) never by another core in the same phase, so its value
/// survives into the final memory image — mutating it is always observable.
fn last_store(wl: &Workload) -> Option<(usize, usize, Addr, tw_types::RegionId)> {
    for (core, t) in wl.traces.iter().enumerate() {
        if let Some(idx) = t.iter().rposition(|op| {
            matches!(
                op,
                TraceOp::Mem {
                    kind: MemKind::Store,
                    ..
                }
            )
        }) {
            if let TraceOp::Mem { addr, region, .. } = t[idx] {
                return Some((core, idx, addr, region));
            }
        }
    }
    None
}

/// A word adjacent to `addr` inside the same region, so the mutated access
/// still passes the structural region check and reaches the oracle.
fn neighbor_word(wl: &Workload, addr: Addr, region: tw_types::RegionId) -> Option<Addr> {
    let info = wl.regions.get(region)?;
    let fwd = addr.offset(WORD_BYTES);
    if info.contains(fwd) {
        return Some(fwd);
    }
    let back = Addr::new(addr.byte().checked_sub(WORD_BYTES)?);
    info.contains(back).then_some(back)
}

/// The site for [`Mutation::DroppedUpdate`]: a store whose word is touched
/// again afterwards — by the same core later in its stream, or by another
/// core in a strictly later phase (the cross-barrier consumer a dropped
/// update broadcast would starve). When no such store exists, falls back to
/// any store that is not its core's final record: deferring it to the end of
/// the stream still shifts its program-order ordinal, which re-derives its
/// value and perturbs the final-image fold.
fn dropped_update_site(wl: &Workload) -> Option<(usize, usize)> {
    for (core, t) in wl.traces.iter().enumerate() {
        let mut phase = 0usize;
        for (idx, op) in t.iter().enumerate() {
            if matches!(op, TraceOp::Barrier { .. }) {
                phase += 1;
                continue;
            }
            let TraceOp::Mem {
                kind: MemKind::Store,
                addr,
                ..
            } = op
            else {
                continue;
            };
            if idx + 1 >= t.len() {
                continue;
            }
            let same_core_later = t[idx + 1..]
                .iter()
                .any(|o| matches!(o, TraceOp::Mem { addr: a, .. } if a == addr));
            let later_phase_elsewhere = wl
                .traces
                .iter()
                .enumerate()
                .filter(|&(c, _)| c != core)
                .any(|(_, ot)| {
                    let mut p = 0usize;
                    ot.iter().any(|o| {
                        if matches!(o, TraceOp::Barrier { .. }) {
                            p += 1;
                            return false;
                        }
                        p > phase && matches!(o, TraceOp::Mem { addr: a, .. } if a == addr)
                    })
                });
            if same_core_later || later_phase_elsewhere {
                return Some((core, idx));
            }
        }
    }
    for (core, t) in wl.traces.iter().enumerate() {
        if let Some(idx) = t.iter().position(|op| {
            matches!(
                op,
                TraceOp::Mem {
                    kind: MemKind::Store,
                    ..
                }
            )
        }) {
            if idx + 1 < t.len() {
                return Some((core, idx));
            }
        }
    }
    None
}

/// First adjacent pair of memory records of one core that differ in address
/// or kind (swapping two identical records would be a no-op).
fn adjacent_distinct_mem_pair(wl: &Workload) -> Option<(usize, usize)> {
    for (core, t) in wl.traces.iter().enumerate() {
        for idx in 0..t.len().saturating_sub(1) {
            let (a, b) = (&t[idx], &t[idx + 1]);
            if a.is_mem() && b.is_mem() && a != b {
                return Some((core, idx));
            }
        }
    }
    None
}

/// How the differential oracle caught a mutated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Detection {
    /// Structural validation ([`Workload::try_well_formed`]) rejected it.
    Malformed(String),
    /// The golden model found a data race.
    Race(String),
    /// The golden model executed but its fingerprint diverged from the
    /// reference report.
    FingerprintDiff {
        /// Fingerprint of the unmutated reference.
        expected: u64,
        /// Fingerprint of the mutated workload.
        actual: u64,
    },
}

impl Detection {
    /// Short label used in self-test output.
    pub const fn label(&self) -> &'static str {
        match self {
            Detection::Malformed(_) => "malformed",
            Detection::Race(_) => "race",
            Detection::FingerprintDiff { .. } => "fingerprint-diff",
        }
    }
}

/// Runs the oracle pipeline on a (possibly mutated) workload and reports how
/// it diverges from the reference report, or `None` if it is
/// indistinguishable — the check the differential runner applies to every
/// captured stream, reused here to prove mutations are caught.
pub fn detect(reference: &OracleReport, mutated: &Workload) -> Option<Detection> {
    if let Err(msg) = mutated.try_well_formed() {
        return Some(Detection::Malformed(msg));
    }
    match golden_execute(mutated) {
        Err(race) => Some(Detection::Race(race.to_string())),
        Ok(report) => {
            if report.fingerprint != reference.fingerprint {
                Some(Detection::FingerprintDiff {
                    expected: reference.fingerprint,
                    actual: report.fingerprint,
                })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;

    #[test]
    fn every_mutation_class_is_detected_across_seeds() {
        for seed in 0..16 {
            let wl = synthesize(seed);
            let reference = golden_execute(&wl).unwrap();
            for m in Mutation::ALL {
                let mutated = m
                    .apply(&wl)
                    .unwrap_or_else(|| panic!("seed {seed}: no site for {}", m.name()));
                let detection = detect(&reference, &mutated);
                assert!(
                    detection.is_some(),
                    "seed {seed}: injected {} went undetected",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn dropped_barrier_is_flagged_structurally() {
        let wl = synthesize(3);
        let reference = golden_execute(&wl).unwrap();
        let mutated = Mutation::DroppedBarrier.apply(&wl).unwrap();
        match detect(&reference, &mutated) {
            Some(Detection::Malformed(msg)) => {
                assert!(msg.contains("barrier sequence"), "{msg}")
            }
            other => panic!("expected structural rejection, got {other:?}"),
        }
    }

    #[test]
    fn flipped_store_changes_the_fingerprint_or_races() {
        let wl = synthesize(5);
        let reference = golden_execute(&wl).unwrap();
        let mutated = Mutation::FlippedStore.apply(&wl).unwrap();
        let d = detect(&reference, &mutated).expect("flip must be detected");
        assert!(
            matches!(d, Detection::FingerprintDiff { .. } | Detection::Race(_)),
            "unexpected detection {d:?}"
        );
    }

    #[test]
    fn dropped_update_broadcast_is_caught_by_the_fingerprint_oracle() {
        // The trace-level image of a Dragon update broadcast that never
        // reached its sharers: the write becomes visible only after every
        // consumer already read the word. Structure (barriers, regions) is
        // untouched, so detection must come from the functional layer.
        for seed in [1u64, 5, 12] {
            let wl = synthesize(seed);
            let reference = golden_execute(&wl).unwrap();
            let mutated = Mutation::DroppedUpdate.apply(&wl).unwrap();
            assert!(mutated.try_well_formed().is_ok(), "seed {seed}");
            let d = detect(&reference, &mutated)
                .unwrap_or_else(|| panic!("seed {seed}: dropped update went undetected"));
            assert!(
                matches!(d, Detection::FingerprintDiff { .. } | Detection::Race(_)),
                "seed {seed}: unexpected detection {d:?}"
            );
        }
    }

    #[test]
    fn unmutated_workload_is_indistinguishable_from_itself() {
        let wl = synthesize(9);
        let reference = golden_execute(&wl).unwrap();
        assert_eq!(detect(&reference, &wl), None);
    }
}
