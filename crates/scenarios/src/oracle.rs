//! The golden functional memory model.
//!
//! The paper's methodology only compares protocols that *service the
//! identical reference stream and agree on functional memory behavior*; the
//! simulator itself never models data values, so this module supplies the
//! protocol-independent ground truth the differential runner diffs against.
//!
//! The model is **sequential consistency per barrier phase over data-race-
//! free programs** — exactly the contract DeNovo assumes of its (DPJ-style)
//! software:
//!
//! * a core's operations execute in program order;
//! * within one barrier phase, a word that is stored may only be touched by
//!   the storing core (any other access is a data race and rejected);
//! * across a barrier, every core observes every earlier phase's last write.
//!
//! Under that discipline the final memory image and every load's observed
//! value are independent of the cross-core interleaving, so the model can
//! execute cores one at a time per phase and still be exact. Store *values*
//! are not carried by [`TraceOp`]; the model assigns each store the value
//! `mix(core, program-order ordinal)` — unique per store — so any
//! corruption of the stream (a flipped store, a reordering, a dropped op)
//! perturbs the image or an observation and therefore the fingerprint.

use std::collections::BTreeMap;
use std::fmt;
use tw_types::{Addr, MemKind, TraceOp};
use tw_workloads::Workload;

/// A data race: within one barrier phase a stored word was touched by more
/// than the storing core, making the functional outcome interleaving-
/// dependent — such a workload can never be an oracle reference.
///
/// Core identifiers are carried exactly (no bitmask truncation), so the
/// check is sound for any core count a trace file may declare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceViolation {
    /// Barrier-phase index (0-based) the conflicting accesses fall in.
    pub phase: usize,
    /// The contested word address.
    pub addr: Addr,
    /// The core that stored the word in the phase.
    pub writer: usize,
    /// A different core that also touched it in the same phase.
    pub other: usize,
    /// Whether the conflicting access was itself a store (write-write race)
    /// rather than a load (read-write race).
    pub other_wrote: bool,
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race in phase {} at {}: core {} wrote it while core {} {} it",
            self.phase,
            self.addr,
            self.writer,
            self.other,
            if self.other_wrote {
                "also wrote"
            } else {
                "read"
            }
        )
    }
}

/// The oracle's verdict on one workload: exact op counts plus a fingerprint
/// of the functional behavior (every load's observed value and the final
/// memory image). Two workloads with equal fingerprints are functionally
/// indistinguishable under SC-per-phase; a differing fingerprint proves a
/// behavioral divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleReport {
    /// Load records across all cores.
    pub loads: u64,
    /// Store records across all cores.
    pub stores: u64,
    /// Barrier-phase count (barriers per core).
    pub phases: u64,
    /// Order-sensitive hash of (core, ordinal, op, observed value) for every
    /// memory record plus the final memory image.
    pub fingerprint: u64,
}

impl OracleReport {
    /// Memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

/// splitmix64's finalizer: the cheap, deterministic mixer every hash in the
/// oracle is built from.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fold of one record into a running fingerprint — the
/// primitive every deterministic digest in the fuzz pipeline is built from
/// (the oracle fingerprint here, the per-protocol summary digest in
/// `experiments fuzz`).
pub fn fold(h: u64, parts: [u64; 4]) -> u64 {
    let mut acc = h;
    for p in parts {
        acc = mix64(acc ^ p).wrapping_add(0x9E37_79B9_7F4A_7C15);
    }
    acc
}

/// The unique value assigned to the `ordinal`-th record of `core` when it is
/// a store. Value 0 is reserved for unwritten ("background") memory.
fn store_value(core: usize, ordinal: usize) -> u64 {
    mix64(((core as u64) << 32) ^ ordinal as u64 ^ 0x57ee_d0a7_a5ca_de00) | 1
}

/// Executes the golden model over a workload.
///
/// Returns the oracle report, or the first [`RaceViolation`] if the workload
/// is not data-race-free per phase. The caller is expected to have run
/// [`Workload::try_well_formed`] first (this function tolerates but does not
/// diagnose structural problems like barrier mismatches; it splits phases by
/// each core's own barrier records).
pub fn golden_execute(wl: &Workload) -> Result<OracleReport, RaceViolation> {
    // Split each core's stream into phase slices. The trailing slice after
    // the last barrier is the (implicit) final phase.
    let per_core_phases: Vec<Vec<&[TraceOp]>> = wl
        .traces
        .iter()
        .map(|t| {
            let mut phases = Vec::new();
            let mut start = 0usize;
            for (i, op) in t.iter().enumerate() {
                if matches!(op, TraceOp::Barrier { .. }) {
                    phases.push(&t[start..i]);
                    start = i + 1;
                }
            }
            phases.push(&t[start..]);
            phases
        })
        .collect();
    let phase_count = per_core_phases.iter().map(Vec::len).max().unwrap_or(0);

    let mut mem: BTreeMap<Addr, u64> = BTreeMap::new();
    // Per-core program-order ordinals persist across phases so every store
    // value stays globally unique.
    let mut ordinals: Vec<usize> = vec![0; wl.traces.len()];
    let (mut loads, mut stores) = (0u64, 0u64);
    let mut h: u64 = 0x0c0a_11e5_ced0_0d1e;

    for phase in 0..phase_count {
        // Pass 1 — race detection. Per word we only need the (single
        // allowed) writer, one conflicting writer, and up to two *distinct*
        // reader cores: with two distinct readers recorded, at most one can
        // equal the writer, so a foreign reader can never go unnoticed.
        // Core ids are stored exactly — no bitmask width to alias past.
        #[derive(Clone, Copy, Default)]
        struct AccessRec {
            writer: Option<usize>,
            second_writer: Option<usize>,
            reader_a: Option<usize>,
            reader_b: Option<usize>,
        }
        let mut access: BTreeMap<Addr, AccessRec> = BTreeMap::new();
        for (core, phases) in per_core_phases.iter().enumerate() {
            let Some(slice) = phases.get(phase) else {
                continue;
            };
            for op in *slice {
                if let TraceOp::Mem { kind, addr, .. } = op {
                    let rec = access.entry(*addr).or_default();
                    match kind {
                        MemKind::Store => match rec.writer {
                            None => rec.writer = Some(core),
                            Some(w) if w != core && rec.second_writer.is_none() => {
                                rec.second_writer = Some(core)
                            }
                            _ => {}
                        },
                        MemKind::Load => match (rec.reader_a, rec.reader_b) {
                            (None, _) => rec.reader_a = Some(core),
                            (Some(a), None) if a != core => rec.reader_b = Some(core),
                            _ => {}
                        },
                    }
                }
            }
        }
        for (addr, rec) in &access {
            let Some(writer) = rec.writer else {
                continue;
            };
            let conflict = rec.second_writer.map(|c| (c, true)).or_else(|| {
                [rec.reader_a, rec.reader_b]
                    .into_iter()
                    .flatten()
                    .find(|&r| r != writer)
                    .map(|c| (c, false))
            });
            if let Some((other, other_wrote)) = conflict {
                return Err(RaceViolation {
                    phase,
                    addr: *addr,
                    writer,
                    other,
                    other_wrote,
                });
            }
        }

        // Pass 2 — execution. DRF guarantees core-sequential execution
        // within the phase is equivalent to any interleaving.
        for (core, phases) in per_core_phases.iter().enumerate() {
            let Some(slice) = phases.get(phase) else {
                continue;
            };
            for op in *slice {
                let ordinal = ordinals[core];
                ordinals[core] += 1;
                if let TraceOp::Mem { kind, addr, .. } = op {
                    match kind {
                        MemKind::Store => {
                            stores += 1;
                            let v = store_value(core, ordinal);
                            mem.insert(*addr, v);
                            h = fold(h, [core as u64, ordinal as u64, addr.byte() << 1, v]);
                        }
                        MemKind::Load => {
                            loads += 1;
                            let v = mem.get(addr).copied().unwrap_or(0);
                            h = fold(h, [core as u64, ordinal as u64, (addr.byte() << 1) | 1, v]);
                        }
                    }
                }
            }
        }
    }

    // Fold the final image so post-measurement state differences (a dead
    // store redirected to another word, a dropped trailing store) are still
    // observable even when no load ever witnessed them.
    for (addr, v) in &mem {
        h = fold(h, [IMAGE_TAG, addr.byte(), *v, 0]);
    }

    Ok(OracleReport {
        loads,
        stores,
        phases: wl.barriers() as u64,
        fingerprint: h,
    })
}

/// Tag separating the final-image fold from the per-op folds.
const IMAGE_TAG: u64 = 0x1a9e_0f1a_a11a_9e00;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use tw_types::{RegionId, RegionInfo, RegionTable};
    use tw_workloads::BenchmarkKind;

    fn two_core_workload(traces: Vec<Vec<TraceOp>>) -> Workload {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 1 << 16));
        Workload {
            kind: BenchmarkKind::Synthesized,
            input: "hand-built".into(),
            regions,
            traces,
        }
    }

    #[test]
    fn race_free_workload_executes() {
        let wl = two_core_workload(vec![
            vec![
                TraceOp::store(Addr::new(0), RegionId(1)),
                TraceOp::barrier(0),
                TraceOp::load(Addr::new(64), RegionId(1)),
            ],
            vec![
                TraceOp::store(Addr::new(64), RegionId(1)),
                TraceOp::barrier(0),
                TraceOp::load(Addr::new(0), RegionId(1)),
            ],
        ]);
        let r = golden_execute(&wl).unwrap();
        assert_eq!(r.loads, 2);
        assert_eq!(r.stores, 2);
        assert_eq!(r.mem_ops(), 4);
        assert_eq!(r.phases, 1);
    }

    #[test]
    fn same_phase_cross_core_read_of_written_word_is_a_race() {
        let wl = two_core_workload(vec![
            vec![TraceOp::store(Addr::new(0), RegionId(1))],
            vec![TraceOp::load(Addr::new(0), RegionId(1))],
        ]);
        let race = golden_execute(&wl).unwrap_err();
        assert_eq!(race.phase, 0);
        assert_eq!(race.addr, Addr::new(0));
        assert_eq!(race.writer, 0);
        assert_eq!(race.other, 1);
        assert!(!race.other_wrote);
        assert!(race.to_string().contains("data race in phase 0"));
    }

    #[test]
    fn write_write_conflict_is_a_race() {
        let wl = two_core_workload(vec![
            vec![TraceOp::store(Addr::new(4), RegionId(1))],
            vec![TraceOp::store(Addr::new(4), RegionId(1))],
        ]);
        assert!(golden_execute(&wl).is_err());
    }

    #[test]
    fn cross_phase_communication_is_not_a_race() {
        // Producer in phase 0, consumer in phase 1 — the pattern every
        // DeNovo workload is built from.
        let wl = two_core_workload(vec![
            vec![
                TraceOp::store(Addr::new(0), RegionId(1)),
                TraceOp::barrier(0),
            ],
            vec![
                TraceOp::barrier(0),
                TraceOp::load(Addr::new(0), RegionId(1)),
            ],
        ]);
        assert!(golden_execute(&wl).is_ok());
    }

    #[test]
    fn races_between_cores_32_apart_are_not_aliased_away() {
        // External trace files can declare any core count; core ids must be
        // tracked exactly (a 32-bit mask would alias core 32 onto core 0 and
        // miss both of these).
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        let mut traces: Vec<Vec<TraceOp>> = vec![Vec::new(); 33];
        traces[0] = vec![TraceOp::store(Addr::new(0), RegionId(1))];
        traces[32] = vec![TraceOp::store(Addr::new(0), RegionId(1))];
        let ww = Workload {
            kind: BenchmarkKind::Synthesized,
            input: "33-core write-write".into(),
            regions: regions.clone(),
            traces: traces.clone(),
        };
        let race = golden_execute(&ww).unwrap_err();
        assert_eq!((race.writer, race.other, race.other_wrote), (0, 32, true));

        traces[32] = vec![TraceOp::load(Addr::new(0), RegionId(1))];
        let rw = Workload {
            kind: BenchmarkKind::Synthesized,
            input: "33-core read-write".into(),
            regions,
            traces,
        };
        let race = golden_execute(&rw).unwrap_err();
        assert_eq!((race.writer, race.other, race.other_wrote), (0, 32, false));
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        let a = golden_execute(&synthesize(7)).unwrap();
        let b = golden_execute(&synthesize(7)).unwrap();
        assert_eq!(a, b);
        let c = golden_execute(&synthesize(8)).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn synthesized_workloads_are_race_free() {
        for seed in 0..48 {
            let wl = synthesize(seed);
            golden_execute(&wl).unwrap_or_else(|race| panic!("seed {seed}: {race}"));
        }
    }

    #[test]
    fn loads_observe_program_order_values() {
        // A store then load by the same core in the same phase must observe
        // the store; redirecting the store must change the fingerprint.
        let base = two_core_workload(vec![
            vec![
                TraceOp::store(Addr::new(0), RegionId(1)),
                TraceOp::load(Addr::new(0), RegionId(1)),
            ],
            vec![],
        ]);
        let flipped = two_core_workload(vec![
            vec![
                TraceOp::store(Addr::new(4), RegionId(1)),
                TraceOp::load(Addr::new(0), RegionId(1)),
            ],
            vec![],
        ]);
        let fb = golden_execute(&base).unwrap();
        let ff = golden_execute(&flipped).unwrap();
        assert_ne!(fb.fingerprint, ff.fingerprint);
    }
}
