//! The seedable random workload synthesizer.
//!
//! A synthesized workload is a composition of *sharing-pattern primitives*,
//! each owning one disjoint software region with its own Flex/bypass
//! annotations. The primitives are the sharing idioms the paper's six
//! applications are built from (private working sets, read-shared tables,
//! migratory objects, producer→consumer hand-offs, word-granular false
//! sharing, streaming/bypass scans, and barrier-phased pipelines); composing
//! random instances of them yields an unbounded seeded family of well-formed
//! reference streams that exercise the same mechanisms as the hand-built
//! generators.
//!
//! Every synthesized workload is **data-race-free per barrier phase by
//! construction**: within one phase, any word that is written is touched by
//! exactly one core. That discipline is what DeNovo assumes of its software
//! (DPJ-style determinism) and what makes the golden functional model in
//! [`crate::oracle`] well defined.

use rand::{rngs::StdRng, Rng, SeedableRng};
use tw_types::{Addr, BypassKind, CommRegion, RegionId, RegionInfo, RegionTable, WORD_BYTES};
use tw_workloads::{BenchmarkKind, TraceBuilder, Workload};

/// One sharing-pattern primitive of the synthesis grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPattern {
    /// Each core reads and overwrites a disjoint private chunk every phase
    /// (the paper's "read-then-overwritten" bypass pattern when annotated).
    Private,
    /// A table written by nobody during parallel phases; all cores read
    /// random words of it (Barnes-Hut body positions, FFT roots of unity).
    ReadShared,
    /// One small object that migrates: in phase `p` exactly one core
    /// read-modify-writes it, a different core in the next phase.
    Migratory,
    /// Even phases: core `c` produces chunk `c`. Odd phases: core `c`
    /// consumes chunk `c-1` (fluidanimate ghost cells, kD-tree hand-offs).
    ProducerConsumer,
    /// Cores store to disjoint *words* that share cache lines — the
    /// word-granularity scenario MESI pays for and DeNovo does not.
    FalseSharing,
    /// A region larger than the L1 read exactly once per phase and never
    /// written — the streaming L2-bypass pattern (§3.1, access pattern 2).
    Streaming,
    /// A barrier-phased pipeline: the chunk written in phase `p` by its
    /// stage owner is read in phase `p+1` by the next stage's core.
    Pipeline,
}

impl SharingPattern {
    /// Every primitive of the grammar.
    pub const ALL: [SharingPattern; 7] = [
        SharingPattern::Private,
        SharingPattern::ReadShared,
        SharingPattern::Migratory,
        SharingPattern::ProducerConsumer,
        SharingPattern::FalseSharing,
        SharingPattern::Streaming,
        SharingPattern::Pipeline,
    ];

    /// Region-name stem used in the synthesized region table.
    pub const fn name(self) -> &'static str {
        match self {
            SharingPattern::Private => "private",
            SharingPattern::ReadShared => "read-shared",
            SharingPattern::Migratory => "migratory",
            SharingPattern::ProducerConsumer => "producer-consumer",
            SharingPattern::FalseSharing => "false-sharing",
            SharingPattern::Streaming => "streaming",
            SharingPattern::Pipeline => "pipeline",
        }
    }
}

/// Configuration of one synthesis run. Identical configurations produce
/// byte-identical workloads (the generator draws from a single `StdRng`
/// stream in a fixed phase→core→pattern order).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; the only thing `experiments fuzz` varies.
    pub seed: u64,
    /// Cores to generate for (must match the simulated system's tile count).
    pub cores: usize,
    /// Barrier-phase count (each phase ends in one global barrier).
    pub phases: usize,
    /// Pattern-instance count; the instances are drawn uniformly from
    /// [`SharingPattern::ALL`] unless [`SynthConfig::only`] restricts them.
    pub pattern_instances: usize,
    /// When set, every instance uses this primitive (used by the streaming
    /// preset the bypass invariant checks).
    pub only: Option<SharingPattern>,
    /// Bounds on the random per-(core, phase, instance) op count.
    pub ops_per_phase: (usize, usize),
    /// Bounds on a streaming instance's per-core stripe, in words. The
    /// streaming *preset* sizes stripes past the tiny 16 KB (4096-word) L1
    /// so every phase's scan capacity-misses and genuinely exercises the
    /// L2-bypass path; streaming instances drawn into general mixes stay
    /// small (they add scan coverage there, not the dominance invariant).
    pub streaming_stripe_words: (u64, u64),
}

impl SynthConfig {
    /// The general-purpose preset: a few instances of random primitives on
    /// the tiny 16-tile geometry.
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            seed,
            cores: 16,
            phases: 0, // drawn from the seed in build()
            pattern_instances: 0,
            only: None,
            ops_per_phase: (8, 32),
            streaming_stripe_words: (512, 1024),
        }
    }

    /// A workload whose every accessed data region is a bypass-annotated
    /// streaming region — the scenario for which L2 response/request bypass
    /// exists, used by the `DBypFull ≤ MESI` metamorphic invariant.
    pub fn streaming(seed: u64) -> Self {
        SynthConfig {
            seed,
            cores: 16,
            // One instance over two phases: the second scan re-misses the
            // whole (larger-than-L1) stripe, which is the entire point;
            // more phases or instances would only repeat it at 9-protocol
            // simulation cost.
            phases: 2,
            pattern_instances: 1,
            only: Some(SharingPattern::Streaming),
            ops_per_phase: (64, 128),
            streaming_stripe_words: (4352, 5120),
        }
    }

    /// Synthesizes the workload. Deterministic in the configuration; the
    /// result always passes [`Workload::try_well_formed`] and the golden
    /// oracle's race check.
    pub fn build(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ SEED_DOMAIN);
        let cores = self.cores.max(1);
        let phases = if self.phases > 0 {
            self.phases
        } else {
            rng.gen_range(2usize..=5)
        };
        let instances = if self.pattern_instances > 0 {
            self.pattern_instances
        } else {
            rng.gen_range(2usize..=4)
        };

        // Draw the pattern instances and lay their regions out 16 MB apart.
        let mut regions = RegionTable::new();
        let mut pats: Vec<PatternInstance> = Vec::with_capacity(instances);
        for i in 0..instances {
            let kind = match self.only {
                Some(k) => k,
                None => SharingPattern::ALL[rng.gen_range(0usize..SharingPattern::ALL.len())],
            };
            let inst = PatternInstance::draw(kind, i, cores, self.streaming_stripe_words, &mut rng);
            regions.insert(inst.region_info());
            pats.push(inst);
        }
        // Guarantee at least one writing pattern in the general preset, so
        // every synthesized workload exercises stores (and gives the
        // mutation suite a flip site). Read-only compositions still occur in
        // the streaming preset, which pins `only`.
        let writes = |k: SharingPattern| {
            !matches!(k, SharingPattern::ReadShared | SharingPattern::Streaming)
        };
        if self.only.is_none() && !pats.iter().any(|p| writes(p.kind)) {
            let inst = PatternInstance::draw(
                SharingPattern::Private,
                pats.len(),
                cores,
                self.streaming_stripe_words,
                &mut rng,
            );
            regions.insert(inst.region_info());
            pats.push(inst);
        }

        // Emit the per-core streams in a fixed phase → core → pattern order.
        let mut builders: Vec<TraceBuilder> = (0..cores).map(|_| TraceBuilder::new()).collect();
        for phase in 0..phases {
            for (core, b) in builders.iter_mut().enumerate() {
                for pat in &pats {
                    pat.emit(b, core, phase, cores, self.ops_per_phase, &mut rng);
                }
                b.barrier(phase as u32);
            }
        }

        let pattern_names: Vec<&str> = pats.iter().map(|p| p.kind.name()).collect();
        Workload {
            kind: BenchmarkKind::Synthesized,
            input: format!(
                "seed={} phases={phases} patterns=[{}]",
                self.seed,
                pattern_names.join(",")
            ),
            regions,
            traces: builders.into_iter().map(TraceBuilder::into_ops).collect(),
        }
    }
}

/// Domain-separation constant mixed into the seed so the synthesizer's
/// stream differs from any other consumer of `StdRng::seed_from_u64`.
const SEED_DOMAIN: u64 = 0x5eed_5ce4_a210_97c3;

/// Synthesizes the default (general-preset) workload for a seed: the entry
/// point `experiments fuzz` and the property tests use.
pub fn synthesize(seed: u64) -> Workload {
    SynthConfig::tiny(seed).build()
}

/// Whether every region that a workload's streams actually access is a
/// bypass-annotated streaming region — the predicate guarding the
/// `DBypFull ≤ MESI` traffic invariant.
pub fn is_fully_bypass_streaming(wl: &Workload) -> bool {
    let mut any = false;
    for op in wl.traces.iter().flatten() {
        if let Some(id) = op.region() {
            any = true;
            match wl.regions.get(id) {
                Some(r) if r.bypass == BypassKind::StreamingOncePerPhase => {}
                _ => return false,
            }
        }
    }
    any
}

/// One drawn instance of a primitive: its region geometry plus the
/// kind-specific parameters fixed at draw time.
#[derive(Debug, Clone)]
struct PatternInstance {
    kind: SharingPattern,
    region: RegionId,
    base: Addr,
    /// Region size in words.
    words: u64,
    /// Per-core chunk in words (patterns that stripe by core).
    chunk_words: u64,
    /// Annotations drawn for this instance.
    bypass: BypassKind,
    comm: Option<CommRegion>,
    written_in_parallel: bool,
}

impl PatternInstance {
    fn draw(
        kind: SharingPattern,
        index: usize,
        cores: usize,
        stripe_words: (u64, u64),
        rng: &mut StdRng,
    ) -> Self {
        let region = RegionId(index as u16 + 1);
        let base = Addr::new(0x1000_0000 + index as u64 * 0x0100_0000);
        let cores = cores as u64;
        let (words, chunk_words, bypass, comm, written) = match kind {
            SharingPattern::Private => {
                let chunk = rng.gen_range(16u64..=64);
                // Private chunks are read then overwritten in place each
                // phase — the first L2-bypass access pattern, annotated on a
                // coin flip so both sides are exercised.
                let byp = if rng.gen_bool(0.5) {
                    BypassKind::ReadThenOverwritten
                } else {
                    BypassKind::None
                };
                (chunk * cores, chunk, byp, None, true)
            }
            SharingPattern::ReadShared => {
                let words = rng.gen_range(64u64..=512);
                (words, 0, BypassKind::None, None, false)
            }
            SharingPattern::Migratory => {
                let obj = rng.gen_range(4u64..=16);
                (obj, obj, BypassKind::None, None, true)
            }
            SharingPattern::ProducerConsumer => {
                // Chunks are multiples of 3 words so the region size divides
                // evenly into the 96-byte Flex objects drawn below.
                let chunk = 3 * rng.gen_range(6u64..=16);
                // Half the instances carry a Flex communication region: the
                // consumer only ever needs a subset of each object's words.
                let comm = if rng.gen_bool(0.5) {
                    let object_bytes = 96;
                    let object_words = object_bytes / WORD_BYTES;
                    let useful = rng.gen_range(2u64..object_words);
                    let mut offsets: Vec<u64> = (0..object_words).map(|w| w * WORD_BYTES).collect();
                    // Keep a deterministic subset: every k-th word.
                    let stride = (object_words / useful).max(1) as usize;
                    offsets = offsets.into_iter().step_by(stride).collect();
                    Some(CommRegion {
                        object_bytes,
                        useful_offsets: offsets,
                    })
                } else {
                    None
                };
                (chunk * cores, chunk, BypassKind::None, comm, true)
            }
            SharingPattern::FalseSharing => {
                // One word per core per line; a handful of lines.
                let lines = rng.gen_range(4u64..=16);
                (lines * cores, 0, BypassKind::None, None, true)
            }
            SharingPattern::Streaming => {
                // Stripe bounds come from the preset (see
                // `SynthConfig::streaming_stripe_words` for the sizing
                // rationale against the tiny L1).
                let chunk = rng.gen_range(stripe_words.0..=stripe_words.1.max(stripe_words.0));
                (
                    chunk * cores,
                    chunk,
                    BypassKind::StreamingOncePerPhase,
                    None,
                    false,
                )
            }
            SharingPattern::Pipeline => {
                let chunk = rng.gen_range(16u64..=48);
                // One chunk per pipeline stage; stages cycle with the phase.
                let stages = rng.gen_range(2u64..=4).min(cores);
                (chunk * stages, chunk, BypassKind::None, None, true)
            }
        };
        PatternInstance {
            kind,
            region,
            base,
            words,
            chunk_words,
            bypass,
            comm,
            written_in_parallel: written,
        }
    }

    fn region_info(&self) -> RegionInfo {
        let mut info = RegionInfo::plain(
            self.region,
            format!("{} {}", self.kind.name(), self.region.0),
            self.base,
            self.words * WORD_BYTES,
        );
        info.bypass = self.bypass;
        info.comm = self.comm.clone();
        info.written_in_parallel_phases = self.written_in_parallel;
        info
    }

    fn word(&self, idx: u64) -> Addr {
        debug_assert!(idx < self.words);
        self.base.offset(idx * WORD_BYTES)
    }

    /// Emits this instance's ops for `(core, phase)`. The DRF discipline is
    /// local to each arm: a word written in a phase is touched by one core.
    fn emit(
        &self,
        t: &mut TraceBuilder,
        core: usize,
        phase: usize,
        cores: usize,
        ops_bounds: (usize, usize),
        rng: &mut StdRng,
    ) {
        let (lo, hi) = ops_bounds;
        let ops = rng.gen_range(lo..=hi.max(lo));
        let core_u = core as u64;
        let cores_u = cores as u64;
        let phase_u = phase as u64;
        match self.kind {
            SharingPattern::Private => {
                let chunk_base = core_u * self.chunk_words;
                for _ in 0..ops {
                    let w = chunk_base + rng.gen_range(0u64..self.chunk_words);
                    t.load(self.word(w), self.region);
                    if rng.gen_bool(0.7) {
                        t.store(self.word(w), self.region);
                    }
                    maybe_compute(t, rng);
                }
            }
            SharingPattern::ReadShared => {
                for _ in 0..ops {
                    let w = rng.gen_range(0u64..self.words);
                    t.load(self.word(w), self.region);
                    maybe_compute(t, rng);
                }
            }
            SharingPattern::Migratory => {
                // Exactly one owner per phase; everyone else skips (but the
                // RNG stream stays aligned because `ops` was already drawn).
                if core_u == phase_u % cores_u {
                    for w in 0..self.words {
                        t.load(self.word(w), self.region);
                    }
                    t.compute(4);
                    for w in 0..self.words {
                        t.store(self.word(w), self.region);
                    }
                }
            }
            SharingPattern::ProducerConsumer => {
                if phase.is_multiple_of(2) {
                    // Produce: core c fills chunk c.
                    let chunk_base = core_u * self.chunk_words;
                    for i in 0..self.chunk_words.min(ops as u64) {
                        t.store(self.word(chunk_base + i), self.region);
                    }
                } else {
                    // Consume: core c drains chunk c-1 (exactly one reader
                    // per chunk, no writers anywhere in odd phases).
                    let producer = (core_u + cores_u - 1) % cores_u;
                    let chunk_base = producer * self.chunk_words;
                    for i in 0..self.chunk_words.min(ops as u64) {
                        t.load(self.word(chunk_base + i), self.region);
                    }
                }
                maybe_compute(t, rng);
            }
            SharingPattern::FalseSharing => {
                // Word k of line l belongs to core k: stores from different
                // cores land in the same lines but never the same words.
                let lines = self.words / cores_u;
                for _ in 0..ops {
                    let line = rng.gen_range(0u64..lines);
                    let w = line * cores_u + core_u;
                    t.store(self.word(w), self.region);
                    if rng.gen_bool(0.3) {
                        t.load(self.word(w), self.region);
                    }
                }
            }
            SharingPattern::Streaming => {
                // Read the core's stripe once, sequentially, every phase.
                let chunk_base = core_u * self.chunk_words;
                for i in 0..self.chunk_words {
                    t.load(self.word(chunk_base + i), self.region);
                }
                t.compute(2);
            }
            SharingPattern::Pipeline => {
                let stages = self.words / self.chunk_words;
                // Stage owner of phase p writes chunk (p mod stages); the
                // next core reads the previous phase's chunk. Distinct
                // chunks, one core each — race-free within the phase.
                let write_stage = phase_u % stages;
                let writer = (phase_u * 3 + 1) % cores_u;
                if core_u == writer {
                    let base = write_stage * self.chunk_words;
                    for i in 0..self.chunk_words {
                        t.store(self.word(base + i), self.region);
                    }
                }
                if phase_u > 0 {
                    let read_stage = (phase_u - 1) % stages;
                    let prev_writer = ((phase_u - 1) * 3 + 1) % cores_u;
                    let reader = (prev_writer + 1) % cores_u;
                    if core_u == reader && read_stage != write_stage {
                        let base = read_stage * self.chunk_words;
                        for i in 0..self.chunk_words {
                            t.load(self.word(base + i), self.region);
                        }
                    }
                }
            }
        }
    }
}

/// Sprinkles a small compute record on a coin flip, keeping synthesized
/// timing structure non-trivial without bloating the trace.
fn maybe_compute(t: &mut TraceBuilder, rng: &mut StdRng) {
    if rng.gen_bool(0.25) {
        t.compute(rng.gen_range(1u32..=6));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_in_the_seed() {
        for seed in [0, 1, 42, 0xdead_beef] {
            let a = synthesize(seed);
            let b = synthesize(seed);
            assert_eq!(a.traces, b.traces, "seed {seed} is not reproducible");
            assert_eq!(a.input, b.input);
            assert_eq!(a.regions.len(), b.regions.len());
        }
        assert_ne!(
            synthesize(1).traces,
            synthesize(2).traces,
            "different seeds should differ"
        );
    }

    #[test]
    fn synthesized_workloads_are_well_formed() {
        for seed in 0..32 {
            let wl = synthesize(seed);
            assert_eq!(wl.kind, BenchmarkKind::Synthesized);
            assert_eq!(wl.cores(), 16);
            assert!(wl.barriers() >= 2, "seed {seed}: too few phases");
            assert!(wl.total_mem_ops() > 0, "seed {seed}: empty workload");
            wl.try_well_formed()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn streaming_preset_is_fully_bypass_annotated() {
        for seed in 0..8 {
            let wl = SynthConfig::streaming(seed).build();
            wl.try_well_formed().unwrap();
            assert!(
                is_fully_bypass_streaming(&wl),
                "seed {seed}: streaming preset must only touch bypass regions"
            );
        }
    }

    #[test]
    fn grammar_covers_every_primitive_across_seeds() {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for seed in 0..64 {
            let wl = synthesize(seed);
            for r in wl.regions.iter() {
                seen.insert(
                    SharingPattern::ALL
                        .iter()
                        .find(|p| r.name.starts_with(p.name()))
                        .map(|p| p.name())
                        .unwrap_or_else(|| panic!("unknown region name {}", r.name)),
                );
            }
        }
        for p in SharingPattern::ALL {
            assert!(
                seen.contains(p.name()),
                "{} never drawn in 64 seeds",
                p.name()
            );
        }
    }
}
