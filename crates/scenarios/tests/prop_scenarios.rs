//! Property tests for the synthesizer, the trace bridge and the oracle.
//!
//! The headline property is the full persistence round trip: any synthesized
//! workload survives `to_trace -> (binary|text) -> from_trace` structurally
//! intact, still well-formed, and functionally indistinguishable under the
//! golden model. The mutation properties prove the differential oracle is
//! not a rubber stamp: every known-bad mutation class is detected on every
//! sampled seed.

use denovo_waste::ScaleProfile;
use proptest::prelude::*;
use tw_scenarios::{
    detect, golden_execute, synthesize, Detection, DifferentialRunner, Mutation, SharingPattern,
    SynthConfig,
};
use tw_trace::TraceDocument;
use tw_types::{NetworkModelKind, ProtocolKind};
use tw_workloads::{BenchmarkKind, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// synthesize(seed) -> to_trace -> from_trace -> try_well_formed, plus
    /// kind/fingerprint preservation, through the in-memory document.
    #[test]
    fn synthesized_workloads_round_trip_through_the_trace_bridge(seed in 0u64..1024) {
        let wl = synthesize(seed);
        prop_assert!(wl.try_well_formed().is_ok());
        let reference = golden_execute(&wl).unwrap();

        let doc = wl.to_trace();
        prop_assert_eq!(doc.benchmark.as_str(), "synthesized");
        let back = Workload::from_trace(doc).unwrap();
        prop_assert!(back.try_well_formed().is_ok());
        prop_assert_eq!(back.kind, BenchmarkKind::Synthesized);
        prop_assert_eq!(&back.traces, &wl.traces);
        prop_assert_eq!(back.regions.len(), wl.regions.len());
        prop_assert_eq!(golden_execute(&back).unwrap(), reference);
    }

    /// The same round trip through the serialized binary codec (what
    /// `experiments trace record` writes and CI replays).
    #[test]
    fn synthesized_workloads_round_trip_through_the_binary_codec(seed in 0u64..1024) {
        let wl = synthesize(seed);
        let bytes = wl.to_trace().to_binary_bytes().unwrap();
        let back = Workload::from_trace(TraceDocument::from_bytes(&bytes).unwrap()).unwrap();
        prop_assert_eq!(back.kind, BenchmarkKind::Synthesized);
        prop_assert_eq!(&back.traces, &wl.traces);
        prop_assert_eq!(
            golden_execute(&back).unwrap(),
            golden_execute(&wl).unwrap()
        );
    }

    /// The streaming preset round-trips its bypass annotations (which the
    /// `DBypFull ≤ MESI` invariant depends on after replay).
    #[test]
    fn streaming_annotations_survive_the_round_trip(seed in 0u64..256) {
        let wl = SynthConfig::streaming(seed).build();
        prop_assert!(tw_scenarios::is_fully_bypass_streaming(&wl));
        let bytes = wl.to_trace().to_binary_bytes().unwrap();
        let back = Workload::from_trace(TraceDocument::from_bytes(&bytes).unwrap()).unwrap();
        prop_assert!(tw_scenarios::is_fully_bypass_streaming(&back));
    }

    /// Every injected-bug class is detected on every sampled seed: the
    /// differential oracle demonstrably catches flipped stores, dropped
    /// barriers, reordered streams, lost stores and dropped update
    /// broadcasts.
    #[test]
    fn every_mutation_class_is_detected(seed in 0u64..512) {
        let wl = synthesize(seed);
        let reference = golden_execute(&wl).unwrap();
        for m in Mutation::ALL {
            let mutated = m.apply(&wl)
                .unwrap_or_else(|| panic!("seed {seed}: no site for {}", m.name()));
            let detection = detect(&reference, &mutated);
            prop_assert!(
                detection.is_some(),
                "seed {}: injected {} went undetected", seed, m.name()
            );
        }
    }

    /// A dropped barrier is specifically a *structural* rejection (the
    /// workload never reaches simulation), while a flipped store is a
    /// *functional* one — the two detection layers are both live.
    #[test]
    fn detection_layers_split_as_designed(seed in 0u64..256) {
        let wl = synthesize(seed);
        let reference = golden_execute(&wl).unwrap();
        let dropped = Mutation::DroppedBarrier.apply(&wl).unwrap();
        prop_assert!(matches!(
            detect(&reference, &dropped),
            Some(Detection::Malformed(_))
        ));
        let flipped = Mutation::FlippedStore.apply(&wl).unwrap();
        prop_assert!(matches!(
            detect(&reference, &flipped),
            Some(Detection::FingerprintDiff { .. } | Detection::Race(_))
        ));
    }

    /// Dragon's write-update datapath keeps every sharer's per-word view
    /// coherent with golden memory over arbitrary DRF interleavings: for
    /// every sharing-pattern primitive and random seed, the Dragon-serviced
    /// stream is bit-identical to the input, functionally indistinguishable
    /// from the golden fingerprint, bit-identically replayable, and moves
    /// the same traffic under every network model (the full differential
    /// invariant set restricted to the Dragon cell).
    #[test]
    fn dragon_sharer_views_stay_coherent_with_golden_memory(
        seed in 0u64..512,
        pattern_idx in 0usize..SharingPattern::ALL.len(),
    ) {
        let pattern = SharingPattern::ALL[pattern_idx];
        let mut cfg = SynthConfig::tiny(seed);
        cfg.only = Some(pattern);
        let wl = cfg.build();
        let runner = DifferentialRunner {
            scale: ScaleProfile::Tiny,
            network: NetworkModelKind::default(),
            protocols: vec![ProtocolKind::Dragon],
            recorder: None,
        };
        let out = runner.check(&wl);
        prop_assert!(
            out.ok(),
            "seed {} pattern {:?}: {:?}",
            seed,
            pattern,
            out.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        prop_assert!(out.summaries[0].flit_hops > 0.0);
    }
}
