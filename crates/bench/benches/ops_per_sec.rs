//! End-to-end engine throughput in memory operations per second.
//!
//! Each benchmark runs one full *scaled* simulation cell (the same workload
//! size the `experiments all` matrix uses) and reports ops/sec via the
//! group's `Throughput::Elements` annotation — the `thrpt` column is the
//! number every optimization to the engine hot path is judged by (see
//! PERFORMANCE.md).
//!
//! The cells are chosen to cover the regimes that dominate matrix wall time:
//! Radix and KdTree under MESI are the two slowest cells (directory +
//! whole-line profiling pressure), Radix under DBypFull exercises the
//! word-granularity DeNovo path, LU under MESI is a small-footprint cell
//! that catches regressions in raw per-op dispatch cost, and Radix under
//! Dragon tracks the write-update design point (same workload as the two
//! invalidation Radix cells, so the three protocol families stay directly
//! comparable in the trajectory).
//!
//! CI runs `cargo bench -p tw-bench --bench ops_per_sec`, saves the output
//! next to `BENCH_results.json`, and fails if any cell regresses more than
//! 20% against `crates/bench/benches/ops_per_sec_baseline.json` (see
//! `tools/compare_throughput.py`). Refresh the baseline from the bench
//! output when an intentional engine change moves the numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use denovo_waste::{SimConfig, Simulator};
use std::hint::black_box;
use tw_types::ProtocolKind;
use tw_workloads::{build_scaled, BenchmarkKind};

const CELLS: [(BenchmarkKind, ProtocolKind); 5] = [
    (BenchmarkKind::Radix, ProtocolKind::Mesi),
    (BenchmarkKind::KdTree, ProtocolKind::Mesi),
    (BenchmarkKind::Radix, ProtocolKind::DBypFull),
    (BenchmarkKind::Lu, ProtocolKind::Mesi),
    (BenchmarkKind::Radix, ProtocolKind::Dragon),
];

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops_per_sec");
    group.sample_size(3);
    for (bench, proto) in CELLS {
        let workload = build_scaled(bench, 16).expect("scaled workload builds");
        let ops = workload.total_mem_ops() as u64;
        group.throughput(Throughput::Elements(ops));
        group.bench_function(&format!("{bench:?}_{proto:?}"), |b| {
            b.iter(|| black_box(Simulator::new(SimConfig::new(proto), &workload).run()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
