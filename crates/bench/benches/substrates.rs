//! Microbenchmarks of the substrate crates: cache arrays, Bloom filters,
//! mesh routing, DRAM timing, the waste profiler, Flex planning, and the
//! workload generators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tw_bloom::{BloomBank, BloomConfig};
use tw_dram::MemoryController;
use tw_mem::{CacheArray, CacheGeometry};
use tw_noc::{Mesh, PacketSize, WormholeMesh};
use tw_profiler::{CacheLevel, CacheWasteProfiler};
use tw_protocols::flex_fetch_plan;
use tw_types::{Addr, DramConfig, LineAddr, MessageClass, NocConfig, SystemConfig, TileId};
use tw_workloads::{build_tiny, BenchmarkKind};

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array_insert_lookup", |b| {
        let geom = CacheGeometry::new(32 * 1024, 8, 64);
        b.iter(|| {
            let mut cache: CacheArray<u32> = CacheArray::new(geom);
            for i in 0..2048u64 {
                cache.insert(LineAddr::from_aligned(i * 64), i as u32);
                black_box(cache.contains(LineAddr::from_aligned((i / 2) * 64)));
            }
            cache.len()
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("bloom_bank_insert_query", |b| {
        b.iter(|| {
            let mut bank = BloomBank::counting(BloomConfig::default());
            for i in 0..4096u64 {
                bank.insert(LineAddr::from_aligned(i * 64));
            }
            let mut hits = 0;
            for i in 0..4096u64 {
                if bank.may_contain(LineAddr::from_aligned(i * 128)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_send_full_line", |b| {
        let noc = NocConfig::default();
        b.iter(|| {
            let mut mesh = Mesh::new(noc.clone());
            let size = PacketSize::with_data_words(&noc, 16);
            for i in 0..1024u64 {
                let src = TileId((i % 16) as usize);
                let dst = TileId(((i * 7) % 16) as usize);
                black_box(mesh.send(src, dst, size, i));
            }
            mesh.total_flit_hops()
        })
    });
}

fn bench_flit_mesh(c: &mut Criterion) {
    // The flit-level counterpart of `mesh_send_full_line`: same send
    // pattern through the wormhole simulator, so the trajectory artifacts
    // track the cost ratio of the two network models.
    c.bench_function("wormhole_mesh_send_full_line", |b| {
        let noc = NocConfig::default();
        b.iter(|| {
            let mut mesh = WormholeMesh::new(noc.clone());
            let size = PacketSize::with_data_words(&noc, 16);
            for i in 0..1024u64 {
                let src = TileId((i % 16) as usize);
                let dst = TileId(((i * 7) % 16) as usize);
                black_box(mesh.send(src, dst, size, i));
            }
            mesh.total_stall_cycles()
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_fr_fcfs_access", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(DramConfig::default());
            let mut t = 0;
            for i in 0..2048u64 {
                t = mc.access(
                    LineAddr::from_aligned(i * 64 * 7 % (1 << 24)),
                    i % 3 == 0,
                    t,
                );
            }
            black_box(mc.stats().row_hits)
        })
    });
}

fn bench_profiler(c: &mut Criterion) {
    c.bench_function("l1_waste_profiler_churn", |b| {
        b.iter(|| {
            let mut p = CacheWasteProfiler::new(CacheLevel::L1);
            for i in 0..4096u64 {
                let a = Addr::new(i * 4);
                p.arrive(a, i % 5 == 0, 1.5, MessageClass::Load);
                match i % 4 {
                    0 => p.loaded(a),
                    1 => p.stored(a),
                    2 => p.evicted(a),
                    _ => {}
                }
            }
            black_box(p.finish().total_words())
        })
    });
}

fn bench_flex_planning(c: &mut Criterion) {
    let workload = build_tiny(BenchmarkKind::Barnes, 16).unwrap();
    let sys = SystemConfig::default();
    c.bench_function("flex_fetch_plan_barnes_cells", |b| {
        b.iter(|| {
            let mut words = 0;
            for i in 0..512u64 {
                let addr = Addr::new(0x2000_0000 + i * 200);
                let plan = flex_fetch_plan(&workload.regions, addr, sys.cache.line_bytes);
                words += plan.total_words();
            }
            black_box(words)
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for bench in BenchmarkKind::ALL {
        group.bench_function(bench.name(), |b| {
            b.iter(|| black_box(build_tiny(bench, 16).unwrap().total_mem_ops()))
        });
    }
    group.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_array, bench_bloom, bench_mesh, bench_flit_mesh, bench_dram, bench_profiler,
              bench_flex_planning, bench_workload_generation
}
criterion_main!(substrates);
