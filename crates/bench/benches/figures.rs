//! One Criterion bench per table and figure of the paper's evaluation
//! section. Each bench measures regenerating that figure's data from a
//! reduced (tiny-scale) experiment matrix — the full-scale numbers recorded
//! in `EXPERIMENTS.md` come from the `experiments` binary instead, because a
//! full matrix takes minutes, not microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use denovo_waste::{RunOutcome, ScaleProfile, SimConfig, Simulator};
use std::hint::black_box;
use tw_bench::run_bench_matrix;
use tw_types::ProtocolKind;
use tw_workloads::{build_tiny, BenchmarkKind};

fn matrix() -> RunOutcome {
    run_bench_matrix().expect("the bench matrix must run")
}

fn bench_tables(c: &mut Criterion) {
    let outcome = matrix();
    c.bench_function("table4_1_config", |b| {
        b.iter(|| black_box(outcome.table_4_1(ScaleProfile::Tiny)))
    });
    c.bench_function("table4_2_inputs", |b| {
        b.iter(|| black_box(outcome.table_4_2()))
    });
}

fn bench_traffic_figures(c: &mut Criterion) {
    let outcome = matrix();
    c.bench_function("fig5_1a_overall_traffic", |b| {
        b.iter(|| black_box(outcome.fig_5_1a()))
    });
    c.bench_function("fig5_1b_load_traffic", |b| {
        b.iter(|| black_box(outcome.fig_5_1b()))
    });
    c.bench_function("fig5_1c_store_traffic", |b| {
        b.iter(|| black_box(outcome.fig_5_1c()))
    });
    c.bench_function("fig5_1d_writeback_traffic", |b| {
        b.iter(|| black_box(outcome.fig_5_1d()))
    });
}

fn bench_time_and_waste_figures(c: &mut Criterion) {
    let outcome = matrix();
    c.bench_function("fig5_2_execution_time", |b| {
        b.iter(|| black_box(outcome.fig_5_2()))
    });
    c.bench_function("fig5_3a_l1_waste", |b| {
        b.iter(|| black_box(outcome.fig_5_3a()))
    });
    c.bench_function("fig5_3b_l2_waste", |b| {
        b.iter(|| black_box(outcome.fig_5_3b()))
    });
    c.bench_function("fig5_3c_memory_waste", |b| {
        b.iter(|| black_box(outcome.fig_5_3c()))
    });
    c.bench_function("headline_summary", |b| {
        b.iter(|| black_box(outcome.headline()))
    });
}

fn bench_single_runs(c: &mut Criterion) {
    // End-to-end simulation throughput for the two protocols at the ends of
    // the optimization ladder (the ablation the figures are built from).
    let mut group = c.benchmark_group("simulate_tiny_fft");
    group.sample_size(10);
    for protocol in [ProtocolKind::Mesi, ProtocolKind::DBypFull] {
        let workload = build_tiny(BenchmarkKind::Fft, 16).unwrap();
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                let sim = Simulator::new(SimConfig::new(protocol), &workload);
                black_box(sim.run().total_cycles)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_tables, bench_traffic_figures, bench_time_and_waste_figures, bench_single_runs
}
criterion_main!(figures);
