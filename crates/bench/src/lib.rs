//! Benchmark harness for the traffic-waste study.
//!
//! The `experiments` binary regenerates every table and figure of the paper's
//! evaluation section (run `cargo run -p tw-bench --release --bin experiments
//! -- all`, or `-- all --json` for a machine-readable `BENCH_results.json`)
//! and runs arbitrary declarative plans (`experiments plan run spec.json`);
//! the Criterion benches under `benches/` cover the same figures at a reduced
//! scale plus microbenchmarks of every substrate crate. The experiment index
//! and recorded full-scale numbers live in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;

use denovo_waste::{
    CacheStats, ExperimentError, ExperimentMatrix, FigureTable, PlanOutcome, RunOutcome,
    ScaleProfile, SimConfig, Simulator,
};
use std::fmt::Write as _;
use std::time::Duration;
use tw_profiler::WasteCategory;
use tw_scenarios::{SharingPattern, SynthConfig};
use tw_types::ProtocolKind;
use tw_workloads::BenchmarkKind;

/// Runs the full nine-protocol × six-benchmark matrix at the given scale.
///
/// # Errors
///
/// Any [`ExperimentError`] from the underlying plan run.
pub fn run_full_matrix(scale: ScaleProfile) -> Result<RunOutcome, ExperimentError> {
    ExperimentMatrix::full(scale).run()
}

/// Runs a reduced matrix used by the per-figure Criterion benches: the five
/// protocols the headline summary compares, on two benchmarks, at the tiny
/// scale.
///
/// # Errors
///
/// Any [`ExperimentError`] from the underlying plan run.
pub fn run_bench_matrix() -> Result<RunOutcome, ExperimentError> {
    ExperimentMatrix::subset(
        vec![
            ProtocolKind::Mesi,
            ProtocolKind::MMemL1,
            ProtocolKind::DeNovo,
            ProtocolKind::DFlexL1,
            ProtocolKind::DBypFull,
        ],
        vec![BenchmarkKind::Fft, BenchmarkKind::Barnes],
        ScaleProfile::Tiny,
    )
    .run()
}

/// Seed for the update-vs-invalidate synthesized primitives. Fixed so the
/// committed `BENCH_results.json` numbers and `EXPERIMENTS.md` walkthrough
/// stay reproducible.
const UPDATE_FIGURE_SEED: u64 = 12;

/// Builds the update-vs-invalidate comparison (the Dragon figure family):
/// each of the seven synthesized sharing-pattern primitives run once under
/// MESI (invalidation) and once under Dragon (write-update) on the scale's
/// system, analytic network. Per primitive the row reports total flit-hops
/// under each protocol, the Dragon/MESI traffic ratio (`< 1` means the
/// update protocol moved less), and Dragon's update-waste share — the
/// fraction of words moved into L1s that were update-pushed to a sharer
/// that never read them before they died.
pub fn update_vs_invalidate_figure(scale: ScaleProfile) -> FigureTable {
    let system = scale.system();
    let mut fig = FigureTable::new(
        format!("Update vs invalidate: Dragon against MESI on sharing primitives ({scale:?})"),
        [
            "Primitive",
            "MESI hops",
            "Dragon hops",
            "Dragon/MESI",
            "Update waste",
        ]
        .map(String::from)
        .to_vec(),
    );
    for pattern in SharingPattern::ALL {
        let wl = SynthConfig {
            seed: UPDATE_FIGURE_SEED,
            cores: system.tiles(),
            phases: 4,
            pattern_instances: 2,
            only: Some(pattern),
            ops_per_phase: (16, 32),
            streaming_stripe_words: (512, 1024),
        }
        .build();
        let run = |p: ProtocolKind| {
            Simulator::new(SimConfig::new(p).with_system(system.clone()), &wl).run()
        };
        let mesi = run(ProtocolKind::Mesi);
        let dragon = run(ProtocolKind::Dragon);
        let l1_words = dragon.l1_waste.total_words();
        let update_share = if l1_words == 0 {
            0.0
        } else {
            dragon.l1_waste.words(WasteCategory::Update) as f64 / l1_words as f64
        };
        fig.push_row(
            pattern.name(),
            vec![
                mesi.total_flit_hops(),
                dragon.total_flit_hops(),
                dragon.traffic_relative_to(&mesi),
                update_share,
            ],
        );
    }
    fig
}

/// Geometric mean of the figure's Dragon/MESI traffic ratios — the single
/// scalar the benchmark-trajectory artifact tracks for the update design
/// point.
fn update_ratio_geomean(fig: &FigureTable) -> f64 {
    let ratios: Vec<f64> = fig
        .rows()
        .iter()
        .filter_map(|(_, v)| v.get(2))
        .copied()
        .collect();
    if ratios.is_empty() || ratios.iter().any(|r| *r <= 0.0) {
        return f64::NAN;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as JSON (JSON has no NaN/inf; those become null).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn figure_json(fig: &FigureTable, out: &mut String) {
    let _ = write!(
        out,
        "{{\"title\":\"{}\",\"columns\":[",
        json_escape(fig.title())
    );
    for (i, c) in fig.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(c));
    }
    out.push_str("],\"rows\":[");
    for (i, (label, values)) in fig.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"label\":\"{}\",\"values\":[", json_escape(label));
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_num(*v));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Serializes one experiment run — headline averages, the
/// update-vs-invalidate comparison and every figure of the evaluation
/// section — as the `BENCH_results.json` document consumed by the
/// performance-trajectory tooling. `update` is the
/// [`update_vs_invalidate_figure`] for the same scale, passed in so callers
/// that also print it compute it once.
///
/// The document deliberately carries **no wall clock**: two runs of the
/// same matrix emit byte-identical bytes, so CI diffs the whole file. Wall
/// time travels in the [`bench_timing_json`] sidecar instead.
///
/// # Errors
///
/// Any [`ExperimentError`] from figure extraction (for example a missing
/// baseline protocol).
pub fn results_json(
    outcome: &RunOutcome,
    scale: ScaleProfile,
    update: &FigureTable,
) -> Result<String, ExperimentError> {
    let h = outcome.headline()?;
    let figures = outcome.all_figures(scale)?;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"denovo-waste/bench-results/v1\",\n");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = write!(out, "  \"protocols\": [");
    for (i, p) in outcome.protocols.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{p}\"");
    }
    out.push_str("],\n");
    let _ = write!(out, "  \"benchmarks\": [");
    for (i, b) in outcome.benchmarks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{b}\"");
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"cells\": {},", outcome.cells());
    out.push_str("  \"headline\": {\n");
    let headline_fields = [
        ("dbypfull_traffic_vs_mesi", h.dbypfull_traffic_vs_mesi),
        ("dbypfull_traffic_vs_mmeml1", h.dbypfull_traffic_vs_mmeml1),
        ("dbypfull_traffic_vs_dflexl1", h.dbypfull_traffic_vs_dflexl1),
        ("denovo_traffic_vs_mesi", h.denovo_traffic_vs_mesi),
        ("dbypfull_time_vs_mesi", h.dbypfull_time_vs_mesi),
        ("mmeml1_time_vs_mesi", h.mmeml1_time_vs_mesi),
        ("dbypfull_waste_fraction", h.dbypfull_waste_fraction),
        ("mesi_overhead_fraction", h.mesi_overhead_fraction),
    ];
    for (i, (name, value)) in headline_fields.iter().enumerate() {
        let comma = if i + 1 < headline_fields.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    \"{name}\": {}{comma}", json_num(*value));
    }
    out.push_str("  },\n");
    out.push_str("  \"update_vs_invalidate\": {\n");
    let _ = writeln!(
        out,
        "    \"dragon_traffic_vs_mesi_geomean\": {},",
        json_num(update_ratio_geomean(update))
    );
    out.push_str("    \"figure\": ");
    figure_json(update, &mut out);
    out.push_str("\n  },\n");
    out.push_str("  \"figures\": [\n");
    for (i, fig) in figures.iter().enumerate() {
        out.push_str("    ");
        figure_json(fig, &mut out);
        if i + 1 < figures.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// Serializes the wall-clock sidecar written next to `BENCH_results.json`.
/// Everything non-deterministic about a matrix run lives under this
/// document's `timing` object, keeping the results document byte-stable.
pub fn bench_timing_json(matrix_wall: Duration) -> String {
    format!(
        "{{\n  \"schema\": \"denovo-waste/bench-timing/v1\",\n  \"timing\": {{\n    \"matrix_wall_ms\": {}\n  }}\n}}\n",
        json_num(matrix_wall.as_secs_f64() * 1e3),
    )
}

/// Serializes a plan outcome's figures as a deterministic JSON document —
/// the `plan run --json` artifact. Deliberately contains **no wall time and
/// no cache statistics**, so a cold and a warm run of the same plan emit
/// byte-identical documents (CI diffs exactly that).
///
/// # Errors
///
/// Any [`ExperimentError`] from figure extraction.
pub fn plan_figures_json(outcome: &PlanOutcome) -> Result<String, ExperimentError> {
    let figures = outcome.all_figures()?;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"denovo-waste/plan-results/v1\",\n");
    let _ = writeln!(out, "  \"plan\": \"{}\",", json_escape(&outcome.name));
    let _ = write!(out, "  \"protocols\": [");
    for (i, p) in outcome.protocols.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{p}\"");
    }
    out.push_str("],\n");
    let _ = write!(out, "  \"rows\": [");
    for (i, (_, label)) in outcome.rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", json_escape(label));
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"cells\": {},", outcome.cells());
    out.push_str("  \"figures\": [\n");
    for (i, fig) in figures.iter().enumerate() {
        out.push_str("    ");
        figure_json(fig, &mut out);
        if i + 1 < figures.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

/// Serializes a plan run's cache statistics — the `plan run --stats`
/// artifact CI uploads next to `BENCH_results.json`.
pub fn cache_stats_json(plan: &str, stats: &CacheStats) -> String {
    format!(
        "{{\n  \"schema\": \"denovo-waste/cache-stats/v1\",\n  \"plan\": \"{}\",\n  \"cells\": {},\n  \"hits\": {},\n  \"misses\": {},\n  \"coalesced\": {},\n  \"hit_rate\": {}\n}}\n",
        json_escape(plan),
        stats.total(),
        stats.hits,
        stats.misses,
        stats.coalesced,
        json_num(stats.hit_rate()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_numbers_are_finite_or_null() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn results_json_is_structurally_sound() {
        let outcome = ExperimentMatrix::subset(
            vec![
                ProtocolKind::Mesi,
                ProtocolKind::MMemL1,
                ProtocolKind::DeNovo,
                ProtocolKind::DFlexL1,
                ProtocolKind::DBypFull,
            ],
            vec![BenchmarkKind::Fft, BenchmarkKind::Radix],
            ScaleProfile::Tiny,
        )
        .run()
        .unwrap();
        let update = update_vs_invalidate_figure(ScaleProfile::Tiny);
        let json = results_json(&outcome, ScaleProfile::Tiny, &update).unwrap();
        // Structural sanity without a JSON parser: balanced delimiters and
        // the expected top-level keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\"",
            "\"headline\"",
            "\"update_vs_invalidate\"",
            "\"dragon_traffic_vs_mesi_geomean\"",
            "\"figures\"",
            "\"cells\": 10",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Wall clock is quarantined in the sidecar; the results document
        // itself must be byte-reproducible.
        assert!(!json.contains("matrix_wall_ms"));
        let timing = bench_timing_json(Duration::from_millis(1234));
        assert!(timing.contains("\"matrix_wall_ms\": 1234"));
        assert!(timing.contains("denovo-waste/bench-timing/v1"));
        assert!(json.contains("Figure 5.1a"));

        // The plan-level document shares the figure payload but carries no
        // wall time (it must be byte-reproducible).
        let plan_json = plan_figures_json(outcome.plan()).unwrap();
        assert!(plan_json.contains("denovo-waste/plan-results/v1"));
        assert!(plan_json.contains("Figure 5.1a"));
        assert!(!plan_json.contains("matrix_wall_ms"));

        let stats = cache_stats_json(&outcome.plan().name, &outcome.plan().cache);
        assert!(stats.contains("\"hits\": 0"));
        assert!(stats.contains("\"misses\": 10"));
    }

    #[test]
    fn update_vs_invalidate_covers_every_primitive_and_flips_winners() {
        let fig = update_vs_invalidate_figure(ScaleProfile::Tiny);
        assert_eq!(fig.rows().len(), SharingPattern::ALL.len());
        let mut dragon_wins = 0usize;
        let mut dragon_losses = 0usize;
        for (label, values) in fig.rows() {
            let (mesi, dragon, ratio, update_share) = (values[0], values[1], values[2], values[3]);
            assert!(mesi > 0.0 && dragon > 0.0, "{label}: empty cell");
            assert!(
                (ratio - dragon / mesi).abs() < 1e-12,
                "{label}: ratio column must be Dragon/MESI"
            );
            assert!(
                (0.0..=1.0).contains(&update_share),
                "{label}: update-waste share {update_share} out of range"
            );
            if ratio < 1.0 {
                dragon_wins += 1;
            } else if ratio > 1.0 {
                dragon_losses += 1;
            }
        }
        // The headline claim: updates win where invalidations ping-pong
        // (false sharing, producer-consumer) and lose where pushed words
        // are never read again — both regimes must be represented.
        assert!(dragon_wins >= 1, "no primitive where Dragon beats MESI");
        assert!(
            dragon_losses >= 1,
            "no primitive where Dragon loses to MESI"
        );
        let geo = update_ratio_geomean(&fig);
        assert!(geo.is_finite() && geo > 0.0);

        // Determinism: the figure is rebuilt bit-identically (CI diffs the
        // containing BENCH_results.json byte-for-byte).
        assert_eq!(fig, update_vs_invalidate_figure(ScaleProfile::Tiny));
    }
}
