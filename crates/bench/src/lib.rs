//! Benchmark harness for the traffic-waste study.
//!
//! The `experiments` binary regenerates every table and figure of the paper's
//! evaluation section (run `cargo run -p tw-bench --release --bin experiments
//! -- all`); the Criterion benches under `benches/` cover the same figures at
//! a reduced scale plus microbenchmarks of every substrate crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use denovo_waste::{ExperimentMatrix, RunOutcome, ScaleProfile};
use tw_types::ProtocolKind;
use tw_workloads::BenchmarkKind;

/// Runs the full nine-protocol × six-benchmark matrix at the given scale.
pub fn run_full_matrix(scale: ScaleProfile) -> RunOutcome {
    ExperimentMatrix::full(scale).run()
}

/// Runs a reduced matrix used by the per-figure Criterion benches: the five
/// protocols the headline summary compares, on two benchmarks, at the tiny
/// scale.
pub fn run_bench_matrix() -> RunOutcome {
    ExperimentMatrix::subset(
        vec![
            ProtocolKind::Mesi,
            ProtocolKind::MMemL1,
            ProtocolKind::DeNovo,
            ProtocolKind::DFlexL1,
            ProtocolKind::DBypFull,
        ],
        vec![BenchmarkKind::Fft, BenchmarkKind::Barnes],
        ScaleProfile::Tiny,
    )
    .run()
}
