//! The daemon's bounded work queue.
//!
//! A classic mutex-plus-two-condvars bounded queue (the shape of every
//! embeddings-service ingest pipeline: accept cheap, queue bounded, workers
//! drain). `push` **blocks** when the queue is full — that is the service's
//! backpressure: a connection handler stuck in `push` stops reading its
//! socket, which pushes back on the client instead of letting memory grow.
//! `close` wakes everyone; pushers get their item back, poppers drain what
//! remains and then see `None`, which is the worker-pool exit signal.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with blocking push/pop and
/// explicit close-and-drain shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` queued items (minimum 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues an item, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes, while waiting)
    /// closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.items.len() >= self.cap && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, poppers drain the backlog and
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued (racy by nature; metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy by nature; metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_blocks_push_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        // The pusher must be parked on the full queue, not failing.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push into a full queue must block");
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "push after close returns the item");
        assert_eq!(q.pop(), Some(1), "backlog drains after close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed means exit");
    }

    #[test]
    fn close_wakes_a_blocked_popper() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
