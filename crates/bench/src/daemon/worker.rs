//! The daemon's worker pool: drains the bounded queue and executes plans.
//!
//! Every worker shares one [`Session`], so all requests hit one result
//! cache *and* one in-process single-flight table — two clients submitting
//! plans that overlap on a cache key never simulate that key twice, whether
//! they collide in flight (one coalesces onto the other) or arrive in
//! sequence (the second is a disk hit).

use super::metrics::Metrics;
use super::queue::BoundedQueue;
use denovo_waste::{CacheStats, ExperimentSpec, Session, WorkloadSet};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;
use tw_obs::{Span, SpanSink};

/// The figures payload and per-request accounting of one successful submit.
#[derive(Debug)]
pub struct SubmitOutput {
    /// Plan name, echoed in the response header.
    pub plan: String,
    /// Cache accounting for this plan's cells.
    pub stats: CacheStats,
    /// Time the request spent queued, in microseconds.
    pub queue_us: u64,
    /// Time the plan spent compiling + executing, in microseconds.
    pub exec_us: u64,
    /// The exact bytes of `plan_figures_json` — what byte-identity with the
    /// CLI rests on.
    pub figures: Vec<u8>,
}

/// One queued submit request. The connection handler blocks on `reply`
/// until a worker finishes, so responses stay on the handler's socket.
pub struct Job {
    /// The experiment-spec JSON exactly as received in the request body.
    pub spec_text: String,
    /// Where the worker sends the outcome (handler side may have hung up;
    /// workers ignore a dead receiver).
    pub reply: Sender<Result<SubmitOutput, String>>,
    /// When the handler enqueued the job (for queue-wait accounting).
    pub enqueued: Instant,
}

/// Worker loop: pop until the queue closes and drains, execute each job
/// through the shared session, send the result back to the handler.
pub fn run_worker(queue: Arc<BoundedQueue<Job>>, session: Session, metrics: Arc<Metrics>) {
    while let Some(job) = queue.pop() {
        run_one(&session, &metrics, None, job);
    }
}

/// Executes a single dequeued job: runs the plan, records metrics, emits a
/// per-request span when the daemon records, sends the result to the job's
/// handler.
pub fn run_one(session: &Session, metrics: &Metrics, recorder: Option<&SpanSink>, job: Job) {
    let queue_us = job.enqueued.elapsed().as_micros() as u64;
    let result = execute(session, &job.spec_text, queue_us);
    match &result {
        Ok(out) => {
            metrics.record_completed(&out.stats, queue_us, queue_us + out.exec_us);
            if let Some(sink) = recorder.filter(|s| s.enabled()) {
                sink.with_track(format!("request/{}", out.plan)).emit(
                    Span::event("request")
                        .attr("outcome", "ok")
                        .attr("cells", out.stats.total())
                        .attr("hits", out.stats.hits)
                        .attr("misses", out.stats.misses)
                        .attr("coalesced", out.stats.coalesced)
                        .timing_us("queue_us", queue_us)
                        .timing_us("exec_us", out.exec_us),
                );
            }
        }
        Err(msg) => {
            metrics.record_failed();
            if let Some(sink) = recorder.filter(|s| s.enabled()) {
                sink.with_track("request/error").emit(
                    Span::event("request")
                        .attr("outcome", "error")
                        .attr("error", msg.as_str())
                        .timing_us("queue_us", queue_us)
                        .timing_us("exec_us", 0),
                );
            }
        }
    }
    // A handler that gave up (client hung up) is not a worker error.
    let _ = job.reply.send(result);
}

fn execute(session: &Session, spec_text: &str, queue_us: u64) -> Result<SubmitOutput, String> {
    let started = Instant::now();
    let spec = ExperimentSpec::from_json(spec_text).map_err(|e| format!("bad spec: {e}"))?;
    // Provided workloads have no wire representation: a spec naming one
    // fails compilation here with the usual unknown-workload error.
    let plan = spec
        .compile(&WorkloadSet::new())
        .map_err(|e| format!("cannot compile plan: {e}"))?;
    let outcome = session
        .execute(&plan)
        .map_err(|e| format!("cannot execute plan: {e}"))?;
    let figures =
        crate::plan_figures_json(&outcome).map_err(|e| format!("cannot extract figures: {e}"))?;
    Ok(SubmitOutput {
        plan: outcome.name.clone(),
        stats: outcome.cache,
        queue_us,
        exec_us: started.elapsed().as_micros() as u64,
        figures: figures.into_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tiny_spec_text() -> String {
        use denovo_waste::ScaleProfile;
        use tw_types::ProtocolKind;
        use tw_workloads::BenchmarkKind;
        ExperimentSpec::subset(
            vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
            vec![BenchmarkKind::Fft],
            ScaleProfile::Tiny,
        )
        .to_json()
    }

    #[test]
    fn workers_execute_jobs_and_exit_on_close() {
        let queue = Arc::new(BoundedQueue::new(4));
        let metrics = Arc::new(Metrics::new());
        let worker = std::thread::spawn({
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            move || run_worker(queue, Session::new(), metrics)
        });

        let (tx, rx) = mpsc::channel();
        queue
            .push(Job {
                spec_text: tiny_spec_text(),
                reply: tx.clone(),
                enqueued: Instant::now(),
            })
            .unwrap_or_else(|_| panic!("queue open"));
        let out = rx.recv().unwrap().expect("valid spec executes");
        assert_eq!(out.stats.total(), 2);
        assert_eq!(out.stats.misses, 2);
        assert!(out.figures.starts_with(b"{"));

        // A bad spec comes back as an error result, not a dead worker.
        queue
            .push(Job {
                spec_text: "{ not json".to_string(),
                reply: tx,
                enqueued: Instant::now(),
            })
            .unwrap_or_else(|_| panic!("queue open"));
        let err = rx.recv().unwrap().unwrap_err();
        assert!(err.contains("bad spec"), "{err}");

        queue.close();
        worker.join().unwrap();
    }
}
