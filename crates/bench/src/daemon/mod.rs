//! The experiments daemon: plans served as traffic.
//!
//! A long-running service that executes declarative experiment plans over a
//! Unix socket, turning the one-shot `experiments plan run` pipeline into
//! sustained traffic against one shared, content-addressed result cache.
//! The wire protocol is hand-rolled (the workspace is offline-vendored):
//! one compact-JSON header line per frame, optionally followed by a
//! byte-counted opaque body — see [`wire`] and DESIGN.md §13.
//!
//! Service shape (the classic ingest split: accept cheap, queue bounded,
//! workers drain):
//!
//! * the **listener** accepts connections and spawns one handler thread per
//!   connection; handlers answer `ping`/`stats`/`shutdown` inline and
//!   enqueue `submit` work;
//! * the **bounded queue** ([`queue::BoundedQueue`]) is the backpressure: a
//!   full queue blocks the handler, which stops reading its socket, which
//!   pushes back on the client;
//! * the **worker pool** drains the queue through one shared [`Session`],
//!   so every request sees the same on-disk cache and the same in-process
//!   single-flight table — concurrent submits of overlapping plans simulate
//!   each distinct cell once.
//!
//! A submitted plan's figures body is byte-for-byte the output of
//! [`crate::plan_figures_json`], i.e. exactly what `experiments plan run
//! --json` writes; CI diffs the two on every commit.

pub mod client;
pub mod metrics;
pub mod queue;
pub mod wire;
pub mod worker;

use denovo_waste::{sweep_temp_files, Json, Session, ENGINE_VERSION, TEMP_SWEEP_AGE};
use metrics::Metrics;
use queue::BoundedQueue;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;
use tw_obs::{FlightRecorder, SpanSink};
use worker::Job;

/// Daemon configuration (socket, cache, pool sizing).
#[derive(Debug, Clone)]
pub struct Config {
    /// Path of the Unix socket to listen on (created at startup, removed on
    /// clean shutdown; a stale socket file from a crashed daemon is
    /// replaced).
    pub socket: PathBuf,
    /// Result-cache directory shared by all requests; `None` runs
    /// cache-less (the single-flight table still coalesces duplicates).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing plans.
    pub workers: usize,
    /// Bound of the work queue (requests beyond it block their
    /// connections).
    pub queue_cap: usize,
    /// When set, the daemon runs with a flight recorder attached and
    /// writes the trace (JSONL, `denovo-waste/flight/v1`) to this path on
    /// clean shutdown.
    pub record: Option<PathBuf>,
}

impl Config {
    /// A config with the default pool sizing: one worker per available
    /// core and a 64-deep queue.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Config {
            socket: socket.into(),
            cache_dir: None,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_cap: 64,
            record: None,
        }
    }
}

struct Server {
    session: Session,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
    workers: u64,
    /// Per-request span sink, present only when the daemon records.
    recorder: Option<SpanSink>,
}

/// Runs the daemon until a client sends `shutdown`. Binds the socket,
/// sweeps stale cache temp files, serves requests, then drains the queue,
/// joins the workers and removes the socket file.
///
/// # Errors
///
/// A socket already served by a live daemon, an unbindable socket path, or
/// a cache directory that cannot be created/swept.
pub fn serve(config: &Config) -> Result<(), String> {
    // A leftover socket file from a crashed daemon would make bind fail
    // forever; only refuse when something actually answers on it.
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(format!(
                "{} is already served by a live daemon",
                config.socket.display()
            ));
        }
        std::fs::remove_file(&config.socket).map_err(|e| {
            format!(
                "cannot remove stale socket {}: {e}",
                config.socket.display()
            )
        })?;
    }

    let mut session = Session::new();
    if let Some(dir) = &config.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache directory {}: {e}", dir.display()))?;
        sweep_temp_files(dir, TEMP_SWEEP_AGE)
            .map_err(|e| format!("cannot sweep {}: {e}", dir.display()))?;
        session = session.with_cache_dir(dir);
    }

    // One flight recorder serves the whole daemon lifetime; the session
    // (per-cell spans), engine (per-phase spans) and workers (per-request
    // spans) all fan into it through cloned sinks.
    let flight = config
        .record
        .as_ref()
        .map(|_| Arc::new(FlightRecorder::new()));
    let mut recorder = None;
    if let Some(rec) = &flight {
        let sink = SpanSink::new(Arc::clone(rec) as _, "daemon");
        session = session.with_recorder(sink.clone());
        recorder = Some(sink);
    }

    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?;

    let workers = config.workers.max(1);
    let server = Arc::new(Server {
        session,
        queue: BoundedQueue::new(config.queue_cap),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        workers: workers as u64,
        recorder,
    });

    let pool: Vec<_> = (0..workers)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name(format!("exp-worker-{i}"))
                .spawn(move || worker_loop(&server))
                .map_err(|e| format!("cannot spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    for stream in listener.incoming() {
        if server.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let socket = config.socket.clone();
        // Handlers are detached: they die with their connection, and the
        // worker pool (joined below) finishes any job they enqueued.
        let _ = std::thread::Builder::new()
            .name("exp-conn".to_string())
            .spawn(move || handle_connection(&server, stream, &socket));
    }

    // Shutdown: no new pushes succeed, the backlog drains, workers exit.
    server.queue.close();
    for worker in pool {
        let _ = worker.join();
    }
    let _ = std::fs::remove_file(&config.socket);
    // Trace is written last, after the pool joins, so it covers every
    // request the daemon ever accepted.
    if let (Some(path), Some(rec)) = (&config.record, &flight) {
        std::fs::write(path, rec.to_jsonl())
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
    }
    Ok(())
}

fn worker_loop(server: &Server) {
    // Thin shim so `worker::run_worker` stays independently testable.
    while let Some(job) = server.queue.pop() {
        worker::run_one(
            &server.session,
            &server.metrics,
            server.recorder.as_ref(),
            job,
        );
    }
}

/// Serves one connection: a sequence of request frames, one response each,
/// until the peer hangs up or a protocol error poisons the stream.
fn handle_connection(server: &Server, stream: UnixStream, socket: &std::path::Path) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let frame = match wire::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean hangup
            Err(e) => {
                let _ = wire::write_frame(&mut writer, wire::error_header(e.to_string()), None);
                return;
            }
        };
        let (header, body) = frame;
        let op = match header.get("op").map(|v| v.as_str()) {
            Some(Ok(op)) => op.to_string(),
            _ => {
                let _ = wire::write_frame(
                    &mut writer,
                    wire::error_header("request header must carry a string `op` field"),
                    None,
                );
                continue;
            }
        };
        let keep_going = match op.as_str() {
            "ping" => wire::write_frame(
                &mut writer,
                wire::ok_header(
                    "ping",
                    vec![("engine".to_string(), Json::str(ENGINE_VERSION))],
                ),
                None,
            )
            .is_ok(),
            "stats" => {
                let fields = server.metrics.snapshot(
                    server.queue.len() as u64,
                    server.queue.capacity() as u64,
                    server.workers,
                );
                wire::write_frame(&mut writer, wire::ok_header("stats", fields), None).is_ok()
            }
            "metrics" => {
                // Prometheus text exposition travels as an opaque body: the
                // wire JSON subset has no floats, and scrapers want the raw
                // text anyway.
                let body = server.metrics.render_prometheus(
                    server.queue.len() as u64,
                    server.queue.capacity() as u64,
                    server.workers,
                );
                wire::write_frame(
                    &mut writer,
                    wire::ok_header("metrics", vec![]),
                    Some(body.as_bytes()),
                )
                .is_ok()
            }
            "shutdown" => {
                let _ = wire::write_frame(&mut writer, wire::ok_header("shutdown", vec![]), None);
                server.shutdown.store(true, Ordering::SeqCst);
                // The accept loop is parked in accept(); a throwaway
                // connection wakes it so it can observe the flag.
                let _ = UnixStream::connect(socket);
                return;
            }
            "submit" => handle_submit(server, &mut writer, body),
            other => wire::write_frame(
                &mut writer,
                wire::error_header(format!(
                    "unknown op `{other}`; expected ping | stats | metrics | submit | shutdown"
                )),
                None,
            )
            .is_ok(),
        };
        if !keep_going {
            return;
        }
    }
}

/// Enqueues one submit, waits for its worker, and writes the response.
/// Returns whether the connection is still usable.
fn handle_submit(server: &Server, writer: &mut UnixStream, body: Vec<u8>) -> bool {
    let spec_text = match String::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => {
            server.metrics.record_failed();
            return wire::write_frame(
                writer,
                wire::error_header("submit requires an experiment-spec JSON body"),
                None,
            )
            .is_ok();
        }
        Err(_) => {
            server.metrics.record_failed();
            return wire::write_frame(writer, wire::error_header("submit body is not UTF-8"), None)
                .is_ok();
        }
    };
    let (reply, result) = mpsc::channel();
    let job = Job {
        spec_text,
        reply,
        enqueued: Instant::now(),
    };
    // push blocks while the queue is full — deliberate: that is the
    // service's backpressure (see the module docs).
    if server.queue.push(job).is_err() {
        server.metrics.record_failed();
        return wire::write_frame(writer, wire::error_header("daemon is shutting down"), None)
            .is_ok();
    }
    server.metrics.record_enqueue(server.queue.len() as u64);
    match result.recv() {
        Ok(Ok(out)) => {
            let fields = vec![
                ("plan".to_string(), Json::str(out.plan)),
                ("cells".to_string(), Json::UInt(out.stats.total())),
                ("hits".to_string(), Json::UInt(out.stats.hits)),
                ("misses".to_string(), Json::UInt(out.stats.misses)),
                ("coalesced".to_string(), Json::UInt(out.stats.coalesced)),
                ("queue_us".to_string(), Json::UInt(out.queue_us)),
                ("exec_us".to_string(), Json::UInt(out.exec_us)),
            ];
            wire::write_frame(
                writer,
                wire::ok_header("submit", fields),
                Some(&out.figures),
            )
            .is_ok()
        }
        Ok(Err(msg)) => wire::write_frame(writer, wire::error_header(msg), None).is_ok(),
        Err(_) => wire::write_frame(
            writer,
            wire::error_header("worker pool exited before answering"),
            None,
        )
        .is_ok(),
    }
}
