//! Typed client for the experiments daemon.
//!
//! One [`Client`] owns one persistent connection; every method sends one
//! request frame and blocks for its response (the protocol allows one
//! request in flight per connection — concurrency comes from opening more
//! connections, which is exactly what `experiments loadgen` does).

use super::wire;
use denovo_waste::Json;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A successful `submit` response: the daemon's per-request accounting plus
/// the figures document bytes.
#[derive(Debug, Clone)]
pub struct SubmitReply {
    /// Plan name as compiled by the daemon.
    pub plan: String,
    /// Cells the plan executed.
    pub cells: u64,
    /// Cells served from the daemon's on-disk cache.
    pub hits: u64,
    /// Cells the daemon simulated.
    pub misses: u64,
    /// Cells coalesced onto an in-flight duplicate.
    pub coalesced: u64,
    /// Time the request waited in the daemon's queue (µs).
    pub queue_us: u64,
    /// Time the plan spent compiling + executing (µs).
    pub exec_us: u64,
    /// The figures document — byte-identical to `experiments plan run
    /// --json` of the same spec.
    pub figures: Vec<u8>,
}

/// A connected daemon client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a daemon's socket.
    ///
    /// # Errors
    ///
    /// Nothing listening (or not a socket) at `socket`.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(read_half),
        })
    }

    /// One request/response exchange. Error responses (`status: "error"`)
    /// surface as `Err` with the daemon's message.
    fn call(&mut self, header: Json, body: Option<&[u8]>) -> Result<(Json, Vec<u8>), String> {
        wire::write_frame(&mut self.writer, header, body).map_err(|e| format!("send: {e}"))?;
        let (reply, reply_body) = wire::read_frame(&mut self.reader)
            .map_err(|e| format!("receive: {e}"))?
            .ok_or("daemon hung up without answering")?;
        match reply.get("status").map(|s| s.as_str()) {
            Some(Ok("ok")) => Ok((reply, reply_body)),
            Some(Ok("error")) => Err(reply
                .get("error")
                .and_then(|e| e.as_str().ok())
                .unwrap_or("daemon reported an unnamed error")
                .to_string()),
            _ => Err("daemon response carries no status field".to_string()),
        }
    }

    fn request(op: &str) -> Json {
        Json::Obj(vec![("op".to_string(), Json::str(op))])
    }

    /// Liveness check; returns the daemon's engine version string.
    ///
    /// # Errors
    ///
    /// Transport failures or an error response.
    pub fn ping(&mut self) -> Result<String, String> {
        let (reply, _) = self.call(Self::request("ping"), None)?;
        Ok(reply
            .get("engine")
            .and_then(|e| e.as_str().ok())
            .unwrap_or_default()
            .to_string())
    }

    /// Fetches the service metrics snapshot (the raw response header; see
    /// `metrics.rs` for the fields).
    ///
    /// # Errors
    ///
    /// Transport failures or an error response.
    pub fn stats(&mut self) -> Result<Json, String> {
        let (reply, _) = self.call(Self::request("stats"), None)?;
        Ok(reply)
    }

    /// Fetches the Prometheus text exposition of the daemon's metrics
    /// (counters, gauges, and the queue-wait / latency histograms).
    ///
    /// # Errors
    ///
    /// Transport failures, an error response, or a non-UTF-8 body.
    pub fn metrics(&mut self) -> Result<String, String> {
        let (_, body) = self.call(Self::request("metrics"), None)?;
        String::from_utf8(body).map_err(|_| "metrics body is not UTF-8".to_string())
    }

    /// Submits an experiment-spec JSON document for execution.
    ///
    /// # Errors
    ///
    /// Transport failures, a rejected spec, or a failed run.
    pub fn submit(&mut self, spec_json: &str) -> Result<SubmitReply, String> {
        let (reply, figures) = self.call(Self::request("submit"), Some(spec_json.as_bytes()))?;
        let u64_field = |key: &str| -> Result<u64, String> {
            reply
                .require(key)
                .and_then(|v| v.as_u64())
                .map_err(|e| format!("submit response field `{key}`: {e}"))
        };
        Ok(SubmitReply {
            plan: reply
                .get("plan")
                .and_then(|p| p.as_str().ok())
                .unwrap_or_default()
                .to_string(),
            cells: u64_field("cells")?,
            hits: u64_field("hits")?,
            misses: u64_field("misses")?,
            coalesced: u64_field("coalesced")?,
            queue_us: u64_field("queue_us")?,
            exec_us: u64_field("exec_us")?,
            figures,
        })
    }

    /// Asks the daemon to shut down (drain the queue, join workers, remove
    /// its socket).
    ///
    /// # Errors
    ///
    /// Transport failures or an error response.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(Self::request("shutdown"), None).map(|_| ())
    }
}
