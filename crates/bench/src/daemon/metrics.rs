//! Service metrics for the experiments daemon.
//!
//! Lock-free counters recorded by connection handlers and workers, rendered
//! into the `stats` response. Counts and microsecond latencies are plain
//! `u64` fields; derived rates (cells/sec, hit rate) are **fixed-precision
//! decimal strings**, because the wire JSON subset deliberately has no
//! floats (see `wire.rs`). Queue-wait and request latency are recorded into
//! fixed-bucket log2 histograms ([`tw_obs::Log2Histogram`]), so `stats`
//! reports p50/p95/p99 alongside the averages, and the `metrics` op renders
//! the full distributions in Prometheus text exposition format.

use denovo_waste::{CacheStats, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tw_obs::Log2Histogram;

/// Cumulative service counters since daemon start.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Submit requests accepted off the socket (before queueing).
    requests: AtomicU64,
    /// Submit requests that produced a figures response.
    completed: AtomicU64,
    /// Submit requests that produced an error response (bad spec, run
    /// failure) or were refused by a closed/shutting-down queue.
    failed: AtomicU64,
    cells: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    /// Highest queue depth observed at any enqueue.
    queue_peak: AtomicU64,
    /// Time completed submits spent queued, one sample per request.
    queue_wait_us: Log2Histogram,
    /// End-to-end latency (queue + execute) of completed submits.
    latency_us: Log2Histogram,
}

impl Metrics {
    /// Fresh counters; `started` anchors the cells/sec rate.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cells: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            queue_wait_us: Log2Histogram::new(),
            latency_us: Log2Histogram::new(),
        }
    }

    /// Records a submit request arriving; `queue_depth` is the depth it saw
    /// at enqueue (for the peak gauge).
    pub fn record_enqueue(&self, queue_depth: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queue_peak.fetch_max(queue_depth, Ordering::Relaxed);
    }

    /// Records a completed submit: its cache stats, time spent queued, and
    /// total request latency (queue + execute), all in microseconds.
    pub fn record_completed(&self, stats: &CacheStats, queue_us: u64, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.cells.fetch_add(stats.total(), Ordering::Relaxed);
        self.hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.coalesced.fetch_add(stats.coalesced, Ordering::Relaxed);
        self.queue_wait_us.record(queue_us);
        self.latency_us.record(latency_us);
    }

    /// Records a submit that ended in an error response.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters as the `stats` response fields. `queue_depth`
    /// and `queue_cap` describe the work queue right now; `workers` is the
    /// pool size.
    pub fn snapshot(&self, queue_depth: u64, queue_cap: u64, workers: u64) -> Vec<(String, Json)> {
        let completed = self.completed.load(Ordering::Relaxed);
        let cells = self.cells.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let coalesced = self.coalesced.load(Ordering::Relaxed);
        let uptime_us = (self.started.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64;
        let cells_per_sec = if uptime_us == 0 {
            0.0
        } else {
            cells as f64 / (uptime_us as f64 / 1e6)
        };
        let served = hits + coalesced;
        let hit_rate = if cells == 0 {
            0.0
        } else {
            served as f64 / cells as f64
        };
        vec![
            (
                "requests".into(),
                Json::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            ("completed".into(), Json::UInt(completed)),
            (
                "failed".into(),
                Json::UInt(self.failed.load(Ordering::Relaxed)),
            ),
            ("cells".into(), Json::UInt(cells)),
            ("hits".into(), Json::UInt(hits)),
            ("misses".into(), Json::UInt(misses)),
            ("coalesced".into(), Json::UInt(coalesced)),
            ("queue_depth".into(), Json::UInt(queue_depth)),
            (
                "queue_peak".into(),
                Json::UInt(self.queue_peak.load(Ordering::Relaxed)),
            ),
            ("queue_cap".into(), Json::UInt(queue_cap)),
            ("workers".into(), Json::UInt(workers)),
            ("uptime_us".into(), Json::UInt(uptime_us)),
            (
                "queue_wait_avg_us".into(),
                Json::UInt(self.queue_wait_us.avg()),
            ),
            (
                "queue_wait_p50_us".into(),
                Json::UInt(self.queue_wait_us.percentile(50)),
            ),
            (
                "queue_wait_p95_us".into(),
                Json::UInt(self.queue_wait_us.percentile(95)),
            ),
            (
                "queue_wait_p99_us".into(),
                Json::UInt(self.queue_wait_us.percentile(99)),
            ),
            ("latency_avg_us".into(), Json::UInt(self.latency_us.avg())),
            (
                "latency_p50_us".into(),
                Json::UInt(self.latency_us.percentile(50)),
            ),
            (
                "latency_p95_us".into(),
                Json::UInt(self.latency_us.percentile(95)),
            ),
            (
                "latency_p99_us".into(),
                Json::UInt(self.latency_us.percentile(99)),
            ),
            ("latency_max_us".into(), Json::UInt(self.latency_us.max())),
            (
                "cells_per_sec".into(),
                Json::Str(format!("{cells_per_sec:.2}")),
            ),
            ("hit_rate".into(), Json::Str(format!("{hit_rate:.4}"))),
        ]
    }

    /// Renders every counter, gauge and histogram in Prometheus text
    /// exposition format — the body of the `metrics` wire op.
    pub fn render_prometheus(&self, queue_depth: u64, queue_cap: u64, workers: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "tw_daemon_requests_total",
            "Submit requests accepted off the socket",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_completed_total",
            "Submit requests that produced a figures response",
            self.completed.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_failed_total",
            "Submit requests that produced an error response",
            self.failed.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_cells_total",
            "Plan cells executed",
            self.cells.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_cache_hits_total",
            "Cells served from the on-disk cache",
            self.hits.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_cache_misses_total",
            "Cells simulated",
            self.misses.load(Ordering::Relaxed),
        );
        counter(
            "tw_daemon_cache_coalesced_total",
            "Cells served from the single-flight table",
            self.coalesced.load(Ordering::Relaxed),
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "tw_daemon_queue_depth",
            "Work-queue depth right now",
            queue_depth,
        );
        gauge(
            "tw_daemon_queue_peak",
            "Highest queue depth observed at any enqueue",
            self.queue_peak.load(Ordering::Relaxed),
        );
        gauge("tw_daemon_queue_cap", "Work-queue capacity", queue_cap);
        gauge("tw_daemon_workers", "Worker pool size", workers);
        gauge(
            "tw_daemon_uptime_us",
            "Microseconds since daemon start",
            (self.started.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64,
        );
        out.push_str(&self.queue_wait_us.render_prometheus(
            "tw_daemon_queue_wait_us",
            "Time completed submits spent queued (microseconds)",
        ));
        out.push_str(&self.latency_us.render_prometheus(
            "tw_daemon_latency_us",
            "End-to-end submit latency, queue plus execute (microseconds)",
        ));
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field<'a>(snap: &'a [(String, Json)], key: &str) -> &'a Json {
        &snap.iter().find(|(k, _)| k == key).expect(key).1
    }

    fn two_submits() -> Metrics {
        let m = Metrics::new();
        m.record_enqueue(3);
        m.record_enqueue(1);
        m.record_completed(
            &CacheStats {
                hits: 4,
                misses: 1,
                coalesced: 1,
            },
            100,
            500,
        );
        m.record_completed(
            &CacheStats {
                hits: 0,
                misses: 2,
                coalesced: 0,
            },
            300,
            1500,
        );
        m.record_failed();
        m
    }

    #[test]
    fn snapshot_aggregates_and_rates() {
        let snap = two_submits().snapshot(2, 64, 4);
        assert_eq!(field(&snap, "requests").as_u64(), Ok(2));
        assert_eq!(field(&snap, "completed").as_u64(), Ok(2));
        assert_eq!(field(&snap, "failed").as_u64(), Ok(1));
        assert_eq!(field(&snap, "cells").as_u64(), Ok(8));
        assert_eq!(field(&snap, "hits").as_u64(), Ok(4));
        assert_eq!(field(&snap, "misses").as_u64(), Ok(3));
        assert_eq!(field(&snap, "coalesced").as_u64(), Ok(1));
        assert_eq!(field(&snap, "queue_peak").as_u64(), Ok(3));
        assert_eq!(field(&snap, "queue_depth").as_u64(), Ok(2));
        assert_eq!(field(&snap, "queue_cap").as_u64(), Ok(64));
        assert_eq!(field(&snap, "workers").as_u64(), Ok(4));
        assert_eq!(field(&snap, "queue_wait_avg_us").as_u64(), Ok(200));
        assert_eq!(field(&snap, "latency_avg_us").as_u64(), Ok(1000));
        assert_eq!(field(&snap, "latency_max_us").as_u64(), Ok(1500));
        // (4 hits + 1 coalesced) / 8 cells = 0.625.
        assert_eq!(field(&snap, "hit_rate").as_str(), Ok("0.6250"));
        // The whole snapshot must survive the wire's no-float JSON.
        let doc = Json::Obj(snap);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
    }

    #[test]
    fn snapshot_percentiles_resolve_to_bucket_bounds_clamped_to_max() {
        let snap = two_submits().snapshot(2, 64, 4);
        // Queue waits 100 and 300: p50 is the [64,127] bucket bound, the
        // tail percentiles clamp to the observed max.
        assert_eq!(field(&snap, "queue_wait_p50_us").as_u64(), Ok(127));
        assert_eq!(field(&snap, "queue_wait_p95_us").as_u64(), Ok(300));
        assert_eq!(field(&snap, "queue_wait_p99_us").as_u64(), Ok(300));
        // Latencies 500 and 1500: p50 is the [256,511] bound.
        assert_eq!(field(&snap, "latency_p50_us").as_u64(), Ok(511));
        assert_eq!(field(&snap, "latency_p95_us").as_u64(), Ok(1500));
        assert_eq!(field(&snap, "latency_p99_us").as_u64(), Ok(1500));
    }

    #[test]
    fn empty_service_reports_zero_rates() {
        let snap = Metrics::new().snapshot(0, 8, 1);
        assert_eq!(field(&snap, "hit_rate").as_str(), Ok("0.0000"));
        assert_eq!(field(&snap, "latency_avg_us").as_u64(), Ok(0));
        assert_eq!(field(&snap, "latency_p99_us").as_u64(), Ok(0));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = two_submits().render_prometheus(2, 64, 4);
        assert!(text.contains("# TYPE tw_daemon_requests_total counter\n"));
        assert!(text.contains("tw_daemon_requests_total 2\n"));
        assert!(text.contains("tw_daemon_cells_total 8\n"));
        assert!(text.contains("# TYPE tw_daemon_queue_depth gauge\n"));
        assert!(text.contains("# TYPE tw_daemon_latency_us histogram\n"));
        assert!(text.contains("tw_daemon_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("tw_daemon_latency_us_sum 2000\n"));
        assert!(text.contains("tw_daemon_latency_us_count 2\n"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad sample value: {line}");
        }
    }
}
