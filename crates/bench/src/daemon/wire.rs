//! Frame codec for the daemon's Unix-socket protocol.
//!
//! A frame is one LF-terminated compact-JSON header line, optionally
//! followed by a raw byte body whose exact length the header declares in a
//! `body_bytes` field. The header uses the experiment layer's JSON subset
//! ([`Json`]): strings, unsigned integers, arrays, objects — no floats, so
//! rates travel as fixed-precision decimal strings. Bodies are **opaque
//! bytes**, never parsed as wire JSON; that is what lets a `submit` response
//! carry the full figures document (which contains floats) while keeping the
//! framing layer trivial: `read_line`, parse, `read_exact`.

use denovo_waste::Json;
use std::io::{BufRead, ErrorKind, Write};

/// Header lines above this are rejected (a header is one request/response
/// summary — kilobytes at most; a megabyte means a confused client).
pub const MAX_HEADER_BYTES: usize = 1 << 20;

/// Bodies above this are rejected. Figures documents for the full paper
/// matrix are well under a megabyte; 64 MiB leaves room for absurdly large
/// custom plans while still bounding a bad client's memory damage.
pub const MAX_BODY_BYTES: u64 = 64 << 20;

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Writes one frame: the compact header line, then the body bytes.
///
/// When a body is present, its exact length is appended to the header as
/// `body_bytes` — callers never count bytes themselves, so the declared and
/// actual lengths cannot drift.
///
/// # Errors
///
/// Any I/O error from the underlying writer.
pub fn write_frame<W: Write>(
    w: &mut W,
    mut header: Json,
    body: Option<&[u8]>,
) -> std::io::Result<()> {
    if let (Json::Obj(fields), Some(body)) = (&mut header, body) {
        fields.push(("body_bytes".to_string(), Json::UInt(body.len() as u64)));
    }
    let mut line = header.compact();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    if let Some(body) = body {
        w.write_all(body)?;
    }
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (the peer
/// closed before sending another header byte) and the parsed header plus
/// body (empty when the header declares none) otherwise.
///
/// # Errors
///
/// * `InvalidData` — oversized header/body, a header that is not a JSON
///   object, or a `body_bytes` field that is not an integer;
/// * `UnexpectedEof` — the stream ended inside a header line or body;
/// * any I/O error from the underlying reader.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<(Json, Vec<u8>)>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let header = Json::parse(&line).map_err(|e| bad_data(format!("bad frame header: {e}")))?;
    if header.as_obj().is_err() {
        return Err(bad_data("frame header must be a JSON object"));
    }
    let body = match header.get("body_bytes") {
        None => Vec::new(),
        Some(len) => {
            let len = len
                .as_u64()
                .map_err(|e| bad_data(format!("bad body_bytes: {e}")))?;
            if len > MAX_BODY_BYTES {
                return Err(bad_data(format!(
                    "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            let mut body = vec![0u8; len as usize];
            r.read_exact(&mut body)?;
            body
        }
    };
    Ok(Some((header, body)))
}

/// Reads up to and including one `\n`, enforcing [`MAX_HEADER_BYTES`].
/// `Ok(None)` only when the stream ends before the first byte.
fn read_header_line<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                buf.extend_from_slice(&chunk[..nl]);
                r.consume(nl + 1);
                break;
            }
            None => {
                buf.extend_from_slice(chunk);
                let n = chunk.len();
                r.consume(n);
            }
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(bad_data(format!(
                "frame header exceeds the {MAX_HEADER_BYTES}-byte limit"
            )));
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad_data("frame header is not UTF-8"))
}

/// Builds an error-response header: `{"status":"error","error":msg}`.
pub fn error_header(msg: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::str("error")),
        ("error".to_string(), Json::Str(msg.into())),
    ])
}

/// Builds a success-response header for `op` with extra fields appended.
pub fn ok_header(op: &str, fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![
        ("status".to_string(), Json::str("ok")),
        ("op".to_string(), Json::str(op)),
    ];
    all.extend(fields);
    Json::Obj(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(header: Json, body: Option<&[u8]>) -> (Json, Vec<u8>) {
        let mut wire = Vec::new();
        write_frame(&mut wire, header, body).unwrap();
        let mut r = BufReader::new(&wire[..]);
        read_frame(&mut r).unwrap().expect("one frame")
    }

    #[test]
    fn frames_round_trip_with_and_without_bodies() {
        let (h, b) = round_trip(ok_header("ping", vec![]), None);
        assert_eq!(h.get("status").unwrap().as_str(), Ok("ok"));
        assert!(b.is_empty());

        let body = b"figures {\"x\": 1.5}\nsecond line".to_vec();
        let (h, b) = round_trip(ok_header("submit", vec![]), Some(&body));
        assert_eq!(h.get("body_bytes").unwrap().as_u64(), Ok(body.len() as u64));
        assert_eq!(b, body);
    }

    #[test]
    fn two_frames_on_one_stream_are_read_in_order() {
        let mut wire = Vec::new();
        write_frame(&mut wire, ok_header("a", vec![]), Some(b"AA")).unwrap();
        write_frame(&mut wire, ok_header("b", vec![]), None).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let (h1, b1) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(h1.get("op").unwrap().as_str(), Ok("a"));
        assert_eq!(b1, b"AA");
        let (h2, b2) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(h2.get("op").unwrap().as_str(), Ok("b"));
        assert!(b2.is_empty());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_invalid_data_not_panics() {
        for wire in [
            &b"not json\n"[..],
            b"[1,2]\n",                               // header must be an object
            b"{\"op\":\"x\",\"body_bytes\":\"9\"}\n", // non-integer length
        ] {
            let err = read_frame(&mut BufReader::new(wire)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        }
        // Truncated body: declared 10 bytes, stream has 3.
        let err = read_frame(&mut BufReader::new(
            &b"{\"op\":\"x\",\"body_bytes\":10}\nabc"[..],
        ))
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        // Truncated header (no newline).
        let err = read_frame(&mut BufReader::new(&b"{\"op\""[..])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let wire = format!("{{\"op\":\"x\",\"body_bytes\":{}}}\n", MAX_BODY_BYTES + 1);
        let err = read_frame(&mut BufReader::new(wire.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("limit"), "{err}");
    }
}
