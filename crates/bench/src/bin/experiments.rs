//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tw-bench --release --bin experiments -- all
//! cargo run -p tw-bench --release --bin experiments -- fig5_1a headline
//! cargo run -p tw-bench --release --bin experiments -- --paper all
//! ```
//!
//! With no arguments, `all` at the scaled profile is assumed.

use denovo_waste::{ExperimentMatrix, RunOutcome, ScaleProfile};

fn print_headline(outcome: &RunOutcome) {
    let h = outcome.headline();
    println!("== Headline cross-benchmark averages (paper value in parentheses) ==");
    println!(
        "DBypFull traffic vs MESI:    {:.3}  (paper ~0.605, i.e. a 39.5% reduction)",
        h.dbypfull_traffic_vs_mesi
    );
    println!(
        "DBypFull traffic vs MMemL1:  {:.3}  (paper ~0.648, i.e. a 35.2% reduction)",
        h.dbypfull_traffic_vs_mmeml1
    );
    println!(
        "DBypFull traffic vs DFlexL1: {:.3}  (paper ~0.811, i.e. an 18.9% reduction)",
        h.dbypfull_traffic_vs_dflexl1
    );
    println!(
        "DeNovo traffic vs MESI:      {:.3}  (paper ~0.861, i.e. a 13.9% reduction)",
        h.denovo_traffic_vs_mesi
    );
    println!(
        "DBypFull time vs MESI:       {:.3}  (paper ~0.895, i.e. a 10.5% reduction)",
        h.dbypfull_time_vs_mesi
    );
    println!(
        "MMemL1 time vs MESI:         {:.3}  (paper ~0.962, i.e. a 3.8% reduction)",
        h.mmeml1_time_vs_mesi
    );
    println!(
        "DBypFull residual waste:     {:.3}  (paper ~0.088)",
        h.dbypfull_waste_fraction
    );
    println!(
        "MESI overhead fraction:      {:.3}  (paper ~0.136)",
        h.mesi_overhead_fraction
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        ScaleProfile::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        ScaleProfile::Tiny
    } else {
        ScaleProfile::Scaled
    };
    let mut wanted: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    eprintln!("running the experiment matrix ({scale:?} profile); this takes a little while...");
    let outcome = ExperimentMatrix::full(scale).run();

    let emit_all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| emit_all || wanted.iter().any(|w| w == name);

    if want("table4_1") {
        println!("{}", outcome.table_4_1(scale));
    }
    if want("table4_2") {
        println!("{}", outcome.table_4_2());
    }
    if want("fig5_1a") {
        println!("{}", outcome.fig_5_1a());
    }
    if want("fig5_1b") {
        println!("{}", outcome.fig_5_1b());
    }
    if want("fig5_1c") {
        println!("{}", outcome.fig_5_1c());
    }
    if want("fig5_1d") {
        println!("{}", outcome.fig_5_1d());
    }
    if want("fig5_2") {
        println!("{}", outcome.fig_5_2());
    }
    if want("fig5_3a") {
        println!("{}", outcome.fig_5_3a());
    }
    if want("fig5_3b") {
        println!("{}", outcome.fig_5_3b());
    }
    if want("fig5_3c") {
        println!("{}", outcome.fig_5_3c());
    }
    if want("headline") {
        print_headline(&outcome);
    }
}
