//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tw-bench --release --bin experiments -- all
//! cargo run -p tw-bench --release --bin experiments -- fig5_1a headline
//! cargo run -p tw-bench --release --bin experiments -- --paper all
//! cargo run -p tw-bench --release --bin experiments -- all --json
//! ```
//!
//! With no arguments, `all` at the scaled profile is assumed. `--json`
//! additionally writes a machine-readable `BENCH_results.json` (matrix wall
//! time, headline averages, per-figure values) to the current directory.

use denovo_waste::{ExperimentMatrix, RunOutcome, ScaleProfile};
use std::time::Instant;

fn print_headline(outcome: &RunOutcome) {
    let h = outcome.headline();
    println!("== Headline cross-benchmark averages (paper value in parentheses) ==");
    println!(
        "DBypFull traffic vs MESI:    {:.3}  (paper ~0.605, i.e. a 39.5% reduction)",
        h.dbypfull_traffic_vs_mesi
    );
    println!(
        "DBypFull traffic vs MMemL1:  {:.3}  (paper ~0.648, i.e. a 35.2% reduction)",
        h.dbypfull_traffic_vs_mmeml1
    );
    println!(
        "DBypFull traffic vs DFlexL1: {:.3}  (paper ~0.811, i.e. an 18.9% reduction)",
        h.dbypfull_traffic_vs_dflexl1
    );
    println!(
        "DeNovo traffic vs MESI:      {:.3}  (paper ~0.861, i.e. a 13.9% reduction)",
        h.denovo_traffic_vs_mesi
    );
    println!(
        "DBypFull time vs MESI:       {:.3}  (paper ~0.895, i.e. a 10.5% reduction)",
        h.dbypfull_time_vs_mesi
    );
    println!(
        "MMemL1 time vs MESI:         {:.3}  (paper ~0.962, i.e. a 3.8% reduction)",
        h.mmeml1_time_vs_mesi
    );
    println!(
        "DBypFull residual waste:     {:.3}  (paper ~0.088)",
        h.dbypfull_waste_fraction
    );
    println!(
        "MESI overhead fraction:      {:.3}  (paper ~0.136)",
        h.mesi_overhead_fraction
    );
}

const FIGURES: [&str; 12] = [
    "all", "table4_1", "table4_2", "fig5_1a", "fig5_1b", "fig5_1c", "fig5_1d", "fig5_2", "fig5_3a",
    "fig5_3b", "fig5_3c", "headline",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Reject anything unrecognized up front: a typo'd `--json` or figure
    // name must not silently cost a multi-minute matrix run.
    for a in &args {
        if a.starts_with("--")
            && !matches!(a.as_str(), "--paper" | "--scaled" | "--tiny" | "--json")
        {
            eprintln!("unknown flag {a}; expected --paper | --scaled | --tiny | --json");
            std::process::exit(2);
        }
        if !a.starts_with("--") && !FIGURES.contains(&a.as_str()) {
            eprintln!("unknown figure {a}; expected one of: {}", FIGURES.join(" "));
            std::process::exit(2);
        }
    }
    let scale = if args.iter().any(|a| a == "--paper") {
        ScaleProfile::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        ScaleProfile::Tiny
    } else {
        ScaleProfile::Scaled
    };
    let json = args.iter().any(|a| a == "--json");
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    eprintln!("running the experiment matrix ({scale:?} profile); this takes a little while...");
    let started = Instant::now();
    let outcome = ExperimentMatrix::full(scale).run();
    let matrix_wall = started.elapsed();
    eprintln!(
        "matrix of {} cells finished in {:.2?}",
        outcome.reports.len(),
        matrix_wall
    );

    if json {
        let path = "BENCH_results.json";
        let doc = tw_bench::results_json(&outcome, scale, matrix_wall);
        std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    let emit_all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| emit_all || wanted.iter().any(|w| w == name);

    if want("table4_1") {
        println!("{}", outcome.table_4_1(scale));
    }
    if want("table4_2") {
        println!("{}", outcome.table_4_2());
    }
    if want("fig5_1a") {
        println!("{}", outcome.fig_5_1a());
    }
    if want("fig5_1b") {
        println!("{}", outcome.fig_5_1b());
    }
    if want("fig5_1c") {
        println!("{}", outcome.fig_5_1c());
    }
    if want("fig5_1d") {
        println!("{}", outcome.fig_5_1d());
    }
    if want("fig5_2") {
        println!("{}", outcome.fig_5_2());
    }
    if want("fig5_3a") {
        println!("{}", outcome.fig_5_3a());
    }
    if want("fig5_3b") {
        println!("{}", outcome.fig_5_3b());
    }
    if want("fig5_3c") {
        println!("{}", outcome.fig_5_3c());
    }
    if want("headline") {
        print_headline(&outcome);
    }
}
